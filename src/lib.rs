//! # congested-clique — reproduction of "On the Power of the Congested Clique Model"
//!
//! This is the top-level facade crate of the workspace: it re-exports
//! [`clique_core`] (the paper's algorithms) together with all substrate
//! crates and the [`serve`] job-server layer, so that the examples and
//! integration tests in this repository — and downstream users — only need
//! a single dependency.
//!
//! See `README.md` at the repository root for an overview,
//! `DESIGN.md` for the system inventory and the per-experiment index, and
//! `EXPERIMENTS.md` for the measured results of every experiment.
//!
//! # Examples
//!
//! ```
//! use congested_clique::graphs::{generators, Pattern};
//! use congested_clique::subgraph::detect_subgraph_turan;
//!
//! # fn main() -> Result<(), congested_clique::sim::SimError> {
//! // Detect a 4-cycle in CLIQUE-BCAST(n, log n) using Theorem 7.
//! let g = generators::complete_bipartite(8, 8);
//! let outcome = detect_subgraph_turan(&g, &Pattern::Cycle(4), 4)?;
//! assert!(outcome.contains);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use clique_core::*;

/// Re-export of the job-server layer (`clique-serve`): [`serve::Server`]
/// shards cached, batched simulation jobs over the protocol [`registry`].
pub use clique_serve as serve;
