//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without network access.
//!
//! The [`proptest!`] macro runs each property against
//! [`ProptestConfig::cases`] pseudo-random inputs drawn from a fixed-seed
//! ChaCha8 stream, so failures are reproducible across runs. Unlike real
//! proptest there is **no shrinking**: a failing case reports the assertion
//! panic directly (the deterministic seed makes it replayable).

#![forbid(unsafe_code)]

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Returns a configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Strategies: composable descriptions of how to generate random values.
pub mod strategy {
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// The RNG handed to strategies (re-exported for the macro expansion).
    pub type TestRng = ChaCha8Rng;

    /// A generator of random values of type [`Strategy::Value`].
    ///
    /// Real proptest strategies produce shrinkable value *trees*; this stub
    /// only samples plain values.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            let unit: f64 = rng.gen();
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Strategy for `any::<T>()`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::Rng;
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::Rng;
            rng.gen()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`proptest::arbitrary::any`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// The `prop::` namespace used inside [`proptest!`] bodies.
pub mod prop {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use std::ops::Range;

        /// A length specification: a fixed size or a range of sizes.
        pub trait SizeRange {
            /// Samples a concrete length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                use rand::Rng;
                rng.gen_range(self.start..self.end)
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Returns a strategy for `Vec`s with lengths drawn from `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

#[doc(hidden)]
pub use rand as _rand;

/// Common re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (plain `assert!` in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in the stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Expands to `continue` targeting the case loop generated by [`proptest!`],
/// so it may only appear at the top level of a property body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item becomes a
/// regular `#[test]` that samples the strategies [`ProptestConfig::cases`]
/// times from a deterministic ChaCha8 stream and runs the body on each case.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Fixed seed: failures replay identically across runs.
                let mut proptest_rng =
                    <$crate::strategy::TestRng as $crate::_rand::SeedableRng>::seed_from_u64(
                        0xC11_90E_5EED,
                    );
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strategy),
                            &mut proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in prop::collection::vec(any::<bool>(), 2..5),
            w in prop::collection::vec(0u64..10, 7),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 7);
            prop_assert!(w.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0u64..5, 1usize..4)) {
            prop_assert!(pair.0 < 5 && (1..4).contains(&pair.1));
        }
    }
}
