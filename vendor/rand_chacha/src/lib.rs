//! Offline, API-compatible subset of the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate, vendored so
//! the workspace builds without network access.
//!
//! [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`] are genuine ChaCha
//! keystream generators (D. J. Bernstein's block function at 8/12/20
//! rounds). Seeding via [`rand::SeedableRng::seed_from_u64`] expands the
//! 64-bit seed into a 256-bit key with SplitMix64; the resulting streams are
//! deterministic and of cryptographic quality, but are not guaranteed to be
//! byte-identical to upstream `rand_chacha` for the same seed.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter-round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream generator with a configurable round count.
#[derive(Clone, Debug)]
struct ChaChaCore {
    /// Initial state: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
    /// Number of rounds (8, 12 or 20).
    rounds: usize,
}

impl ChaChaCore {
    fn from_seed_u64(seed: u64, rounds: usize) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, as
        // rand_core's default `seed_from_u64` does.
        let mut s = seed;
        let mut sm = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let w = sm();
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter (words 12–13) and nonce (words 14–15) start at zero.
        Self {
            state,
            block: [0; 16],
            index: 16,
            rounds,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..self.rounds / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            core: ChaChaCore,
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                Self {
                    core: ChaChaCore::from_seed_u64(state, $rounds),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_u32()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_u32() as u64;
                let hi = self.core.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "A ChaCha generator with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "A ChaCha generator with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "A ChaCha generator with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_keystream_matches_rfc_7539_structure() {
        // With an all-zero key expansion we cannot cross-check RFC vectors
        // (seeding goes through SplitMix64), but the generator must at least
        // produce well-distributed output: check a crude bit balance.
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        assert!((total * 45 / 100..total * 55 / 100).contains(&ones));
    }

    #[test]
    fn works_with_rand_traits() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: usize = rng.gen_range(10..20);
        assert!((10..20).contains(&v));
        let _ = rng.gen_bool(0.5);
    }
}
