//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored so the workspace builds without network access.
//!
//! It supports the subset this workspace's benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], and the
//! [`BenchmarkGroup`] knobs `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` — and reports mean / min / max
//! wall-clock time per iteration on stdout. It performs no statistical
//! analysis, produces no HTML reports, and keeps no baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Configures this harness from command-line arguments (accepted and
    /// ignored; the stub has no CLI options).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        let (sample_size, warm_up, measurement) = (
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size,
            warm_up,
            measurement,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("run", f);
        group.finish();
        self
    }

    /// Criterion's post-run hook; a no-op in the stub.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total duration of the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {}/{id}: no samples recorded", self.name);
            return self;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {}/{id}: mean {mean:.2?}  min {min:.2?}  max {max:.2?}  ({} samples)",
            self.name,
            samples.len()
        );
        self
    }

    /// Finishes the group (a no-op in the stub; reports print eagerly).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure to time the routine under test.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Sampling: one routine call per sample, stopping early if the
        // measurement budget is exhausted.
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() > self.measurement {
                break;
            }
        }
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags such as
            // `--bench`; the stub accepts and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
