//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate, vendored so the workspace builds without network access.
//!
//! Only the surface actually used by this repository is provided:
//! [`RngCore`], [`Rng`] (`gen_bool`, `gen_range`, `gen`), [`SeedableRng`],
//! [`seq::SliceRandom::shuffle`] and [`thread_rng`]. Algorithms follow the
//! upstream semantics (53-bit uniform doubles, rejection-sampled integer
//! ranges, Fisher–Yates shuffles) but make no guarantee of producing the
//! same stream as upstream `rand` for a given seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion and the thread-local generator.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

mod sealed {
    /// Integer types that [`super::Rng::gen_range`] can sample uniformly.
    pub trait UniformInt: Copy + PartialOrd {
        fn to_u64(self) -> u64;
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn to_u64(self) -> u64 {
                    self as u64
                }

                fn from_u64(v: u64) -> Self {
                    v as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// A value that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience methods on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples an integer uniformly from `range` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: sealed::UniformInt>(&mut self, range: Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "gen_range requires a non-empty range");
        let span = hi - lo;
        // Rejection sampling: draw from the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_u64(lo + v % span);
            }
        }
    }

    /// Samples a value of type `T` from the uniform/"standard" distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng, ThreadRng};
}

/// A lazily seeded generator analogous to `rand::rngs::ThreadRng`.
///
/// Backed by SplitMix64, seeded from the system clock and a per-call
/// counter so distinct calls produce distinct streams.
#[derive(Clone, Debug)]
pub struct ThreadRng {
    state: u64,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (splitmix64(&mut self.state) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Returns a fresh non-deterministic generator (`rand::thread_rng`).
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut state = nanos
        ^ COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9);
    // Warm the state so near-identical seeds diverge immediately.
    splitmix64(&mut state);
    ThreadRng { state }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct FixedRng(u64);

    impl RngCore for FixedRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = FixedRng(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = FixedRng(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = FixedRng(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = FixedRng(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn thread_rngs_differ() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
