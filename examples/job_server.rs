//! Serving simulation jobs through the sharded, caching job server.
//!
//! Submits a mixed batch of registry jobs (MST, triangle counting, APSP,
//! C4 detection) to a 4-worker `serve::Server`, resubmits it warm, and
//! prints for every job the communication ledger, whether the record came
//! from the transcript cache, and whether it is byte-identical to a direct
//! `Runner` execution — the serving layer's core invariant.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example job_server
//! ```

use congested_clique::serve::{JobSpec, ServeError, Server, ServerConfig};

fn main() -> Result<(), ServeError> {
    let mut server = Server::new(ServerConfig {
        workers: 4,
        batch_size: 2,
        ..ServerConfig::default()
    });

    let jobs = vec![
        JobSpec::weighted("mst", "weighted_random_tree", 16, 4, 32, 0x5EED),
        JobSpec::weighted("mst", "weighted_erdos_renyi(p=0.2)", 16, 4, 32, 0x5EED),
        JobSpec::unweighted("triangle-count", "erdos_renyi(p=0.5)", 12, 16, 7),
        JobSpec::unweighted("apsp", "random_tree", 12, 16, 7),
        JobSpec::unweighted("c4-turan-sketch", "erdos_renyi(p=0.15)", 14, 4, 3),
        JobSpec::unweighted("c4-full-broadcast", "cycle", 14, 4, 3),
        // A duplicate of the first job: it runs once and both submissions
        // share the record.
        JobSpec::weighted("mst", "weighted_random_tree", 16, 4, 32, 0x5EED),
    ];

    println!("cold batch ({} jobs, 4 workers):", jobs.len());
    print_batch(&server.submit_batch(&jobs)?)?;

    println!("\nwarm batch (same jobs):");
    print_batch(&server.submit_batch(&jobs)?)?;

    let stats = server.stats();
    println!(
        "\nserver: {} jobs submitted, {} simulations run, {} waves; cache {} hits / {} misses (hit rate {:.0}%)",
        stats.jobs,
        stats.ran,
        stats.waves,
        stats.cache.hits,
        stats.cache.misses,
        100.0 * stats.cache.hit_rate()
    );
    Ok(())
}

fn print_batch(results: &[congested_clique::serve::JobResult]) -> Result<(), ServeError> {
    println!(
        "  {:<18} {:<28} {:>3} {:>7} {:>10} {:>7} {:>16}",
        "protocol", "family", "n", "cached", "record B", "= dup", "= direct run"
    );
    for result in results {
        let direct = Server::run_direct(&result.spec)?;
        let duplicate = results
            .iter()
            .filter(|other| other.key == result.key)
            .all(|other| other.record == result.record);
        println!(
            "  {:<18} {:<28} {:>3} {:>7} {:>10} {:>7} {:>16}",
            result.spec.protocol,
            result.spec.family,
            result.spec.n,
            result.cached,
            result.record.len(),
            duplicate,
            result.record == direct
        );
        assert_eq!(result.record, direct, "served record diverged");
    }
    Ok(())
}
