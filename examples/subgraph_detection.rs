//! Subgraph detection in the broadcast congested clique (Theorems 7 and 9).
//!
//! Detects 4-cycles with three protocols — the trivial broadcast, the
//! Turán-sketch protocol of Theorem 7, and the adaptive protocol of
//! Theorem 9 — on a C4-free extremal graph and on a graph with a planted
//! copy, and prints the measured round counts next to the theorem's
//! prediction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example subgraph_detection
//! ```

use congested_clique::adaptive::detect_subgraph_adaptive;
use congested_clique::graphs::{extremal, generators, Pattern};
use congested_clique::sim::SimError;
use congested_clique::subgraph::detect_subgraph_turan;
use congested_clique::trivial::detect_by_full_broadcast;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 128;
    let bandwidth = 7; // log2(n)
    let pattern = Pattern::Cycle(4);

    // Instance 1: the Erdős–Rényi polarity graph — C4-free but dense.
    let c4_free = extremal::dense_c4_free(n);
    // Instance 2: a sparse random graph with one planted C4.
    let host = generators::erdos_renyi(n, 1.0 / n as f64, &mut rng);
    let (planted, _) = generators::plant_copy(&host, &pattern.graph(), &mut rng);

    println!("pattern: {pattern}, n = {n}, b = {bandwidth}");
    println!(
        "Theorem 7 predicts O(ex(n,C4)·log n/(n·b)) ≈ {:.0} rounds; the trivial protocol needs ⌈n/b⌉ = {} rounds",
        pattern.ex_upper_bound(n) * (n as f64).log2() / (n as f64 * bandwidth as f64),
        n.div_ceil(bandwidth),
    );
    println!();

    for (name, graph) in [
        ("C4-free polarity graph", &c4_free),
        ("planted C4", &planted),
    ] {
        println!("== {name} ({} edges) ==", graph.edge_count());
        let trivial = detect_by_full_broadcast(graph, &pattern, bandwidth)?;
        println!(
            "  trivial broadcast      : contains = {:5}, rounds = {}",
            trivial.contains,
            trivial.rounds()
        );
        let turan = detect_subgraph_turan(graph, &pattern, bandwidth)?;
        println!(
            "  Theorem 7 (known ex)   : contains = {:5}, rounds = {}",
            turan.contains,
            turan.rounds()
        );
        let adaptive = detect_subgraph_adaptive(graph, &pattern, bandwidth, &mut rng)?;
        println!(
            "  Theorem 9 (adaptive)   : contains = {:5}, rounds = {}, reconstruction attempts = {}",
            adaptive.outcome.contains,
            adaptive.rounds(),
            adaptive.attempts.len()
        );
        if let Some(witness) = &adaptive.outcome.witness {
            println!("  witness C4: {witness:?}");
        }
        println!();
    }
    Ok(())
}
