//! Simulating bounded-depth circuits on the unicast clique (Theorem 2).
//!
//! Builds several circuits over n² inputs whose gates are b-separable
//! (parity, MOD6-of-MOD6, majority, a threshold predicate), simulates each on
//! n players, and prints the measured rounds next to the circuit depth —
//! the theorem predicts O(depth) rounds once the bandwidth reaches
//! O(b_sep + wire density).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example circuit_simulation
//! ```

use congested_clique::circuits::builders;
use congested_clique::sim::SimError;
use congested_clique::{simulate_circuit, InputPartition};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let n = 16; // players
    let m = n * n; // circuit inputs

    let circuits = vec![
        ("parity (one wide XOR)", builders::parity(m)),
        ("parity tree, arity 4", builders::parity_tree(m, 4)),
        ("majority", builders::majority(m)),
        ("MOD6 of MOD6", builders::mod_of_mods(m, 6, n)),
        ("exactly n²/3 ones", builders::exactly_k(m, (m / 3) as u64)),
    ];

    println!("players n = {n}, circuit inputs = n² = {m}");
    println!(
        "{:<24} {:>6} {:>7} {:>9} {:>7} {:>14} {:>8}",
        "circuit", "depth", "wires", "bandwidth", "rounds", "rounds/layer", "correct"
    );
    for (name, circuit) in circuits {
        let input: Vec<bool> = (0..m).map(|_| rng.gen_bool(0.5)).collect();
        let expected = circuit.evaluate(&input);
        let s = circuit.wire_density(n);
        let bandwidth = (s + 4).max(circuit.max_separability_bits());
        let sim = simulate_circuit(&circuit, &input, n, bandwidth, InputPartition::RoundRobin)?;
        println!(
            "{:<24} {:>6} {:>7} {:>9} {:>7} {:>14.2} {:>8}",
            name,
            sim.depth,
            circuit.wire_count(),
            bandwidth,
            sim.rounds(),
            sim.rounds() as f64 / (sim.depth as f64 + 2.0),
            sim.outputs == expected,
        );
    }
    println!();
    println!("Theorem 2: the rounds column grows with the depth column, not with the wire count;");
    println!("lower bounds for such protocols would therefore imply new circuit lower bounds.");
    Ok(())
}
