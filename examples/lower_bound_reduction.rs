//! Executing the Section 3 lower-bound reductions end-to-end.
//!
//! Builds the (K4, K_{N,N}) and (C4, F) lower-bound gadgets, turns random
//! set-disjointness instances into detection inputs, runs the trivial
//! detection protocol on them, and prints the implied round lower bounds
//! next to the measured upper bounds (Theorems 15 and 19). Also prints the
//! Ruzsa–Szemerédi numbers behind the triangle bound of Theorem 24.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lower_bound_reduction
//! ```

use congested_clique::comm::disjointness::DisjointnessBound;
use congested_clique::lower_bounds::{
    clique_detection_lower_bound, cycle_detection_lower_bound, triangle_nof_lower_bound,
    DetectorKind,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let n = 64;
    let bandwidth = 6;

    println!("== Theorem 15: K4 detection needs Ω(n/b) rounds ==");
    let (lbg, report) =
        clique_detection_lower_bound(4, n, bandwidth, DetectorKind::TrivialBroadcast, 4, &mut rng)
            .expect("gadget construction");
    println!(
        "  gadget: {} nodes, disjointness on {} elements (N² with N = Θ(n))",
        lbg.vertex_count(),
        lbg.elements()
    );
    println!(
        "  implied lower bound: {:.1} rounds;   measured upper bound (trivial protocol): {} rounds;   all answers correct: {}",
        report.implied_round_lower_bound,
        report.max_rounds,
        report.all_correct()
    );
    println!();

    println!("== Theorem 19: C4 detection needs Ω(ex(n,C4)/(n·b)) = Ω(√n/b) rounds ==");
    let (lbg, report) =
        cycle_detection_lower_bound(4, n, bandwidth, DetectorKind::TrivialBroadcast, 4, &mut rng)
            .expect("gadget construction");
    println!(
        "  gadget: {} nodes, {} elements, cut size {} (also valid for CONGEST: {:.1} rounds)",
        lbg.vertex_count(),
        lbg.elements(),
        lbg.cut_size(),
        lbg.implied_congest_rounds(DisjointnessBound::TwoPartyDeterministic, bandwidth)
    );
    println!(
        "  implied lower bound: {:.1} rounds;   measured upper bound: {} rounds;   all answers correct: {}",
        report.implied_round_lower_bound,
        report.max_rounds,
        report.all_correct()
    );
    println!();

    println!("== Theorem 24 / Corollary 25: triangle detection vs 3-party NOF disjointness ==");
    let (reduction, report) = triangle_nof_lower_bound(32, bandwidth, true, 4, &mut rng);
    println!(
        "  Ruzsa–Szemerédi graph: {} players, {} edge-disjoint triangles (the NOF universe)",
        reduction.vertex_count(),
        reduction.elements()
    );
    println!(
        "  implied deterministic bound: {:.2} rounds;  implied randomized bound (Ω(√m)): {:.2} rounds",
        reduction.implied_bcast_rounds(DisjointnessBound::ThreePartyNofDeterministic, bandwidth),
        reduction.implied_bcast_rounds(DisjointnessBound::ThreePartyNofRandomized, bandwidth),
    );
    println!(
        "  reduction executed against the trivial detector: max {} rounds, all answers correct: {}",
        report.max_rounds,
        report.all_correct()
    );
}
