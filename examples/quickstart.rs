//! Quickstart: simulate the congested clique and detect a triangle.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congested_clique::graphs::{generators, iso};
use congested_clique::sim::SimError;
use congested_clique::triangle::{detect_triangle_dlp, detect_triangle_trivial};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 64;
    let bandwidth = 6; // b = log2(n) bits per link per round

    // Build a sparse random graph and plant one triangle in it.
    let host = generators::erdos_renyi(n, 1.5 / n as f64, &mut rng);
    let (graph, planted_at) = generators::plant_copy(&host, &generators::complete(3), &mut rng);
    println!(
        "input: G(n={n}, m={}) with a triangle planted on {:?}",
        graph.edge_count(),
        planted_at
    );
    println!("ground truth: has_triangle = {}", iso::has_triangle(&graph));
    println!();

    // The trivial protocol: every node broadcasts its adjacency row.
    let trivial = detect_triangle_trivial(&graph, bandwidth)?;
    println!(
        "trivial broadcast   : contains = {:5}, rounds = {:3}, blackboard bits = {}",
        trivial.contains, trivial.rounds, trivial.total_bits
    );

    // The Dolev–Lenzen–Peled-style deterministic protocol: group triples +
    // balanced routing, Õ(n^{1/3}/b) rounds.
    let dlp = detect_triangle_dlp(&graph, bandwidth)?;
    println!(
        "DLP (deterministic) : contains = {:5}, rounds = {:3}, network bits   = {}",
        dlp.contains, dlp.rounds, dlp.total_bits
    );
    if let Some(witness) = &dlp.witness {
        println!("                      witness triangle: {witness:?}");
    }

    println!();
    println!(
        "round ratio trivial/DLP at this size: {:.1} (DLP scales as Õ(n^(1/3)/b), so it overtakes \
         the trivial ⌈n/b⌉ protocol as n grows; see EXPERIMENTS.md, E3)",
        trivial.rounds as f64 / dlp.rounds.max(1) as f64
    );
    Ok(())
}
