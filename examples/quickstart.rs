//! Quickstart: run triangle-detection protocols through the
//! `Protocol`/`Session`/`Runner` API and sweep one of them over a
//! bandwidth grid.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congested_clique::graphs::{generators, iso, Pattern};
use congested_clique::sim::prelude::*;
use congested_clique::triangle::{detect_triangle_trivial, DlpTriangleDetection};
use congested_clique::trivial::FullBroadcastDetection;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 64;
    let bandwidth = 6; // b = log2(n) bits per link per round

    // Build a sparse random graph and plant one triangle in it.
    let host = generators::erdos_renyi(n, 1.5 / n as f64, &mut rng);
    let (graph, planted_at) = generators::plant_copy(&host, &generators::complete(3), &mut rng);
    println!(
        "input: G(n={n}, m={}) with a triangle planted on {:?}",
        graph.edge_count(),
        planted_at
    );
    println!("ground truth: has_triangle = {}", iso::has_triangle(&graph));
    println!();

    // The trivial protocol: every node broadcasts its adjacency row. The
    // free function picks the canonical model, CLIQUE-BCAST(n, b).
    let trivial = detect_triangle_trivial(&graph, bandwidth)?;
    println!(
        "trivial broadcast   : contains = {:5}, rounds = {:3}, blackboard bits = {}",
        trivial.contains,
        trivial.rounds(),
        trivial.total_bits()
    );

    // The same protocols are plain `Protocol` values: pick any model with
    // the config builder and execute them through a `Runner`. Here: the
    // Dolev–Lenzen–Peled-style deterministic protocol (group triples +
    // balanced routing, Õ(n^{1/3}/b) rounds) on CLIQUE-UCAST(n, b).
    let config = CliqueConfig::builder()
        .nodes(n)
        .bandwidth(bandwidth)
        .unicast()
        .build();
    let dlp = Runner::new(config).execute(&mut DlpTriangleDetection::new(&graph))?;
    println!(
        "DLP (deterministic) : contains = {:5}, rounds = {:3}, network bits   = {}",
        dlp.contains,
        dlp.rounds(),
        dlp.total_bits()
    );
    if let Some(witness) = &dlp.witness {
        println!("                      witness triangle: {witness:?}");
    }

    // Sweeps are one call: the same detection protocol across a bandwidth
    // grid, each point on a fresh session.
    println!();
    println!("bandwidth sweep of the trivial protocol (rounds = ⌈n/b⌉):");
    let pattern = Pattern::Clique(3);
    let grid = CliqueConfig::builder()
        .broadcast()
        .grid(&[n], &[1, 2, 4, 8, 16]);
    let points = Runner::sweep(grid, |_| FullBroadcastDetection::new(&graph, &pattern))?;
    for point in &points {
        println!(
            "  {:>26} : rounds = {:3}",
            point.config.to_string(),
            point.outcome.rounds()
        );
    }

    println!();
    println!(
        "round ratio trivial/DLP at this size: {:.1} (DLP scales as Õ(n^(1/3)/b), so it overtakes \
         the trivial ⌈n/b⌉ protocol as n grows; see EXPERIMENTS.md, E3)",
        trivial.rounds() as f64 / dlp.rounds().max(1) as f64
    );
    Ok(())
}
