//! Triangle detection through matrix-multiplication circuits (Section 2.1).
//!
//! Compares four triangle-detection protocols on the same inputs: the trivial
//! broadcast, the DLP-style deterministic protocol, and the Section 2.1 route
//! through F2 matrix-multiplication circuits (naive cubic and Strassen),
//! which exercises the Theorem 2 circuit simulation end-to-end.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example triangle_matmul
//! ```

use congested_clique::graphs::{generators, iso};
use congested_clique::sim::SimError;
use congested_clique::triangle::{
    detect_triangle_dlp, detect_triangle_trivial, detect_triangle_via_matmul, MatMulStrategy,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = 16;
    let bandwidth = 8;

    let instances = vec![
        ("dense G(n, 1/2)", generators::erdos_renyi(n, 0.5, &mut rng)),
        (
            "sparse with planted triangle",
            generators::plant_copy(
                &generators::erdos_renyi(n, 1.0 / n as f64, &mut rng),
                &generators::complete(3),
                &mut rng,
            )
            .0,
        ),
        (
            "bipartite (triangle-free)",
            generators::complete_bipartite(n / 2, n / 2),
        ),
    ];

    for (name, graph) in instances {
        println!(
            "== {name}: {} edges, ground truth has_triangle = {} ==",
            graph.edge_count(),
            iso::has_triangle(&graph)
        );
        let trivial = detect_triangle_trivial(&graph, bandwidth)?;
        println!(
            "  trivial broadcast      : contains = {:5}, rounds = {:4}",
            trivial.contains,
            trivial.rounds()
        );
        let dlp = detect_triangle_dlp(&graph, bandwidth)?;
        println!(
            "  DLP (deterministic)    : contains = {:5}, rounds = {:4}",
            dlp.contains,
            dlp.rounds()
        );
        for strategy in [MatMulStrategy::Naive, MatMulStrategy::Strassen] {
            let out = detect_triangle_via_matmul(&graph, bandwidth, strategy, 3, &mut rng)?;
            println!(
                "  {:<22} : contains = {:5}, rounds = {:4} (Theorem 2 simulation of the F2 product)",
                strategy.name(),
                out.contains,
                out.rounds()
            );
        }
        println!();
    }
    println!("Under the matrix-multiplication conjecture of Section 2.1 the circuit route would");
    println!("run in O(n^ε) rounds at bandwidth 1; with the explicit circuits available (ω = 3,");
    println!("ω ≈ 2.81) its cost is dominated by the circuits' wire density, as measured above.");
    Ok(())
}
