//! Differential oracle grids: every protocol with a sequential reference
//! implementation is pinned to it over the seeded `(family, n, seed)` grids
//! of `clique_bench::diff`. A failure reports every disagreeing grid point.

use clique_bench::diff::{assert_protocol_matches_oracle, unweighted_grid, weighted_grid};
use congested_clique::graphs::iso;
use congested_clique::{compute_apsp, compute_msf, count_triangles};

/// MST on sketches vs. the Kruskal oracle, up to n = 64. Small maximum
/// weight (7) guarantees duplicate raw weights, so the grid also pins the
/// `(w, u, v)` tie-break end to end.
#[test]
fn mst_protocol_matches_kruskal_oracle() {
    let cases = weighted_grid(&[2, 3, 8, 17, 33, 64], &[0x5EED, 0xD1FF], 7);
    assert_protocol_matches_oracle(
        "MstProtocol vs Kruskal",
        &cases,
        |g| compute_msf(g, 4, 8).unwrap().forest(),
        iso::minimum_spanning_forest,
    );
}

/// The semiring-matmul triangle counter vs. the sequential enumerator.
#[test]
fn triangle_count_matches_sequential_oracle() {
    let cases = unweighted_grid(&[3, 8, 16, 27], &[0x5EED, 0xD1FF]);
    assert_protocol_matches_oracle(
        "TriangleCount vs iso::triangle_count",
        &cases,
        |g| count_triangles(g, 16).unwrap().output,
        iso::triangle_count,
    );
}

/// Repeated (min, +) squaring APSP vs. per-source BFS.
#[test]
fn apsp_matches_bfs_oracle() {
    let cases = unweighted_grid(&[2, 7, 16, 25], &[0x5EED, 0xD1FF]);
    assert_protocol_matches_oracle(
        "ApspProtocol vs iso::bfs_distances",
        &cases,
        |g| compute_apsp(g, 16).unwrap().output,
        iso::bfs_distances,
    );
}
