//! Differential oracle grids: every protocol with a sequential reference
//! implementation is pinned to it over the seeded `(family, n, seed)` grids
//! of `clique_bench::diff`. A failure reports every disagreeing grid point.
//!
//! The served-vs-direct grids run the same protocols through the
//! `clique-serve` job server (cold cache, warm cache, 1-worker and 4-worker
//! fleets) and require every served record to be byte-identical to a direct
//! `Runner` execution.

use clique_bench::diff::{assert_protocol_matches_oracle, unweighted_grid, weighted_grid};
use congested_clique::graphs::iso;
use congested_clique::serve::{JobSpec, Server, ServerConfig};
use congested_clique::{compute_apsp, compute_msf, count_triangles};

/// MST on sketches vs. the Kruskal oracle, up to n = 64. Small maximum
/// weight (7) guarantees duplicate raw weights, so the grid also pins the
/// `(w, u, v)` tie-break end to end.
#[test]
fn mst_protocol_matches_kruskal_oracle() {
    let cases = weighted_grid(&[2, 3, 8, 17, 33, 64], &[0x5EED, 0xD1FF], 7);
    assert_protocol_matches_oracle(
        "MstProtocol vs Kruskal",
        &cases,
        |g| compute_msf(g, 4, 8).unwrap().forest(),
        iso::minimum_spanning_forest,
    );
}

/// The semiring-matmul triangle counter vs. the sequential enumerator.
#[test]
fn triangle_count_matches_sequential_oracle() {
    let cases = unweighted_grid(&[3, 8, 16, 27], &[0x5EED, 0xD1FF]);
    assert_protocol_matches_oracle(
        "TriangleCount vs iso::triangle_count",
        &cases,
        |g| count_triangles(g, 16).unwrap().output,
        iso::triangle_count,
    );
}

/// Repeated (min, +) squaring APSP vs. per-source BFS.
#[test]
fn apsp_matches_bfs_oracle() {
    let cases = unweighted_grid(&[2, 7, 16, 25], &[0x5EED, 0xD1FF]);
    assert_protocol_matches_oracle(
        "ApspProtocol vs iso::bfs_distances",
        &cases,
        |g| compute_apsp(g, 16).unwrap().output,
        iso::bfs_distances,
    );
}

/// The served grid: the same protocol/size/seed mix as the oracle grids
/// above, expressed as job specs (the registry regenerates each input from
/// its label, so the graphs are the same ones the direct runs see).
fn served_grid() -> Vec<JobSpec> {
    let seeds: &[u64] = &[0x5EED, 0xD1FF];
    let mut specs = Vec::new();
    for &seed in seeds {
        for &n in &[2usize, 3, 8, 17, 33] {
            specs.push(JobSpec::weighted(
                "mst",
                "weighted_erdos_renyi(p=0.2)",
                n,
                8,
                7,
                seed,
            ));
        }
        for &n in &[3usize, 8, 16] {
            specs.push(JobSpec::unweighted(
                "triangle-count",
                "erdos_renyi(p=0.5)",
                n,
                16,
                seed,
            ));
        }
        for &n in &[2usize, 7, 16] {
            specs.push(JobSpec::unweighted("apsp", "random_tree", n, 16, seed));
        }
    }
    specs
}

/// Every served record — cold cache and warm cache, 1-worker and 4-worker
/// fleets — is byte-identical to its direct `Runner` execution.
#[test]
fn served_records_match_direct_runs() {
    let specs = served_grid();
    for workers in [1usize, 4] {
        let mut server = Server::new(ServerConfig {
            workers,
            batch_size: 3,
            ..ServerConfig::default()
        });
        let cold = server.submit_batch(&specs).unwrap();
        let warm = server.submit_batch(&specs).unwrap();
        for (spec, (c, w)) in specs.iter().zip(cold.iter().zip(&warm)) {
            let direct = Server::run_direct(spec).unwrap();
            assert_eq!(
                c.record, direct,
                "cold served record diverged at {workers} workers for {}",
                c.key
            );
            assert_eq!(
                w.record, direct,
                "warm served record diverged at {workers} workers for {}",
                w.key
            );
            assert!(!c.cached, "cold pass unexpectedly hit the cache");
            assert!(w.cached, "warm pass unexpectedly missed the cache");
        }
        let stats = server.stats();
        assert_eq!(stats.ran, specs.len() as u64, "each unique spec ran once");
        assert_eq!(stats.cache.hits, specs.len() as u64);
    }
}

/// Cache hits survive adversarial re-validation: with `verify_hits` every
/// hit is recomputed and byte-compared inside the server.
#[test]
fn served_cache_hits_survive_verification() {
    let specs = served_grid();
    let mut server = Server::new(ServerConfig {
        workers: 4,
        batch_size: 3,
        verify_hits: true,
        ..ServerConfig::default()
    });
    server.submit_batch(&specs).unwrap();
    let warm = server.submit_batch(&specs).unwrap();
    assert!(warm.iter().all(|r| r.cached));
}
