//! Chaos integration tests: the never-silently-wrong contract end to end.
//!
//! Three layers are pinned here, against real registry protocols:
//!
//! 1. **Transparency** — a [`FaultyTransport`] carrying an empty (zero
//!    rate) [`FaultPlan`] is byte-identical to the bare transport it
//!    wraps, for both inner backends and across the protocol registry
//!    (property-based).
//! 2. **Cache integrity** — a deliberately corrupted transcript-cache
//!    entry is caught by `verify_hits`, evicted, and the job is served the
//!    fresh recomputation.
//! 3. **The chaos grid** — every fault kind x injection rate x protocol
//!    cell, seeded and retried, yields only fault-free-identical records
//!    or clean typed errors.

use clique_bench::chaos::{chaos_job_pool, run_chaos_cell};
use clique_serve::{Server, ServerConfig};
use congested_clique::registry::{self, InputKind, RunOptions, PROTOCOLS};
use congested_clique::sim::prelude::*;
use congested_clique::sim::transport::INJECTABLE_FAULTS;
use proptest::prelude::*;

/// The registry protocols the differential properties sweep (the
/// chaos-probe is excluded: it panics by design on odd inputs).
fn pinned_protocols() -> Vec<&'static registry::ProtocolEntry> {
    PROTOCOLS
        .iter()
        .filter(|entry| entry.id != "chaos-probe")
        .collect()
}

/// Runs `entry` on a generated input with the given fault plan (if any).
fn run_with_plan(
    entry: &registry::ProtocolEntry,
    n: usize,
    seed: u64,
    fault: Option<FaultPlan>,
) -> registry::ProtocolRun {
    let family = match entry.kind {
        InputKind::Unweighted => "erdos_renyi(p=0.5)",
        InputKind::Weighted => "weighted_random_tree",
    };
    let input = registry::generate_input(entry.kind, family, n, seed, 2 * n as u64)
        .expect("pinned family is valid");
    let options = RunOptions {
        bandwidth: 8,
        fault,
        ..RunOptions::default()
    };
    entry
        .run(&input, &options)
        .expect("pinned protocol run failed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An empty fault plan is invisible: wrapping the default transport in
    /// a zero-rate `FaultyTransport` changes neither output nor ledger for
    /// any registry protocol, size or seed.
    #[test]
    fn zero_rate_fault_plans_are_transparent_across_the_registry(
        proto_idx in 0usize..5,
        n in 5usize..10,
        seed in 0u64..500,
    ) {
        let entries = pinned_protocols();
        let entry = entries[proto_idx % entries.len()];
        let bare = run_with_plan(entry, n, seed, None);
        let wrapped = run_with_plan(
            entry,
            n,
            seed,
            Some(FaultPlan::new(seed ^ 0xFEED, 0, &INJECTABLE_FAULTS)),
        );
        prop_assert_eq!(&bare, &wrapped, "{} diverged under a zero-rate plan", entry.id);
    }

    /// Both inner transports behave identically under the empty wrapper: a
    /// broadcast protocol run over in-memory and channel delivery, each
    /// bare and each wrapped, produces four byte-identical outcomes.
    #[test]
    fn empty_wrapper_is_transparent_over_both_inner_transports(
        n in 2usize..8,
        b in 1usize..6,
        seed in 0u64..500,
    ) {
        let run = |transport: Option<Box<dyn Transport>>| {
            let config = CliqueConfig::builder().nodes(n).bandwidth(b).broadcast().build();
            Runner::new(config)
                .with_transport(transport)
                .execute(&mut |session: &mut Session| {
                    let rows: Vec<BitString> = (0..n)
                        .map(|i| BitString::from_bits(seed.wrapping_add(i as u64) & 0x7F, 7))
                        .collect();
                    session.broadcast_all("probe", &rows)?;
                    Ok(seed)
                })
                .expect("probe protocol failed")
        };
        let plan = FaultPlan::new(seed, 0, &INJECTABLE_FAULTS);
        let baseline = run(Some(Box::new(InMemoryTransport)));
        for wrapped in [
            run(Some(Box::new(ChannelTransport::default()))),
            run(Some(Box::new(FaultyTransport::new(plan, Box::new(InMemoryTransport))))),
            run(Some(Box::new(FaultyTransport::new(plan, Box::new(ChannelTransport::default()))))),
        ] {
            prop_assert_eq!(baseline.output.clone(), wrapped.output);
            prop_assert_eq!(baseline.metrics.clone(), wrapped.metrics);
        }
    }
}

/// A corrupted cache entry never reaches a caller when `verify_hits` is
/// on: the byte-compare catches it, the entry is evicted, and the fresh
/// recomputation is served (and re-cached) instead.
#[test]
fn corrupted_cache_entries_are_caught_evicted_and_recomputed() {
    let mut server = Server::new(ServerConfig {
        verify_hits: true,
        ..ServerConfig::default()
    });
    let specs = chaos_job_pool(&[7], &[11]);
    for spec in &specs {
        let truth = Server::run_direct(spec).expect("direct reference failed");
        // Corrupt the planted record the way a single flipped bit would.
        let mut damaged = truth.clone().into_bytes();
        damaged[truth.len() / 2] ^= 0x10;
        server.inject_cache_record(spec, String::from_utf8_lossy(&damaged).into_owned());
        let served = server.run_job(spec).expect("degraded serve failed");
        assert!(!served.cached, "a corrupted hit was served as cached");
        assert_eq!(served.record, truth, "degradation served a wrong record");
    }
    assert_eq!(
        server.stats().faults.cache_divergences,
        specs.len() as u64,
        "a corrupted entry slipped through verification"
    );
    // Every evicted entry was replaced by the truth: all warm now.
    for spec in &specs {
        assert!(server.run_job(spec).expect("warm serve failed").cached);
    }
}

/// The acceptance grid: 4 injected kinds (plus the mix) x 3 nonzero rates
/// x 4 protocols, seeded and retried — zero silently-wrong outcomes, and
/// the seeded sweep detects and recovers from real faults.
#[test]
fn chaos_grid_is_never_silently_wrong() {
    let specs = chaos_job_pool(&[6, 7], &[3]);
    let mut detected_total = 0;
    let mut recovered_total = 0;
    for (label, kinds) in [
        ("drop", vec![FaultKind::Drop]),
        ("corrupt", vec![FaultKind::Corrupt]),
        ("duplicate", vec![FaultKind::Duplicate]),
        ("truncate", vec![FaultKind::Truncate]),
        ("mixed", INJECTABLE_FAULTS.to_vec()),
    ] {
        for rate in [10_000, 80_000, 400_000] {
            let report = run_chaos_cell(&specs, &kinds, label, 0xD0, rate, 5);
            assert!(
                report.never_silently_wrong(),
                "{label}@{rate}ppm: {} silently wrong, {} unexpected failure classes",
                report.silently_wrong,
                report.unexpected_failures
            );
            detected_total += report.faults_detected;
            recovered_total += report.recovered;
        }
    }
    assert!(detected_total > 0, "the grid injected nothing");
    assert!(recovered_total > 0, "no retry in the grid ever recovered");
}
