//! Regression tests for the `Protocol`/`Runner` migration: every migrated
//! entry point must report exactly the round and bit counts the
//! pre-redesign implementation produced on the same fixed inputs.
//!
//! The pinned constants were captured by running the pre-redesign code
//! (commit `ac339b6`) on the inputs below. A change in any of these values
//! means the redesign changed the *accounting semantics*, not just the API,
//! and must be investigated.

use congested_clique::adaptive::detect_subgraph_adaptive;
use congested_clique::circuits::builders;
use congested_clique::graphs::{extremal, generators, iso, weighted, Graph, Pattern};
use congested_clique::mst::MstProtocol;
use congested_clique::routing::{
    BalancedRouter, DirectRouter, RouteProtocol, RoutingDemand, ValiantRouter,
};
use congested_clique::sim::prelude::*;
use congested_clique::subgraph::{run_reconstruction_protocol, SketchReconstruction};
use congested_clique::triangle::{
    detect_triangle_dlp, detect_triangle_trivial, detect_triangle_via_matmul, DlpTriangleDetection,
    MatMulStrategy,
};
use congested_clique::trivial::{
    detect_by_full_broadcast, detect_by_gather_to_leader, FullBroadcastDetection,
    GatherToLeaderDetection,
};
use congested_clique::{
    compute_msf, simulate_circuit, CircuitSimulation, InputPartition, TuranSketchDetection,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The fixed 24-node instance every detection regression runs on.
fn g24() -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(0x5EED);
    generators::erdos_renyi(24, 0.15, &mut r)
}

#[test]
fn full_broadcast_matches_pre_redesign_counts() {
    let g = g24();
    let pattern = Pattern::Clique(3);
    let outcome = detect_by_full_broadcast(&g, &pattern, 4).unwrap();
    assert_eq!(
        (outcome.contains, outcome.rounds(), outcome.total_bits()),
        (true, 6, 576)
    );
    // The explicit Runner route reports identical numbers.
    let config = CliqueConfig::builder()
        .nodes(24)
        .bandwidth(4)
        .broadcast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut FullBroadcastDetection::new(&g, &pattern))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (6, 576));
}

#[test]
fn gather_to_leader_matches_pre_redesign_counts() {
    let g = g24();
    let pattern = Pattern::Clique(3);
    let outcome = detect_by_gather_to_leader(&g, &pattern, 4).unwrap();
    assert_eq!(
        (outcome.contains, outcome.rounds(), outcome.total_bits()),
        (true, 6, 552)
    );
    let config = CliqueConfig::builder()
        .nodes(24)
        .bandwidth(4)
        .unicast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut GatherToLeaderDetection::new(&g, &pattern))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (6, 552));
}

#[test]
fn turan_sketch_detection_matches_pre_redesign_counts() {
    let c4_free = extremal::dense_c4_free(31);
    let pattern = Pattern::Cycle(4);
    let outcome = congested_clique::detect_subgraph_turan(&c4_free, &pattern, 8).unwrap();
    assert_eq!(
        (outcome.contains, outcome.rounds(), outcome.total_bits()),
        (false, 18, 4433)
    );

    let g = g24();
    let outcome = congested_clique::detect_subgraph_turan(&g, &pattern, 4).unwrap();
    assert_eq!(
        (outcome.contains, outcome.rounds(), outcome.total_bits()),
        (true, 27, 2520)
    );
    // Through an explicit Runner as well.
    let config = CliqueConfig::builder()
        .nodes(24)
        .bandwidth(4)
        .broadcast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut TuranSketchDetection::new(&g, &pattern))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (27, 2520));
}

#[test]
fn sketch_reconstruction_matches_pre_redesign_counts() {
    let g = generators::cycle(40);
    let run = run_reconstruction_protocol(&g, 2, 4).unwrap();
    assert!(run.success());
    assert_eq!((run.rounds(), run.total_bits()), (5, 720));

    let config = CliqueConfig::builder()
        .nodes(40)
        .bandwidth(4)
        .broadcast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut SketchReconstruction::new(&g, 2))
        .unwrap();
    assert!(direct.success());
    assert_eq!((direct.rounds(), direct.total_bits()), (5, 720));
}

#[test]
fn adaptive_detection_matches_pre_redesign_counts() {
    let g = g24();
    let mut r = ChaCha8Rng::seed_from_u64(0xADA);
    let run = detect_subgraph_adaptive(&g, &Pattern::Cycle(4), 4, &mut r).unwrap();
    assert_eq!(
        (
            run.outcome.contains,
            run.rounds(),
            run.total_bits(),
            run.attempts.len()
        ),
        (true, 13, 1176, 3)
    );
}

#[test]
fn trivial_triangle_detection_matches_pre_redesign_counts() {
    let g = g24();
    let outcome = detect_triangle_trivial(&g, 4).unwrap();
    assert_eq!(
        (outcome.contains, outcome.rounds(), outcome.total_bits()),
        (true, 6, 576)
    );
}

#[test]
fn dlp_triangle_detection_matches_pre_redesign_counts() {
    let g = g24();
    let outcome = detect_triangle_dlp(&g, 4).unwrap();
    assert_eq!(
        (outcome.contains, outcome.rounds(), outcome.total_bits()),
        (true, 15, 10532)
    );
    let config = CliqueConfig::builder()
        .nodes(24)
        .bandwidth(4)
        .unicast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut DlpTriangleDetection::new(&g))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (15, 10532));
}

#[test]
fn matmul_triangle_detection_matches_pre_redesign_counts() {
    let g = g24();
    let mut r = ChaCha8Rng::seed_from_u64(0xB0);
    let naive = detect_triangle_via_matmul(&g, 8, MatMulStrategy::Naive, 3, &mut r).unwrap();
    assert_eq!(
        (naive.contains, naive.rounds(), naive.total_bits()),
        (true, 33, 32865)
    );

    let mut r = ChaCha8Rng::seed_from_u64(0xB1);
    let strassen = detect_triangle_via_matmul(&g, 8, MatMulStrategy::Strassen, 2, &mut r).unwrap();
    assert_eq!(
        (strassen.contains, strassen.rounds(), strassen.total_bits()),
        (true, 111, 363449)
    );
}

#[test]
fn circuit_simulation_matches_pre_redesign_counts() {
    let circuit = builders::parity_tree(36, 3);
    let mut r = ChaCha8Rng::seed_from_u64(0xC1);
    let input: Vec<bool> = (0..36).map(|_| r.gen_bool(0.5)).collect();
    let sim = simulate_circuit(&circuit, &input, 6, 4, InputPartition::RoundRobin).unwrap();
    assert_eq!(
        (sim.rounds(), sim.total_bits(), sim.max_phase_rounds()),
        (8, 66, 1)
    );
    assert_eq!(sim.outputs, vec![true]);
    // Through an explicit Runner as well.
    let config = CliqueConfig::builder()
        .nodes(6)
        .bandwidth(4)
        .unicast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut CircuitSimulation::new(
            &circuit,
            &input,
            InputPartition::RoundRobin,
        ))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (8, 66));

    let circuit = builders::majority(25);
    let mut r = ChaCha8Rng::seed_from_u64(0xC2);
    let input: Vec<bool> = (0..25).map(|_| r.gen_bool(0.5)).collect();
    let sim = simulate_circuit(&circuit, &input, 5, 6, InputPartition::Blocks).unwrap();
    assert_eq!(
        (sim.rounds(), sim.total_bits(), sim.max_phase_rounds()),
        (2, 40, 1)
    );
    assert_eq!(sim.outputs, vec![false]);
}

#[test]
fn mst_protocol_matches_pinned_counts() {
    // Fixed weighted instance in the g24 style; small max weight forces
    // duplicate raw weights through the (w, u, v) tie-break.
    let mut r = ChaCha8Rng::seed_from_u64(0x5EED);
    let g = weighted::weighted_erdos_renyi(24, 0.3, 50, &mut r);
    let run = compute_msf(&g, 4, 5).unwrap();
    assert_eq!(run.forest(), iso::minimum_spanning_forest(&g));
    assert_eq!(
        (
            run.phases,
            run.final_capacity,
            run.rounds(),
            run.total_bits()
        ),
        (5, 64, 749, 89400)
    );
    // Through an explicit Runner as well.
    let config = CliqueConfig::builder()
        .nodes(24)
        .bandwidth(5)
        .broadcast()
        .build();
    let direct = Runner::new(config)
        .execute(&mut MstProtocol::new(&g, 4))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (749, 89400));
}

/// The fixed concentrated demand the router regressions run on.
fn concentrated_demand() -> RoutingDemand {
    let mut demand = RoutingDemand::new(16);
    for i in 0..16usize {
        if i != 1 {
            demand.send(0, 1, BitString::from_bits(i as u64 % 16, 8));
        }
    }
    demand
}

#[test]
fn routers_match_pre_redesign_counts() {
    let demand = concentrated_demand();
    let runner = Runner::new(
        CliqueConfig::builder()
            .nodes(16)
            .bandwidth(8)
            .unicast()
            .build(),
    );

    let direct = runner
        .execute(&mut RouteProtocol::new(DirectRouter, &demand))
        .unwrap();
    assert_eq!((direct.rounds(), direct.total_bits()), (23, 180));

    let balanced = runner
        .execute(&mut RouteProtocol::new(BalancedRouter, &demand))
        .unwrap();
    assert_eq!((balanced.rounds(), balanced.total_bits()), (4, 448));

    let valiant = runner
        .execute(&mut RouteProtocol::new(
            ValiantRouter::new(ChaCha8Rng::seed_from_u64(7)),
            &demand,
        ))
        .unwrap();
    assert_eq!((valiant.rounds(), valiant.total_bits()), (8, 432));
}

#[test]
fn fast_matmul_schedules_match_pinned_counts() {
    use congested_clique::algebraic::{FastMatMul, Semiring, SemiringMatrix, SparseMatMul};

    // Strassen schedule above the dispatch crossover: 56 players, two rows
    // each, the E18 (56, 112) grid point at bandwidth 4.
    let mut r = ChaCha8Rng::seed_from_u64(0x5EED);
    let rows: Vec<Vec<bool>> = (0..112)
        .map(|_| (0..112).map(|_| r.gen_bool(0.5)).collect())
        .collect();
    let a = SemiringMatrix::Bits(BitMatrix::from_rows(&rows));
    let fast = Runner::new(CliqueConfig::unicast(56, 4))
        .execute(&mut FastMatMul::new(&a, &a, Semiring::F2))
        .unwrap();
    let local = a.as_bits().unwrap().mul_f2(a.as_bits().unwrap());
    assert_eq!(fast.as_bits().unwrap(), &local);
    assert_eq!((fast.rounds(), fast.total_bits()), (120, 553066));

    // Sparse schedule on the fixed g24 detection instance (a ~15% dense
    // adjacency, well under the density threshold).
    let g = g24();
    let adj = SemiringMatrix::Bits(g.adjacency_bitmatrix());
    let sparse = Runner::new(CliqueConfig::unicast(24, 4))
        .execute(&mut SparseMatMul::new(&adj, &adj, Semiring::Boolean))
        .unwrap();
    let local = adj.as_bits().unwrap().mul_bool(adj.as_bits().unwrap());
    assert_eq!(sparse.as_bits().unwrap(), &local);
    assert_eq!((sparse.rounds(), sparse.total_bits()), (46, 14165));
}
