//! Cross-crate integration tests: end-to-end runs of the paper's protocols
//! against ground truth and against each other.

use congested_clique::adaptive::detect_subgraph_adaptive;
use congested_clique::circuits::{builders, matmul};
use congested_clique::graphs::{degeneracy, extremal, generators, iso, Pattern};
use congested_clique::lower_bounds::{
    clique_detection_lower_bound, cycle_detection_lower_bound, triangle_nof_lower_bound,
    DetectorKind,
};
use congested_clique::sim::linalg::BitMatrix;
use congested_clique::subgraph::detect_subgraph_turan;
use congested_clique::triangle::{
    detect_triangle_dlp, detect_triangle_trivial, detect_triangle_via_matmul, MatMulStrategy,
};
use congested_clique::trivial::detect_by_full_broadcast;
use congested_clique::{simulate_circuit, InputPartition};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn all_triangle_protocols_agree_on_random_graphs() {
    let mut r = rng(1);
    for trial in 0..4 {
        let n = 12 + 2 * trial;
        let g = generators::erdos_renyi(n, 0.12 + 0.06 * trial as f64, &mut r);
        let truth = iso::has_triangle(&g);
        let trivial = detect_triangle_trivial(&g, 4).unwrap();
        let dlp = detect_triangle_dlp(&g, 4).unwrap();
        let mm = detect_triangle_via_matmul(&g, 8, MatMulStrategy::Naive, 5, &mut r).unwrap();
        assert_eq!(trivial.contains, truth, "trivial wrong on trial {trial}");
        assert_eq!(dlp.contains, truth, "DLP wrong on trial {trial}");
        // The matmul protocol has one-sided error: never a false positive,
        // and with 5 trials a negligible false-negative rate on these sizes.
        assert_eq!(mm.contains, truth, "matmul wrong on trial {trial}");
    }
}

#[test]
fn subgraph_detection_protocols_agree_with_ground_truth() {
    let mut r = rng(2);
    let patterns = [
        Pattern::Cycle(4),
        Pattern::Clique(3),
        Pattern::Path(5),
        Pattern::CompleteBipartite(2, 2),
        Pattern::Star(4),
    ];
    for trial in 0..3 {
        let n = 24 + 4 * trial;
        let g = generators::erdos_renyi(n, 0.10, &mut r);
        for pattern in &patterns {
            let truth = iso::contains_subgraph(&g, &pattern.graph());
            let broadcast = detect_by_full_broadcast(&g, pattern, 5).unwrap();
            let turan = detect_subgraph_turan(&g, pattern, 5).unwrap();
            let adaptive = detect_subgraph_adaptive(&g, pattern, 5, &mut r).unwrap();
            assert_eq!(broadcast.contains, truth, "{pattern} broadcast");
            assert_eq!(turan.contains, truth, "{pattern} turan");
            assert_eq!(adaptive.outcome.contains, truth, "{pattern} adaptive");
        }
    }
}

#[test]
fn theorem7_round_counts_scale_sublinearly_for_bipartite_patterns() {
    // C4 detection on (C4-free, dense) polarity graphs: the Turán-sketch
    // protocol uses Θ(√n·log n/b) rounds while the trivial one uses n/b, so
    // quadrupling n should roughly double the former but quadruple the
    // latter. (The absolute crossover sits beyond these sizes because of the
    // 4·ex(n,H)/n constant; see EXPERIMENTS.md, E4.)
    let b = 8;
    let small_n = 64;
    let large_n = 256;
    let smart_small =
        detect_subgraph_turan(&extremal::dense_c4_free(small_n), &Pattern::Cycle(4), b).unwrap();
    let smart_large =
        detect_subgraph_turan(&extremal::dense_c4_free(large_n), &Pattern::Cycle(4), b).unwrap();
    let trivial_small =
        detect_by_full_broadcast(&extremal::dense_c4_free(small_n), &Pattern::Cycle(4), b).unwrap();
    let trivial_large =
        detect_by_full_broadcast(&extremal::dense_c4_free(large_n), &Pattern::Cycle(4), b).unwrap();
    assert!(!smart_small.contains && !smart_large.contains);
    let smart_growth = smart_large.rounds() as f64 / smart_small.rounds() as f64;
    let trivial_growth = trivial_large.rounds() as f64 / trivial_small.rounds() as f64;
    assert!(
        smart_growth < 3.0 && trivial_growth > 3.5,
        "growth factors: Theorem 7 {smart_growth:.2} (expected ≈ 2), trivial {trivial_growth:.2} (expected ≈ 4)"
    );

    // Tree detection is where the absolute gap is already dramatic at this
    // size: O(log n / b) vs n/b rounds.
    let n = 256;
    let dense = generators::complete_bipartite(n / 2, n / 2);
    let tree = detect_subgraph_turan(&dense, &Pattern::Path(4), b).unwrap();
    let trivial_tree = detect_by_full_broadcast(&dense, &Pattern::Path(4), b).unwrap();
    assert!(tree.contains && trivial_tree.contains);
    assert!(
        tree.rounds() * 4 < trivial_tree.rounds(),
        "tree detection: {} vs {} rounds",
        tree.rounds(),
        trivial_tree.rounds()
    );
}

#[test]
fn circuit_simulation_matches_direct_evaluation_across_gate_families() {
    let mut r = rng(3);
    let n = 10;
    let m = n * n;
    let circuits = vec![
        builders::parity(m),
        builders::parity_tree(m, 3),
        builders::majority(m),
        builders::mod_m(m, 5),
        builders::exactly_k(m, 30),
        builders::inner_product_mod2(m / 2),
    ];
    for circuit in circuits {
        let input: Vec<bool> = (0..circuit.inputs().len())
            .map(|_| r.gen_bool(0.5))
            .collect();
        let bandwidth = circuit.wire_density(n) + circuit.max_separability_bits() + 4;
        let sim = simulate_circuit(&circuit, &input, n, bandwidth, InputPartition::Blocks).unwrap();
        assert_eq!(sim.outputs, circuit.evaluate(&input));
        assert!(sim.rounds() <= 6 * (sim.depth as u64 + 2));
    }
}

#[test]
fn matmul_circuits_compose_with_the_simulation() {
    // The full Section 2.1 pipeline at a tiny size: F2 product via Strassen
    // circuits simulated on the clique equals the reference product.
    let mut r = rng(4);
    let dim = 8usize;
    let mm = matmul::matmul_f2_strassen(dim);
    let mut random_packed = || {
        let rows: Vec<Vec<bool>> = (0..dim)
            .map(|_| (0..dim).map(|_| r.gen_bool(0.5)).collect())
            .collect();
        BitMatrix::from_rows(&rows)
    };
    let a = random_packed();
    let b = random_packed();
    let assignment = mm.assignment(&a, &b);
    let sim = simulate_circuit(
        &mm.circuit,
        &assignment,
        dim,
        32,
        InputPartition::RoundRobin,
    )
    .unwrap();
    let reference = matmul::matmul_f2_reference(&a, &b);
    let flat: Vec<bool> = reference.to_rows().into_iter().flatten().collect();
    assert_eq!(sim.outputs, flat);
}

#[test]
fn lower_bound_reductions_are_sound_against_upper_bound_protocols() {
    let mut r = rng(5);
    // Theorem 15 gadget against both detectors.
    for kind in [DetectorKind::TrivialBroadcast, DetectorKind::TuranSketch] {
        let (_, report) = clique_detection_lower_bound(4, 36, 4, kind, 4, &mut r).unwrap();
        assert!(
            report.all_correct(),
            "{kind:?} answered a reduction instance wrongly"
        );
        assert!(report.implied_round_lower_bound <= report.max_rounds as f64 + 1.0);
    }
    // Theorem 19 gadget.
    let (lbg, report) =
        cycle_detection_lower_bound(5, 50, 4, DetectorKind::TrivialBroadcast, 4, &mut r).unwrap();
    assert!(report.all_correct());
    assert!(lbg.cut_size() <= lbg.vertex_count());
    // Theorem 24 reduction.
    let (reduction, report) = triangle_nof_lower_bound(16, 4, true, 4, &mut r);
    assert!(report.all_correct());
    assert!(reduction.elements() >= 16);
}

#[test]
fn claim6_holds_for_every_pattern_free_instance_we_generate() {
    let mut r = rng(6);
    let n = 96;
    let cases = vec![
        (Pattern::Cycle(4), extremal::dense_c4_free(n)),
        (Pattern::Clique(4), generators::turan_graph(n, 3)),
        (
            Pattern::Clique(3),
            generators::complete_bipartite(n / 2, n / 2),
        ),
        (Pattern::Cycle(6), extremal::dense_cycle_free(n, 6, &mut r)),
    ];
    for (pattern, graph) in cases {
        assert!(!iso::contains_subgraph(&graph, &pattern.graph()));
        let bound = 4.0 * pattern.ex_upper_bound(n) / n as f64;
        assert!(
            (degeneracy::degeneracy(&graph) as f64) <= bound,
            "Claim 6 violated for {pattern}"
        );
    }
}
