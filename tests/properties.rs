//! Property-based tests (proptest) on the core invariants of the workspace.
//!
//! Each property is checked on randomly generated inputs: bit-string
//! round-trips, degeneracy orderings, sketch reconstruction, circuit
//! simulation vs direct evaluation, detection protocols vs the
//! subgraph-isomorphism oracle, Behrend sets, and the lower-bound gadget
//! semantics of Observation 11.

use congested_clique::algebraic::{
    fast_matmul, semiring_matmul, sparse_matmul, FastMatMul, MatMulSchedule, ScheduledMatMul,
    Semiring, SemiringMatrix,
};
use congested_clique::circuits::matmul::{matmul_f2_reference, matmul_f2_scalar};
use congested_clique::circuits::{builders, BitMatrix, Circuit, GateKind};
use congested_clique::comm::disjointness::DisjointnessInstance;
use congested_clique::comm::lbgraph::LowerBoundGraph;
use congested_clique::graphs::behrend::{behrend_set, is_3ap_free};
use congested_clique::graphs::degeneracy::{degeneracy_ordering, verify_elimination_order};
use congested_clique::graphs::weighted::{self, WeightedGraph};
use congested_clique::graphs::{generators, iso, Graph, Pattern};
use congested_clique::mst::MstProtocol;
use congested_clique::sim::prelude::*;
use congested_clique::sketch::reconstruct::reconstruct;
use congested_clique::subgraph::detect_subgraph_turan;
use congested_clique::triangle::{detect_triangle_dlp, detect_triangle_via_matmul, MatMulStrategy};
use congested_clique::{count_triangles, simulate_circuit, InputPartition};
use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a graph on `n` nodes from a seed, with edge density `p` in [0, 1].
fn seeded_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generators::erdos_renyi(n, p, &mut rng)
}

/// The `WeightedGraph` strategy, from primitive proptest parameters: a
/// seeded `G(n, p)` with weights uniform in `1..=max_weight` (small
/// `max_weight` forces duplicate weights, exercising the `(w, u, v)`
/// tie-break everywhere).
fn seeded_weighted_graph(n: usize, p: f64, max_weight: u64, seed: u64) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    weighted::weighted_erdos_renyi(n, p, max_weight, &mut rng)
}

/// Asserts the packed-kernel invariant: no bits at or past column `cols` in
/// the last word of any row.
fn assert_no_padding_bits(m: &BitMatrix) {
    let rem = m.cols() % <DefaultLane as Word>::BITS;
    if rem == 0 {
        return;
    }
    for i in 0..m.rows() {
        let last = *m.row_words(i).last().expect("cols > 0 implies a word");
        assert_eq!(last >> rem, DefaultLane::ZERO, "row {i} has bits past cols");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bitstring_round_trips(values in prop::collection::vec((0u64..1 << 20, 1usize..21), 0..20)) {
        let mut bits: BitString = BitString::new();
        for &(v, w) in &values {
            bits.push_bits(v & ((1 << w) - 1), w);
        }
        let mut reader = bits.reader();
        for &(v, w) in &values {
            prop_assert_eq!(reader.read_bits(w), Some(v & ((1 << w) - 1)));
        }
        prop_assert!(reader.is_exhausted());
    }

    #[test]
    fn bitstring_word_and_bool_paths_agree(bools in prop::collection::vec(any::<bool>(), 0..200), prefix in 0usize..70) {
        // from_bools (word-packing) == per-bit pushes; to_bools inverts it.
        let packed: BitString = BitString::from_bools(&bools);
        let mut per_bit: BitString = BitString::new();
        for &b in &bools {
            per_bit.push_bit(b);
        }
        prop_assert_eq!(&packed, &per_bit);
        prop_assert_eq!(packed.to_bools(), bools.clone());

        // push_words/read_words round-trip at an arbitrary bit offset.
        let mut bits = BitString::new();
        for i in 0..prefix {
            bits.push_bit(i % 2 == 0);
        }
        bits.push_words(packed.words(), packed.len());
        let mut reader = bits.reader();
        for i in 0..prefix {
            prop_assert_eq!(reader.read_bit(), Some(i % 2 == 0));
        }
        let words = reader.read_words(packed.len()).expect("enough bits");
        prop_assert_eq!(BitString::from_words(&words, packed.len()), packed);
        prop_assert!(reader.is_exhausted());
    }

    #[test]
    fn packed_matmul_kernels_match_the_scalar_reference(
        ra in 1usize..24,
        c in 1usize..90,
        cb in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a_rows: Vec<Vec<bool>> = (0..ra).map(|_| (0..c).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let b_rows: Vec<Vec<bool>> = (0..c).map(|_| (0..cb).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let a: BitMatrix = BitMatrix::from_rows(&a_rows);
        let b: BitMatrix = BitMatrix::from_rows(&b_rows);

        // Scalar oracle (square-only helper is bypassed for rectangles).
        let mut expected = BitMatrix::zeros(ra, cb);
        for (i, row_a) in a_rows.iter().enumerate() {
            for j in 0..cb {
                let mut acc = false;
                for (k, row_b) in b_rows.iter().enumerate() {
                    acc ^= row_a[k] & row_b[j];
                }
                expected.set(i, j, acc);
            }
        }
        prop_assert_eq!(a.mul_f2_word(&b), expected.clone(), "word kernel");
        prop_assert_eq!(a.mul_f2_four_russians(&b), expected.clone(), "four-russians kernel");
        prop_assert_eq!(a.mul_f2(&b), expected, "dispatching kernel");
    }

    #[test]
    fn matmul_kernels_agree_across_lane_widths(
        ra in 1usize..20,
        c in 1usize..200,
        cb in 1usize..20,
        seed in 0u64..1000,
    ) {
        // The lane-width invariant on every matmul path: u64 and u128
        // matrices built from the same rows multiply to the same rows.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a_rows: Vec<Vec<bool>> = (0..ra).map(|_| (0..c).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let b_rows: Vec<Vec<bool>> = (0..c).map(|_| (0..cb).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let a64 = BitMatrix::<u64>::from_rows(&a_rows);
        let b64 = BitMatrix::<u64>::from_rows(&b_rows);
        let a128 = BitMatrix::<u128>::from_rows(&a_rows);
        let b128 = BitMatrix::<u128>::from_rows(&b_rows);
        prop_assert_eq!(a64.mul_f2(&b64).to_rows(), a128.mul_f2(&b128).to_rows(), "dispatch");
        prop_assert_eq!(a64.mul_f2_word(&b64).to_rows(), a128.mul_f2_word(&b128).to_rows(), "word kernel");
        prop_assert_eq!(
            a64.mul_f2_four_russians(&b64).to_rows(),
            a128.mul_f2_four_russians(&b128).to_rows(),
            "four-russians"
        );
        prop_assert_eq!(a64.mul_bool(&b64).to_rows(), a128.mul_bool(&b128).to_rows(), "boolean");
    }

    #[test]
    fn bitstring_encoding_is_lane_width_independent(
        values in prop::collection::vec((any::<u64>(), 1usize..65), 0..30),
    ) {
        // The same logical pushes produce the same canonical bytes, bools
        // and reads at both lane widths.
        let mut s64: BitString<u64> = BitString::new();
        let mut s128: BitString<u128> = BitString::new();
        for &(v, w) in &values {
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            s64.push_bits(masked, w);
            s128.push_bits(masked, w);
        }
        prop_assert_eq!(s64.len(), s128.len());
        prop_assert_eq!(s64.to_le_bytes(), s128.to_le_bytes());
        prop_assert_eq!(s64.to_bools(), s128.to_bools());
        let mut r64 = s64.reader();
        let mut r128 = s128.reader();
        for &(v, w) in &values {
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            prop_assert_eq!(r64.read_bits(w), Some(masked));
            prop_assert_eq!(r128.read_bits(w), Some(masked));
        }
        prop_assert!(r64.is_exhausted() && r128.is_exhausted());
    }

    #[test]
    fn evaluate_batch_agrees_across_lane_widths(
        inputs in 2usize..30,
        batch in 1usize..140,
        seed in 0u64..1000,
    ) {
        // `evaluate_batch_lanes` pins the lane word explicitly: 64- and
        // 128-lane passes return identical outputs, both equal to the
        // default-width `evaluate_batch`.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let circuits: Vec<Circuit> = vec![
            builders::parity_tree(inputs, 3),
            builders::majority(inputs),
        ];
        for circuit in &circuits {
            let assignments: Vec<Vec<bool>> = (0..batch)
                .map(|_| (0..circuit.inputs().len()).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let w64 = circuit.evaluate_batch_lanes::<u64>(&assignments);
            let w128 = circuit.evaluate_batch_lanes::<u128>(&assignments);
            prop_assert_eq!(&w64, &w128);
            prop_assert_eq!(&w64, &circuit.evaluate_batch(&assignments));
        }
    }

    #[test]
    fn square_packed_matmul_matches_retained_scalar_reference(d in 1usize..40, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a_rows: Vec<Vec<bool>> = (0..d).map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let b_rows: Vec<Vec<bool>> = (0..d).map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let packed = matmul_f2_reference(&BitMatrix::from_rows(&a_rows), &BitMatrix::from_rows(&b_rows));
        prop_assert_eq!(packed.to_rows(), matmul_f2_scalar(&a_rows, &b_rows));
    }

    #[test]
    fn evaluate_batch_lane_equals_sequential_evaluate(
        inputs in 2usize..30,
        arity in 2usize..5,
        batch in 1usize..80,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // A mix of word-parallel circuits and counting-gate circuits.
        let circuits: Vec<Circuit> = vec![
            builders::parity_tree(inputs, arity),
            builders::majority(inputs),
            builders::mod_m(inputs, 3),
            builders::inner_product_mod2(inputs / 2),
        ];
        for circuit in &circuits {
            let assignments: Vec<Vec<bool>> = (0..batch)
                .map(|_| (0..circuit.inputs().len()).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let batch_out = circuit.evaluate_batch(&assignments);
            prop_assert_eq!(batch_out.len(), assignments.len());
            for (k, assignment) in assignments.iter().enumerate() {
                prop_assert_eq!(&batch_out[k], &circuit.evaluate(assignment), "lane {}", k);
            }
        }
    }

    #[test]
    fn packed_adjacency_round_trips_and_matches_rows(n in 1usize..80, p in 0.0f64..0.6, seed in 0u64..1000) {
        let g = seeded_graph(n, p, seed);
        let m = g.adjacency_bitmatrix();
        prop_assert_eq!(Graph::from_adjacency_bitmatrix(&m), g.clone());
        for u in 0..n {
            let row = g.adjacency_row_bits(u);
            prop_assert_eq!(row.len(), n);
            prop_assert_eq!(row, m.row_bits(u));
        }
    }

    #[test]
    fn mask_columns_never_sets_bits_past_cols(
        rows in 1usize..12,
        cols in 1usize..150,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, rng.gen_bool(0.5));
            }
        }
        let mask: Vec<bool> = (0..cols).map(|_| rng.gen_bool(0.5)).collect();
        let masked = m.mask_columns(&mask);
        assert_no_padding_bits(&masked);
        for i in 0..rows {
            for (j, &keep) in mask.iter().enumerate() {
                prop_assert_eq!(masked.get(i, j), m.get(i, j) && keep);
            }
        }
    }

    #[test]
    fn padded_adjacency_never_sets_bits_past_cols(
        n in 1usize..70,
        pad in 0usize..80,
        p in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let g = seeded_graph(n, p, seed);
        let dim = n + pad;
        let padded = g.adjacency_bitmatrix_padded(dim);
        prop_assert_eq!((padded.rows(), padded.cols()), (dim, dim));
        assert_no_padding_bits(&padded);
        // Padding adds no edges: the set-bit count is exactly 2m, and all
        // bits sit inside the top-left n×n block.
        prop_assert_eq!(padded.count_ones(), 2 * g.edge_count());
        prop_assert_eq!(padded.submatrix(0, 0, n, n), g.adjacency_bitmatrix());
    }

    #[test]
    fn triangle_detection_at_degenerate_sizes_matches_the_oracle(
        n in 1usize..6,
        p in 0.0f64..1.0,
        seed in 0u64..400,
    ) {
        // n ∈ {1, …, 5} drives the dim > n Strassen padding path (dim ∈
        // {1, 2, 4, 8}) and the tiny-group DLP path.
        let g = seeded_graph(n, p, seed);
        let truth = iso::has_triangle(&g);
        let dlp = detect_triangle_dlp(&g, 2).expect("dlp failed");
        prop_assert_eq!(dlp.contains, truth, "dlp at n = {}", n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE6E);
        for strategy in [MatMulStrategy::Naive, MatMulStrategy::Strassen] {
            let outcome = detect_triangle_via_matmul(&g, 4, strategy, 6, &mut rng)
                .expect("matmul detection failed");
            prop_assert_eq!(outcome.contains, truth, "{} at n = {}", strategy.name(), n);
        }
    }

    #[test]
    fn distributed_semiring_product_matches_local_kernel(
        d in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<bool>> = (0..d)
            .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let a = SemiringMatrix::Bits(BitMatrix::from_rows(&rows));
        let b = {
            let rows: Vec<Vec<bool>> = (0..d)
                .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            SemiringMatrix::Bits(BitMatrix::from_rows(&rows))
        };
        let outcome = semiring_matmul(&a, &b, Semiring::Boolean, 3).expect("protocol failed");
        let expected = a.as_bits().unwrap().mul_bool(b.as_bits().unwrap());
        prop_assert_eq!(outcome.as_bits().unwrap(), &expected);
    }

    #[test]
    fn fast_and_sparse_schedules_match_cubic_and_local_kernels(
        d in 1usize..14,
        density in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        // Every schedule is an execution plan for the *same* product: on
        // random operands of every density (including d = 1 and other
        // degenerate dims) the fast and sparse paths must equal the cubic
        // partition and the local kernel entry for entry. Below the
        // crossover the fast path is its documented cubic fallback, so this
        // also pins that seam.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bits = |salt: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ salt);
            let rows: Vec<Vec<bool>> = (0..d)
                .map(|_| (0..d).map(|_| rng.gen_bool(density)).collect())
                .collect();
            SemiringMatrix::Bits(BitMatrix::from_rows(&rows))
        };
        let (a, b) = (bits(0x5EED), bits(0xFA57));
        for semiring in [Semiring::Boolean, Semiring::F2] {
            let a_bits = a.as_bits().unwrap();
            let b_bits = b.as_bits().unwrap();
            let local = match semiring {
                Semiring::Boolean => a_bits.mul_bool(b_bits),
                _ => a_bits.mul_f2(b_bits),
            };
            let cubic = semiring_matmul(&a, &b, semiring, 3).expect("cubic failed");
            prop_assert_eq!(cubic.as_bits().unwrap(), &local, "cubic {}", semiring.name());
            let sparse = sparse_matmul(&a, &b, semiring, 3).expect("sparse failed");
            prop_assert_eq!(sparse.as_bits().unwrap(), &local, "sparse {}", semiring.name());
            if semiring == Semiring::F2 {
                let fast = fast_matmul(&a, &b, semiring, 3).expect("fast failed");
                prop_assert_eq!(fast.as_bits().unwrap(), &local, "fast f2");
            }
        }
        let mut ints = |minplus: bool| {
            let m = IntMatrix::from_rows(&(0..d).map(|_| (0..d).map(|_| {
                if minplus && rng.gen_bool(0.3) {
                    IntMatrix::INFINITY
                } else {
                    rng.gen_range(0..4u64)
                }
            }).collect::<Vec<_>>()).collect::<Vec<_>>());
            SemiringMatrix::Ints(m)
        };
        let (ca, cb) = (ints(false), ints(false));
        let counting_local = ca.as_ints().unwrap().mul_counting(cb.as_ints().unwrap());
        let cubic = semiring_matmul(&ca, &cb, Semiring::Counting, 3).expect("cubic failed");
        prop_assert_eq!(cubic.as_ints().unwrap(), &counting_local, "cubic counting");
        let fast = fast_matmul(&ca, &cb, Semiring::Counting, 3).expect("fast failed");
        prop_assert_eq!(fast.as_ints().unwrap(), &counting_local, "fast counting");
        let sparse = sparse_matmul(&ca, &cb, Semiring::Counting, 3).expect("sparse failed");
        prop_assert_eq!(sparse.as_ints().unwrap(), &counting_local, "sparse counting");
        // Tropical (min, +) has no additive inverse, so no density or size
        // may ever steer Auto dispatch onto the Strassen schedule — it
        // falls back to cubic (or the always-valid sparse path), and the
        // cubic result is the local kernel's.
        let (ta, tb) = (ints(true), ints(true));
        let tropical_local = ta.as_ints().unwrap().mul_min_plus(tb.as_ints().unwrap());
        for n in [d, 56, 512] {
            prop_assert_ne!(
                MatMulSchedule::Auto.resolve(&ta, &tb, Semiring::MinPlus, n),
                MatMulSchedule::Strassen,
                "tropical must never dispatch to strassen (n = {})", n
            );
            prop_assert_ne!(
                MatMulSchedule::Auto.resolve(&a, &b, Semiring::Boolean, n),
                MatMulSchedule::Strassen,
                "boolean must never dispatch to strassen (n = {})", n
            );
        }
        let cubic = semiring_matmul(&ta, &tb, Semiring::MinPlus, 3).expect("cubic failed");
        prop_assert_eq!(cubic.as_ints().unwrap(), &tropical_local, "cubic min-plus");
        let sparse = sparse_matmul(&ta, &tb, Semiring::MinPlus, 3).expect("sparse failed");
        prop_assert_eq!(sparse.as_ints().unwrap(), &tropical_local, "sparse min-plus");
    }

    #[test]
    fn scheduled_matmul_is_transcript_identical_across_workers(
        d in 2usize..12,
        density in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        // The determinism contract extends to every matmul schedule: output
        // and metrics ledger are identical at 1 and 4 workers.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<bool>> = (0..d)
            .map(|_| (0..d).map(|_| rng.gen_bool(density)).collect())
            .collect();
        let a = SemiringMatrix::Bits(BitMatrix::from_rows(&rows));
        for schedule in [MatMulSchedule::Cubic, MatMulSchedule::Sparse, MatMulSchedule::Auto] {
            let run = |threads: usize| {
                Runner::new(CliqueConfig::unicast(d, 3))
                    .with_threads(Some(threads))
                    .execute(&mut ScheduledMatMul::new(&a, &a, Semiring::F2, schedule))
                    .expect("schedule run failed")
            };
            let (one, four) = (run(1), run(4));
            prop_assert_eq!(&one.output, &four.output, "output, {}", schedule.name());
            prop_assert_eq!(&one.metrics, &four.metrics, "ledger, {}", schedule.name());
        }
    }

    #[test]
    fn distributed_triangle_count_matches_the_oracle(
        n in 3usize..22,
        p in 0.0f64..0.7,
        seed in 0u64..1000,
    ) {
        let g = seeded_graph(n, p, seed);
        let outcome = count_triangles(&g, 4).expect("protocol failed");
        prop_assert_eq!(*outcome, iso::triangle_count(&g));
    }

    #[test]
    fn weighted_graph_edges_are_consistent(
        n in 1usize..40,
        p in 0.0f64..0.8,
        max_weight in 1u64..6,
        seed in 0u64..1000,
    ) {
        let g = seeded_weighted_graph(n, p, max_weight, seed);
        prop_assert_eq!(g.vertex_count(), n);
        prop_assert_eq!(g.edge_count(), g.edges().count());
        let mut keys = Vec::new();
        let mut prev = None;
        for (u, v, w) in g.edges() {
            prop_assert!(u < v, "edges are reported with u < v");
            prop_assert!((1..=max_weight).contains(&w), "weight {} out of range", w);
            prop_assert_eq!(g.weight(u, v), Some(w));
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            prop_assert!(prev < Some((u, v)), "edges ascend");
            prev = Some((u, v));
            keys.push(g.edge_order_key(u, v));
        }
        // The (w, u, v) normalization makes every edge key distinct, so the
        // minimum spanning forest is unique.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), keys.len());
        prop_assert_eq!(g.total_weight(), g.edges().map(|(_, _, w)| w).sum::<u64>());
    }

    #[test]
    fn mst_protocol_equals_kruskal_at_one_and_four_workers(
        n in 1usize..24,
        p in 0.0f64..0.6,
        max_weight in 1u64..5,
        seed in 0u64..1000,
        base_capacity in 1usize..6,
    ) {
        let g = seeded_weighted_graph(n, p, max_weight, seed);
        let oracle = iso::minimum_spanning_forest(&g);
        let config = CliqueConfig::broadcast(n, 4);
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let run = Runner::new(config.clone())
                .with_threads(Some(threads))
                .execute(&mut MstProtocol::new(&g, base_capacity))
                .expect("msf run failed");
            prop_assert_eq!(run.total_weight, oracle.total_weight, "threads {}", threads);
            prop_assert_eq!(run.forest(), oracle.clone(), "threads {}", threads);
            runs.push(run);
        }
        // Parallelism never changes the transcript: output and ledger are
        // identical at both worker counts.
        prop_assert_eq!(&runs[0].output, &runs[1].output);
        prop_assert_eq!(&runs[0].metrics, &runs[1].metrics);
    }

    #[test]
    fn degeneracy_ordering_is_always_a_witness(n in 1usize..40, p in 0.0f64..1.0, seed in 0u64..1000) {
        let g = seeded_graph(n, p, seed);
        let d = degeneracy_ordering(&g);
        prop_assert!(verify_elimination_order(&g, &d.order, d.degeneracy));
        // The degeneracy is at most the maximum degree.
        prop_assert!(d.degeneracy <= g.max_degree());
    }

    #[test]
    fn sketch_reconstruction_round_trips(n in 4usize..36, k in 1usize..6, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::random_bounded_degeneracy(n, k, &mut rng);
        let decoded = reconstruct(&g, k.max(1));
        prop_assert_eq!(decoded.unwrap(), g);
    }

    #[test]
    fn sketch_reconstruction_never_returns_a_wrong_graph(n in 6usize..28, p in 0.0f64..0.8, k in 1usize..5, seed in 0u64..1000) {
        let g = seeded_graph(n, p, seed);
        match reconstruct(&g, k) {
            Ok(decoded) => prop_assert_eq!(decoded, g),
            Err(_) => {
                // Failure is only allowed when the capacity is genuinely too
                // small.
                let true_d = degeneracy_ordering(&g).degeneracy;
                prop_assert!(true_d > k, "decode failed although degeneracy {} <= k {}", true_d, k);
            }
        }
    }

    #[test]
    fn behrend_sets_are_ap_free(m in 1usize..600) {
        let s = behrend_set(m);
        prop_assert!(!s.is_empty());
        prop_assert!(is_3ap_free(&s));
        prop_assert!(s.iter().all(|&x| (x as usize) < m));
    }

    #[test]
    fn gate_summaries_respect_partitions(bits in prop::collection::vec(any::<bool>(), 1..20), parts in 1usize..6) {
        let kinds = vec![
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Mod(3),
            GateKind::Threshold(3),
            GateKind::Majority,
        ];
        let chunk = bits.len().div_ceil(parts).max(1);
        for kind in kinds {
            let direct = kind.eval(&bits);
            let summaries: Vec<u64> = bits
                .chunks(chunk)
                .enumerate()
                .map(|(c, vals)| {
                    let indexed: Vec<(usize, bool)> =
                        vals.iter().enumerate().map(|(i, &v)| (c * chunk + i, v)).collect();
                    kind.summary(&indexed)
                })
                .collect();
            prop_assert_eq!(kind.combine(&summaries, bits.len()), direct);
        }
    }

    #[test]
    fn circuit_simulation_equals_direct_evaluation(
        n_players in 2usize..8,
        arity in 2usize..5,
        seed in 0u64..500,
    ) {
        let m = n_players * n_players;
        let circuit: Circuit = builders::parity_tree(m, arity);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input: Vec<bool> = (0..m).map(|_| rng.gen_bool(0.5)).collect();
        let bandwidth = circuit.wire_density(n_players) + 4;
        let sim = simulate_circuit(&circuit, &input, n_players, bandwidth, InputPartition::RoundRobin)
            .expect("simulation failed");
        prop_assert_eq!(sim.outputs, circuit.evaluate(&input));
    }

    #[test]
    fn turan_detection_matches_the_oracle(n in 12usize..30, p in 0.0f64..0.25, seed in 0u64..1000) {
        let g = seeded_graph(n, p, seed);
        for pattern in [Pattern::Cycle(4), Pattern::Clique(3), Pattern::Star(3)] {
            let truth = iso::contains_subgraph(&g, &pattern.graph());
            let outcome = detect_subgraph_turan(&g, &pattern, 4).expect("protocol failed");
            prop_assert_eq!(outcome.contains, truth, "pattern {}", pattern);
        }
    }

    #[test]
    fn dlp_triangle_detection_matches_the_oracle(n in 8usize..28, p in 0.0f64..0.5, seed in 0u64..1000) {
        let g = seeded_graph(n, p, seed);
        let outcome = detect_triangle_dlp(&g, 4).expect("protocol failed");
        prop_assert_eq!(outcome.contains, iso::has_triangle(&g));
        if let Some(w) = &outcome.witness {
            prop_assert!(g.has_edge(w[0], w[1]) && g.has_edge(w[1], w[2]) && g.has_edge(w[0], w[2]));
        }
    }

    #[test]
    fn lower_bound_gadgets_satisfy_observation_11(
        x_bits in prop::collection::vec(any::<bool>(), 64),
        y_bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        // Fixed gadget (K4 on 28 nodes => 36 elements); random instances.
        let lbg = LowerBoundGraph::for_clique(4, 28).unwrap();
        let m = lbg.elements();
        prop_assume!(m <= 64);
        let inst = DisjointnessInstance::new(x_bits[..m].to_vec(), y_bits[..m].to_vec());
        let g = lbg.instantiate(&inst);
        let contains = iso::contains_subgraph(&g, &lbg.pattern().graph());
        prop_assert_eq!(contains, !inst.is_disjoint());
    }

    #[test]
    fn phase_engine_round_accounting_matches_ceiling(msg_bits in 0usize..200, b in 1usize..32, n in 2usize..10) {
        let mut session = Session::new(CliqueConfig::builder().nodes(n).bandwidth(b).broadcast().build());
        let messages: Vec<BitString> = (0..n)
            .map(|i| if i == 0 { BitString::from_bools(&vec![true; msg_bits]) } else { BitString::new() })
            .collect();
        session.broadcast_all("one long message", &messages).unwrap();
        prop_assert_eq!(session.rounds(), (msg_bits as u64).div_ceil(b as u64));
    }

    #[test]
    fn phase_charge_equals_chunked_round_execution(n in 2usize..7, b in 1usize..6, seed in 0u64..500) {
        // The phase engine's `⌈max link load / b⌉` charge must equal the
        // number of rounds a bit-strict chunked execution of the same phase
        // takes on the round engine, and the payload bits must agree, for
        // random mixed broadcast/unicast phases in both modes.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for mode in [CommMode::Unicast, CommMode::Broadcast] {
            let cfg = CliqueConfig::builder().nodes(n).bandwidth(b).mode(mode).build();

            // Random phase: every node may broadcast, and (in unicast mode)
            // may send a few unicasts; repeated sends to one destination are
            // legal and concatenate.
            let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            let mut queues: Vec<Vec<BitString>> = (0..n).map(|_| vec![BitString::new(); n]).collect();
            for (src, out) in outs.iter_mut().enumerate() {
                if rng.gen_bool(0.7) {
                    let len = rng.gen_range(0..24);
                    let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                    if !payload.is_empty() {
                        out.broadcast(payload.clone());
                        // A broadcast occupies every outgoing link in the
                        // unicast model, and the blackboard (queue slot
                        // `src`) in the broadcast model.
                        match mode {
                            CommMode::Unicast => {
                                for (dst, queue) in queues[src].iter_mut().enumerate() {
                                    if dst != src {
                                        queue.extend_from(&payload);
                                    }
                                }
                            }
                            CommMode::Broadcast => queues[src][src].extend_from(&payload),
                        }
                    }
                }
                if mode == CommMode::Unicast {
                    for _ in 0..rng.gen_range(0..4) {
                        let dst = rng.gen_range(0..n);
                        if dst == src {
                            continue;
                        }
                        let len = rng.gen_range(0..24);
                        let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                        out.send(NodeId::new(dst), payload.clone());
                        queues[src][dst].extend_from(&payload);
                    }
                }
            }

            // Phase-engine charge.
            let mut engine = PhaseEngine::new(cfg.clone());
            engine.exchange("mixed phase", outs).unwrap();

            // Bit-strict chunked replay of the same link loads.
            let nodes: Vec<ChunkedSender> = queues
                .into_iter()
                .map(|per_dst| ChunkedSender::new(per_dst, mode))
                .collect();
            let mut strict = RoundEngine::new(cfg, nodes);
            let mut rounds = 0u64;
            while strict.nodes().iter().any(ChunkedSender::pending) {
                strict.step().unwrap();
                rounds += 1;
            }
            prop_assert_eq!(rounds, engine.rounds(), "mode {}", mode);
            prop_assert_eq!(strict.metrics().total_bits, engine.total_bits(), "mode {}", mode);
        }
    }
}

/// Replays precomputed per-link loads in `b`-bit chunks on the strict
/// engine: one chunk per busy link per round, exactly as the phase engine's
/// `⌈max link load / b⌉` accounting assumes.
struct ChunkedSender {
    /// Per-destination queues with read cursors. In broadcast mode the
    /// node's own slot holds the blackboard queue.
    queues: Vec<(BitString, usize)>,
    mode: CommMode,
}

impl ChunkedSender {
    fn new(per_dst: Vec<BitString>, mode: CommMode) -> Self {
        Self {
            queues: per_dst.into_iter().map(|q| (q, 0)).collect(),
            mode,
        }
    }

    fn pending(&self) -> bool {
        self.queues.iter().any(|(q, pos)| *pos < q.len())
    }

    fn chunk(queue: &BitString, pos: &mut usize, b: usize) -> BitString {
        let take = b.min(queue.len() - *pos);
        let mut chunk = BitString::with_capacity(take);
        for i in 0..take {
            chunk.push_bit(queue.bit(*pos + i));
        }
        *pos += take;
        chunk
    }
}

impl NodeAlgorithm for ChunkedSender {
    fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &Inbox, outbox: &mut Outbox) {
        let b = ctx.bandwidth();
        match self.mode {
            CommMode::Unicast => {
                for (dst, (queue, pos)) in self.queues.iter_mut().enumerate() {
                    if *pos < queue.len() {
                        outbox.send(NodeId::new(dst), Self::chunk(queue, pos, b));
                    }
                }
            }
            CommMode::Broadcast => {
                let me = ctx.id.index();
                let (queue, pos) = &mut self.queues[me];
                if *pos < queue.len() {
                    outbox.broadcast(Self::chunk(queue, pos, b));
                }
            }
        }
    }
}

/// A pseudo-random chatterbox for the parallel-determinism pins: every node
/// derives its traffic from `(seed, id, round)` alone, broadcasts (or
/// unicasts a few messages) for `rounds` rounds, and folds everything it
/// receives into a digest. Any scheduling-dependent behaviour of the
/// parallel engine would scramble the digests or the ledger.
struct ChatterNode {
    seed: u64,
    rounds: u64,
    mode: CommMode,
    digest: u64,
    done: bool,
}

impl ChatterNode {
    fn new(seed: u64, rounds: u64, mode: CommMode) -> Self {
        Self {
            seed,
            rounds,
            mode,
            digest: 0,
            done: false,
        }
    }

    /// SplitMix64 over the tuple, so traffic is deterministic per (node,
    /// round) and independent of execution order.
    fn mix(&self, id: usize, round: u64, salt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((id as u64) << 32)
            .wrapping_add(round.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(salt.wrapping_mul(0xBF58476D1CE4E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl NodeAlgorithm for ChatterNode {
    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &Inbox, outbox: &mut Outbox) {
        let me = ctx.id.index();
        for (sender, msg) in inbox.iter() {
            let mut acc = self.digest ^ self.mix(sender.index(), ctx.round, 1);
            for i in 0..msg.len() {
                acc = acc.rotate_left(1) ^ u64::from(msg.bit(i));
            }
            self.digest = acc;
        }
        if ctx.round >= self.rounds {
            self.done = true;
            return;
        }
        let b = ctx.bandwidth();
        match self.mode {
            CommMode::Broadcast => {
                let r = self.mix(me, ctx.round, 2);
                let len = (r % (b as u64 + 1)) as usize;
                let payload: BitString = (0..len).map(|i| r >> (i % 60) & 1 == 1).collect();
                if !payload.is_empty() {
                    outbox.broadcast(payload);
                }
            }
            CommMode::Unicast => {
                for dst in 0..ctx.n() {
                    if dst == me {
                        continue;
                    }
                    let r = self.mix(me, ctx.round, 3 + dst as u64);
                    if r.is_multiple_of(3) {
                        let len = (r % (b as u64 + 1)) as usize;
                        let payload: BitString = (0..len).map(|i| r >> (i % 60) & 1 == 1).collect();
                        outbox.send(NodeId::new(dst), payload);
                    }
                }
            }
        }
    }

    fn halted(&self) -> bool {
        self.done
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_round_engine_is_transcript_identical(
        n in 2usize..12,
        b in 1usize..6,
        rounds in 1u64..6,
        seed in 0u64..1000,
    ) {
        // The determinism contract of `clique_sim::par`: the strict engine
        // produces identical RunReports, metrics ledgers and node outputs
        // at every worker count, in both communication modes.
        for mode in [CommMode::Broadcast, CommMode::Unicast] {
            let run = |threads: usize| {
                let cfg = CliqueConfig::builder().nodes(n).bandwidth(b).mode(mode).build();
                let mut session = Session::new(cfg);
                session.set_threads(Some(threads));
                let nodes = (0..n).map(|_| ChatterNode::new(seed, rounds, mode)).collect();
                let result = session.run_nodes(nodes, rounds + 2).unwrap();
                let digests: Vec<u64> = result.nodes.iter().map(|node| node.digest).collect();
                (result.report, digests, session.into_metrics())
            };
            let baseline = run(1);
            for threads in [2usize, 4, 8] {
                let got = run(threads);
                prop_assert_eq!(&got.0, &baseline.0, "report, mode {}, threads {}", mode, threads);
                prop_assert_eq!(&got.1, &baseline.1, "digests, mode {}, threads {}", mode, threads);
                prop_assert_eq!(&got.2, &baseline.2, "ledger, mode {}, threads {}", mode, threads);
            }
        }
    }

    #[test]
    fn parallel_phase_engine_is_transcript_identical(
        n in 2usize..10,
        b in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Same contract for the bulk-synchronous engine: a protocol built
        // from random mixed phases reports identical outputs and ledgers at
        // every worker count, in both modes.
        for mode in [CommMode::Broadcast, CommMode::Unicast] {
            let run = |threads: usize| {
                let cfg = CliqueConfig::builder().nodes(n).bandwidth(b).mode(mode).build();
                let runner = Runner::new(cfg).with_threads(Some(threads));
                runner.execute(&mut |session: &mut Session| {
                    let mut digest = 0u64;
                    for phase in 0..3u64 {
                        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ phase);
                        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
                        for (src, out) in outs.iter_mut().enumerate() {
                            if rng.gen_bool(0.6) {
                                let len = rng.gen_range(1..20);
                                out.broadcast((0..len).map(|_| rng.gen_bool(0.5)).collect());
                            }
                            if mode == CommMode::Unicast {
                                for _ in 0..rng.gen_range(0..3) {
                                    let dst = rng.gen_range(0..n);
                                    if dst != src {
                                        let len = rng.gen_range(0..16);
                                        out.send(
                                            NodeId::new(dst),
                                            (0..len).map(|_| rng.gen_bool(0.5)).collect(),
                                        );
                                    }
                                }
                            }
                        }
                        let inboxes = session.exchange("chatter", outs)?;
                        for inbox in &inboxes {
                            digest = digest
                                .rotate_left(7)
                                .wrapping_add(inbox.received_bits() as u64)
                                .wrapping_add(inbox.broadcasts().count() as u64);
                        }
                    }
                    Ok(digest)
                }).unwrap()
            };
            let baseline = run(1);
            for threads in [2usize, 4, 8] {
                let got = run(threads);
                prop_assert_eq!(*got, *baseline, "output, mode {}, threads {}", mode, threads);
                prop_assert_eq!(&got.metrics, &baseline.metrics, "ledger, mode {}, threads {}", mode, threads);
            }
        }
    }
}

/// Above the dispatch crossover (n ≥ 56 players, d ≥ 2n rows, here with an
/// odd `d` so every level of the split exercises the non-power-of-two
/// padding seam) the Strassen schedule must (a) equal the local kernel
/// entry for entry, (b) be transcript-identical at 1 and 4 workers, and
/// (c) win rounds against the cubic partition at equal bandwidth — the
/// claim experiment E18 tabulates, pinned here on one grid point.
#[test]
fn strassen_schedule_above_crossover_is_exact_parallel_safe_and_faster() {
    let (n, d, b) = (56usize, 113usize, 4usize);
    assert!(FastMatMul::levels_for(n, d) >= 1, "grid point must recurse");
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    let rows: Vec<Vec<bool>> = (0..d)
        .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let a = SemiringMatrix::Bits(BitMatrix::from_rows(&rows));
    let run = |threads: usize| {
        Runner::new(CliqueConfig::unicast(n, b))
            .with_threads(Some(threads))
            .execute(&mut FastMatMul::new(&a, &a, Semiring::F2))
            .expect("fast run failed")
    };
    let one = run(1);
    let local = a.as_bits().unwrap().mul_f2(a.as_bits().unwrap());
    assert_eq!(one.as_bits().unwrap(), &local, "fast != local kernel");
    let four = run(4);
    assert_eq!(one.output, four.output, "outputs differ across workers");
    assert_eq!(one.metrics, four.metrics, "ledgers differ across workers");
    let cubic = Runner::new(CliqueConfig::unicast(n, b))
        .execute(&mut congested_clique::algebraic::SemiringMatMul::new(
            &a,
            &a,
            Semiring::F2,
        ))
        .expect("cubic run failed");
    assert_eq!(cubic.as_bits().unwrap(), &local, "cubic != local kernel");
    assert!(
        one.rounds() < cubic.rounds(),
        "strassen ({} rounds) must beat cubic ({} rounds) above the crossover",
        one.rounds(),
        cubic.rounds()
    );
}
