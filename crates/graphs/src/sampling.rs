//! The correlated edge-sampling scheme of Section 3.1 (Theorem 9 / Lemma 8).
//!
//! To detect a subgraph without knowing `ex(n, H)`, the paper samples nested
//! subgraphs `G_0 ⊇ G_1 ⊇ … ⊇ G_ℓ` of the input graph: each node `v` picks a
//! uniform value `X_v ∈ {0, …, N−1}` (where `N = 2^⌊log₂ n⌋`), and the level-
//! `j` subgraph keeps the edge `{u, v}` iff `X_u ≡ X_v (mod 2^j)`. Every edge
//! survives to level `j` with probability exactly `2^{-j}`, the edges at a
//! fixed vertex are independent, and a node only needs to learn its
//! neighbours' `X` values (`O(log n)` bits each) to know which of its edges
//! survive — this is the property that makes the sampling implementable with
//! one `O(log n)`-bit broadcast per node.

use rand::Rng;

use crate::degeneracy::degeneracy;
use crate::graph::Graph;

/// The nested sampled subgraphs `G_0, …, G_ℓ` of an input graph, determined
/// by one random value per node.
#[derive(Clone, Debug)]
pub struct SampledSubgraphs {
    /// The per-node random values `X_v ∈ {0, …, 2^ℓ − 1}`.
    pub values: Vec<u64>,
    /// `ℓ = ⌊log₂ n⌋`: the number of non-trivial levels.
    pub levels: usize,
    graph: Graph,
}

impl SampledSubgraphs {
    /// Samples fresh values `X_v` for every node of `graph`.
    pub fn sample<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        let n = graph.vertex_count();
        let levels = if n <= 1 {
            0
        } else {
            (n as f64).log2().floor() as usize
        };
        let modulus = 1u64 << levels;
        let values = (0..n).map(|_| rng.gen_range(0..modulus.max(1))).collect();
        Self::from_values(graph, values)
    }

    /// Builds the structure from explicit values (as the distributed protocol
    /// does after every node has broadcast its `X_v`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of vertices.
    pub fn from_values(graph: &Graph, values: Vec<u64>) -> Self {
        assert_eq!(
            values.len(),
            graph.vertex_count(),
            "one sample value per vertex required"
        );
        let n = graph.vertex_count();
        let levels = if n <= 1 {
            0
        } else {
            (n as f64).log2().floor() as usize
        };
        Self {
            values,
            levels,
            graph: graph.clone(),
        }
    }

    /// The level-`j` subgraph `G_j`: edges `{u, v}` with
    /// `X_u ≡ X_v (mod 2^j)`.
    ///
    /// `G_0` is the whole input graph.
    ///
    /// # Panics
    ///
    /// Panics if `j > self.levels`.
    pub fn level(&self, j: usize) -> Graph {
        assert!(
            j <= self.levels,
            "level {j} out of range (ℓ = {})",
            self.levels
        );
        let modulus = 1u64 << j;
        self.graph
            .filter_edges(|u, v| self.values[u] % modulus == self.values[v] % modulus)
    }

    /// All levels `G_0, …, G_ℓ`.
    pub fn all_levels(&self) -> Vec<Graph> {
        (0..=self.levels).map(|j| self.level(j)).collect()
    }

    /// The degeneracy of each level, `K_0, …, K_ℓ` (the quantity bounded by
    /// Lemma 8).
    pub fn level_degeneracies(&self) -> Vec<usize> {
        self.all_levels().iter().map(degeneracy).collect()
    }

    /// The input graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn level_zero_is_the_whole_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::erdos_renyi(40, 0.3, &mut rng);
        let s = SampledSubgraphs::sample(&g, &mut rng);
        assert_eq!(s.level(0), g);
        assert_eq!(s.all_levels().len(), s.levels + 1);
    }

    #[test]
    fn levels_are_nested() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::erdos_renyi(50, 0.4, &mut rng);
        let s = SampledSubgraphs::sample(&g, &mut rng);
        let levels = s.all_levels();
        for j in 1..levels.len() {
            for (u, v) in levels[j].edges() {
                assert!(
                    levels[j - 1].has_edge(u, v),
                    "edge ({u},{v}) at level {j} missing at level {}",
                    j - 1
                );
            }
        }
    }

    #[test]
    fn survival_probability_is_about_two_to_minus_j() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::complete(128);
        let mut total_level3 = 0usize;
        let trials = 20;
        for _ in 0..trials {
            let s = SampledSubgraphs::sample(&g, &mut rng);
            total_level3 += s.level(3).edge_count();
        }
        let expected = g.edge_count() as f64 / 8.0;
        let mean = total_level3 as f64 / trials as f64;
        assert!(
            mean > expected * 0.75 && mean < expected * 1.25,
            "mean surviving edges {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn degeneracy_shrinks_roughly_geometrically() {
        // Lemma 8: for levels with k·2^{-j} = Ω(log n) the degeneracy of G_j
        // is (1 ± 0.1)·k·2^{-j}. We test the qualitative statement with a
        // generous factor-2 tolerance on a clique (degeneracy n-1).
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::complete(256);
        let k = 255.0;
        let s = SampledSubgraphs::sample(&g, &mut rng);
        let degs = s.level_degeneracies();
        for (j, &d) in degs.iter().enumerate().take(4) {
            let expected = k / f64::powi(2.0, j as i32);
            assert!(
                (d as f64) > expected / 2.0 && (d as f64) < expected * 2.0,
                "level {j}: degeneracy {d}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn explicit_values_are_respected() {
        let g = generators::complete(4);
        // Values chosen so that only {0,2} agree mod 2 and mod 4.
        let s = SampledSubgraphs::from_values(&g, vec![0, 1, 4, 7]);
        let g1 = s.level(1);
        assert!(g1.has_edge(0, 2));
        assert!(g1.has_edge(1, 3));
        assert!(!g1.has_edge(0, 1));
        let g2 = s.level(2);
        assert!(g2.has_edge(0, 2));
        assert!(!g2.has_edge(1, 3));
    }

    #[test]
    fn tiny_graphs() {
        let g = Graph::empty(1);
        let s = SampledSubgraphs::from_values(&g, vec![0]);
        assert_eq!(s.levels, 0);
        assert_eq!(s.level(0).vertex_count(), 1);
    }

    #[test]
    #[should_panic(expected = "one sample value per vertex")]
    fn mismatched_values_panic() {
        let g = Graph::empty(3);
        let _ = SampledSubgraphs::from_values(&g, vec![0, 1]);
    }
}
