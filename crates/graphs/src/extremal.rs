//! Explicit dense pattern-free graphs.
//!
//! The lower-bound constructions of Section 3.2 build a template graph `G'`
//! around a dense `H`-free graph `F`: the denser `F` is, the larger the set
//! disjointness instance and hence the stronger the round lower bound of
//! Lemma 13. This module provides the explicit families used in the paper:
//!
//! * the complete bipartite graph `K_{N/2,N/2}` (extremal for odd cycles and
//!   used in Lemma 14/18),
//! * the Erdős–Rényi *polarity graph* `ER_q` on `q² + q + 1` vertices, a
//!   `C₄`-free graph with `≈ ½·q(q+1)²` edges (asymptotically extremal,
//!   used for Theorem 19 with `ℓ = 4`),
//! * the point–line *incidence graph* of the projective plane `PG(2, q)`,
//!   a bipartite `C₄`-free graph with `(q+1)(q²+q+1)` edges (Observation 20 /
//!   Lemma 21),
//! * a greedy randomized `C_ℓ`-free graph for even `ℓ ≥ 6`, where no simple
//!   explicit extremal construction exists (the lower-bound graph only needs
//!   *some* dense `C_ℓ`-free graph; density affects the bound's strength,
//!   not its validity).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::generators;
use crate::graph::Graph;
use crate::iso::contains_subgraph;

/// Returns `true` if `q` is prime.
pub fn is_prime(q: usize) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// The largest prime `p ≤ x`, or `None` if `x < 2`.
pub fn largest_prime_at_most(x: usize) -> Option<usize> {
    (2..=x).rev().find(|&p| is_prime(p))
}

/// Projective points of `PG(2, q)`: canonical representatives of nonzero
/// vectors in `F_q³` up to scalar multiples. Returns `q² + q + 1` triples.
fn projective_points(q: usize) -> Vec<[usize; 3]> {
    let mut points = Vec::with_capacity(q * q + q + 1);
    // Canonical forms: (1, y, z), (0, 1, z), (0, 0, 1).
    for y in 0..q {
        for z in 0..q {
            points.push([1, y, z]);
        }
    }
    for z in 0..q {
        points.push([0, 1, z]);
    }
    points.push([0, 0, 1]);
    points
}

fn dot_mod(a: &[usize; 3], b: &[usize; 3], q: usize) -> usize {
    (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q
}

/// The Erdős–Rényi polarity graph `ER_q` for a prime `q`.
///
/// Vertices are the `q² + q + 1` points of `PG(2, q)`; two distinct points
/// `u ≠ v` are adjacent iff `u · v ≡ 0 (mod q)`. The graph contains no `C₄`
/// and has `½(q+1)(q²+q+1) − O(q)` edges, which is `(½ − o(1))·n^{3/2}`.
///
/// # Panics
///
/// Panics if `q` is not prime.
pub fn polarity_graph(q: usize) -> Graph {
    assert!(is_prime(q), "polarity graph requires a prime q, got {q}");
    let points = projective_points(q);
    let n = points.len();
    let mut g = Graph::empty(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if dot_mod(&points[i], &points[j], q) == 0 {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// The point–line incidence graph of `PG(2, q)` for a prime `q`: a bipartite
/// graph on `2(q² + q + 1)` vertices (points on one side, lines on the
/// other) with `(q+1)(q²+q+1)` edges and girth 6, hence `C₄`-free.
///
/// # Panics
///
/// Panics if `q` is not prime.
pub fn projective_incidence_graph(q: usize) -> Graph {
    assert!(is_prime(q), "incidence graph requires a prime q, got {q}");
    let points = projective_points(q);
    let lines = projective_points(q); // lines are also projective triples
    let np = points.len();
    let mut g = Graph::empty(2 * np);
    for (i, p) in points.iter().enumerate() {
        for (j, l) in lines.iter().enumerate() {
            if dot_mod(p, l, q) == 0 {
                g.add_edge(i, np + j);
            }
        }
    }
    g
}

/// A dense `C₄`-free graph on exactly `n` vertices: the polarity graph of
/// the largest suitable prime, padded with isolated vertices.
///
/// Returns the empty graph when `n < 7` (the smallest polarity graph has
/// `2² + 2 + 1 = 7` vertices).
pub fn dense_c4_free(n: usize) -> Graph {
    let mut best = Graph::empty(n);
    let mut q = 2usize;
    while q * q + q < n {
        if is_prime(q) {
            let core = polarity_graph(q);
            let mut padded = Graph::empty(n);
            for (u, v) in core.edges() {
                padded.add_edge(u, v);
            }
            best = padded;
        }
        q += 1;
    }
    best
}

/// A dense *bipartite* `C₄`-free graph on exactly `n` vertices (the
/// incidence graph of the largest suitable projective plane, padded), as
/// required by Observation 20 and Lemma 21.
pub fn dense_bipartite_c4_free(n: usize) -> Graph {
    let mut best = Graph::empty(n);
    let mut q = 2usize;
    while 2 * (q * q + q + 1) <= n {
        if is_prime(q) {
            let core = projective_incidence_graph(q);
            let mut padded = Graph::empty(n);
            for (u, v) in core.edges() {
                padded.add_edge(u, v);
            }
            best = padded;
        }
        q += 1;
    }
    best
}

/// A dense `C_ℓ`-free graph on `n` vertices.
///
/// * odd `ℓ`: the complete bipartite graph `K_{⌊n/2⌋,⌈n/2⌉}` (extremal),
/// * `ℓ = 4`: the polarity graph (asymptotically extremal),
/// * even `ℓ ≥ 6`: a greedy randomized construction (dense but not
///   extremal; see the module documentation).
///
/// # Panics
///
/// Panics if `l < 3`.
pub fn dense_cycle_free<R: Rng + ?Sized>(n: usize, l: usize, rng: &mut R) -> Graph {
    assert!(l >= 3, "cycles have at least 3 vertices");
    if l % 2 == 1 {
        generators::complete_bipartite(n / 2, n - n / 2)
    } else if l == 4 {
        dense_c4_free(n)
    } else {
        greedy_pattern_free(n, &generators::cycle(l), 4 * n, rng)
    }
}

/// Greedily builds a graph on `n` vertices containing no copy of `pattern`:
/// random candidate edges are inserted and kept only if they do not create a
/// copy of the pattern. `attempts` bounds the number of candidate edges
/// tried.
pub fn greedy_pattern_free<R: Rng + ?Sized>(
    n: usize,
    pattern: &Graph,
    attempts: usize,
    rng: &mut R,
) -> Graph {
    let mut g = Graph::empty(n);
    if n < 2 {
        return g;
    }
    let mut pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    pairs.shuffle(rng);
    for &(u, v) in pairs.iter().take(attempts.min(pairs.len())) {
        g.add_edge(u, v);
        if contains_subgraph(&g, pattern) {
            g.remove_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::cycle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn primality() {
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(9));
        assert!(is_prime(13));
        assert!(!is_prime(91));
        assert_eq!(largest_prime_at_most(1), None);
        assert_eq!(largest_prime_at_most(10), Some(7));
        assert_eq!(largest_prime_at_most(13), Some(13));
    }

    #[test]
    fn projective_points_count() {
        for q in [2usize, 3, 5] {
            assert_eq!(projective_points(q).len(), q * q + q + 1);
        }
    }

    #[test]
    fn polarity_graph_is_c4_free_and_dense() {
        for q in [2usize, 3, 5] {
            let g = polarity_graph(q);
            let n = q * q + q + 1;
            assert_eq!(g.vertex_count(), n);
            assert!(
                !contains_subgraph(&g, &cycle(4)),
                "ER_{q} must not contain C4"
            );
            // Each point lies on q+1 lines; discounting absolute points the
            // edge count is at least (n(q+1) - 2n)/2.
            let min_edges = (n * (q + 1)).saturating_sub(2 * n) / 2;
            assert!(
                g.edge_count() >= min_edges,
                "ER_{q} has {} edges, expected at least {min_edges}",
                g.edge_count()
            );
        }
    }

    #[test]
    fn incidence_graph_is_bipartite_c4_free() {
        for q in [2usize, 3] {
            let g = projective_incidence_graph(q);
            let n = q * q + q + 1;
            assert_eq!(g.vertex_count(), 2 * n);
            assert_eq!(g.edge_count(), (q + 1) * n);
            assert!(g.is_bipartite());
            assert!(!contains_subgraph(&g, &cycle(4)));
            // Girth 6: it does contain a C6.
            assert!(contains_subgraph(&g, &cycle(6)));
        }
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn polarity_rejects_composite() {
        let _ = polarity_graph(4);
    }

    #[test]
    fn dense_c4_free_padding() {
        let g = dense_c4_free(40); // largest fit: q=5 -> 31 vertices
        assert_eq!(g.vertex_count(), 40);
        assert!(!contains_subgraph(&g, &cycle(4)));
        assert!(g.edge_count() >= 70);
        assert_eq!(dense_c4_free(5).edge_count(), 0);
    }

    #[test]
    fn dense_bipartite_c4_free_properties() {
        let g = dense_bipartite_c4_free(30); // q=3 -> 26 vertices used
        assert_eq!(g.vertex_count(), 30);
        assert!(g.is_bipartite());
        assert!(!contains_subgraph(&g, &cycle(4)));
        assert!(g.edge_count() >= 4 * 13);
    }

    #[test]
    fn dense_cycle_free_is_cycle_free() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for l in [3usize, 4, 5, 6] {
            let g = dense_cycle_free(24, l, &mut rng);
            assert!(
                !contains_subgraph(&g, &cycle(l)),
                "construction for C{l} contains C{l}"
            );
            assert!(g.edge_count() > 0);
        }
        // Odd-cycle-free graphs should be the dense bipartite graph.
        let g5 = dense_cycle_free(20, 5, &mut rng);
        assert_eq!(g5.edge_count(), 100);
    }

    #[test]
    fn greedy_pattern_free_respects_pattern() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pattern = crate::generators::complete(3);
        let g = greedy_pattern_free(20, &pattern, 400, &mut rng);
        assert!(!contains_subgraph(&g, &pattern));
        assert!(
            g.edge_count() >= 20,
            "greedy triangle-free graph too sparse"
        );
    }
}
