//! Subgraph isomorphism for constant-size patterns.
//!
//! The subgraph-detection problem of the paper asks whether the input graph
//! `G` contains a (not necessarily induced) copy of a fixed pattern `H`.
//! Because `H` has constant size, a backtracking search with degree pruning
//! is fast enough to serve both as the local post-processing step of the
//! detection protocols (nodes search the reconstructed graph) and as the
//! ground-truth oracle in tests and experiments.

use crate::graph::Graph;
use crate::weighted::{UnionFind, WeightedGraph};
use clique_sim::linalg::IntMatrix;

/// Returns `true` if `host` contains a subgraph isomorphic to `pattern`.
///
/// An empty pattern (no vertices) is contained in every graph.
pub fn contains_subgraph(host: &Graph, pattern: &Graph) -> bool {
    find_subgraph(host, pattern).is_some()
}

/// Finds a copy of `pattern` in `host`, returning for each pattern vertex the
/// host vertex it is mapped to, or `None` if no copy exists.
///
/// The mapping is injective and preserves every pattern edge (the copy need
/// not be induced).
pub fn find_subgraph(host: &Graph, pattern: &Graph) -> Option<Vec<usize>> {
    let h = pattern.vertex_count();
    if h == 0 {
        return Some(Vec::new());
    }
    if h > host.vertex_count() || pattern.edge_count() > host.edge_count() {
        return None;
    }
    let order = search_order(pattern);
    let mut assignment = vec![usize::MAX; h];
    let mut used = vec![false; host.vertex_count()];
    if backtrack(host, pattern, &order, 0, &mut assignment, &mut used) {
        Some(assignment)
    } else {
        None
    }
}

/// Counts the number of *labelled* copies of `pattern` in `host`, i.e. the
/// number of injective edge-preserving maps from the pattern's vertex set.
///
/// Note that this counts each unlabelled copy `|Aut(pattern)|` times; e.g.
/// a triangle in the host is counted 6 times against `pattern = K_3`.
pub fn count_labelled_copies(host: &Graph, pattern: &Graph) -> u64 {
    let h = pattern.vertex_count();
    if h == 0 {
        return 1;
    }
    if h > host.vertex_count() {
        return 0;
    }
    let order = search_order(pattern);
    let mut assignment = vec![usize::MAX; h];
    let mut used = vec![false; host.vertex_count()];
    let mut count = 0u64;
    count_backtrack(
        host,
        pattern,
        &order,
        0,
        &mut assignment,
        &mut used,
        &mut count,
    );
    count
}

/// Lists the triangles of `graph` as sorted vertex triples.
pub fn triangles(graph: &Graph) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for u in 0..graph.vertex_count() {
        let nu = graph.neighbors(u);
        for (i, &v) in nu.iter().enumerate() {
            if v <= u {
                continue;
            }
            for &w in &nu[i + 1..] {
                if w > v && graph.has_edge(v, w) {
                    out.push((u, v, w));
                }
            }
        }
    }
    out
}

/// Number of triangles in `graph`.
pub fn triangle_count(graph: &Graph) -> u64 {
    triangles(graph).len() as u64
}

/// Returns `true` if `graph` contains a triangle.
pub fn has_triangle(graph: &Graph) -> bool {
    for u in 0..graph.vertex_count() {
        let nu = graph.neighbors(u);
        for (i, &v) in nu.iter().enumerate() {
            if v <= u {
                continue;
            }
            for &w in &nu[i + 1..] {
                if graph.has_edge(v, w) {
                    return true;
                }
            }
        }
    }
    false
}

/// All-pairs BFS distances, with [`IntMatrix::INFINITY`] for unreachable
/// pairs — the ground-truth oracle the `(min, +)` distance-product
/// protocols are checked against.
pub fn bfs_distances(graph: &Graph) -> IntMatrix {
    let n = graph.vertex_count();
    let mut out = IntMatrix::filled(n, n, IntMatrix::INFINITY);
    for s in 0..n {
        let mut queue = std::collections::VecDeque::from([s]);
        out.set(s, s, 0);
        while let Some(u) = queue.pop_front() {
            let du = out.get(s, u);
            for &v in graph.neighbors(u) {
                if out.get(s, v) == IntMatrix::INFINITY {
                    out.set(s, v, du + 1);
                    queue.push_back(v);
                }
            }
        }
    }
    out
}

/// The minimum spanning forest of a weighted graph, as computed by the
/// sequential oracle [`minimum_spanning_forest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningForest {
    /// The forest edges as `(u, v, w)` with `u < v`, ascending by `(u, v)`.
    pub edges: Vec<(usize, usize, u64)>,
    /// Sum of the raw weights of the forest edges.
    pub total_weight: u64,
    /// Number of connected components (isolated vertices included); the
    /// forest has `n - components` edges.
    pub components: usize,
}

/// Kruskal's algorithm under the `(w, u, v)` unique-weight normalization —
/// the ground-truth oracle the distributed MST protocol is checked against.
///
/// On disconnected inputs this returns the minimum spanning *forest*: a
/// minimum spanning tree of every connected component. Because the
/// normalized weights are distinct, the forest is unique, so any correct
/// MST algorithm must return exactly [`SpanningForest::edges`] — tests can
/// compare edge sets, not just totals.
pub fn minimum_spanning_forest(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.vertex_count();
    let mut edges: Vec<(usize, usize, u64)> = graph.edges().collect();
    edges.sort_unstable_by_key(|&(u, v, w)| (w, u, v));
    let mut dsu = UnionFind::new(n);
    let mut forest = Vec::new();
    let mut total_weight = 0u64;
    for (u, v, w) in edges {
        if dsu.union(u, v) {
            forest.push((u, v, w));
            total_weight += w;
            if dsu.components() == 1 {
                break;
            }
        }
    }
    forest.sort_unstable();
    SpanningForest {
        edges: forest,
        total_weight,
        components: dsu.components(),
    }
}

/// Orders pattern vertices so that each vertex (after the first) is adjacent
/// to an earlier one whenever the pattern is connected, which makes the
/// backtracking search prune early. Falls back to degree order across
/// components.
fn search_order(pattern: &Graph) -> Vec<usize> {
    let h = pattern.vertex_count();
    let mut order = Vec::with_capacity(h);
    let mut placed = vec![false; h];
    // Process components by decreasing max degree.
    let mut by_degree: Vec<usize> = (0..h).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(pattern.degree(v)));
    for &seed in &by_degree {
        if placed[seed] {
            continue;
        }
        placed[seed] = true;
        order.push(seed);
        loop {
            // Greedily pick the unplaced vertex with most placed neighbours,
            // breaking ties by degree.
            let next = (0..h)
                .filter(|&v| !placed[v])
                .map(|v| {
                    let connectivity = pattern.neighbors(v).iter().filter(|&&u| placed[u]).count();
                    (connectivity, pattern.degree(v), v)
                })
                .max_by_key(|&(c, d, _)| (c, d));
            match next {
                Some((c, _, v)) if c > 0 => {
                    placed[v] = true;
                    order.push(v);
                }
                _ => break,
            }
        }
    }
    // Any remaining isolated-or-disconnected vertices.
    for (v, &is_placed) in placed.iter().enumerate() {
        if !is_placed {
            order.push(v);
        }
    }
    order
}

fn candidate_ok(
    host: &Graph,
    pattern: &Graph,
    assignment: &[usize],
    pattern_vertex: usize,
    host_vertex: usize,
) -> bool {
    if host.degree(host_vertex) < pattern.degree(pattern_vertex) {
        return false;
    }
    for &pn in pattern.neighbors(pattern_vertex) {
        let mapped = assignment[pn];
        if mapped != usize::MAX && !host.has_edge(host_vertex, mapped) {
            return false;
        }
    }
    true
}

fn backtrack(
    host: &Graph,
    pattern: &Graph,
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<usize>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let pv = order[depth];
    for hv in candidate_hosts(host, pattern, assignment, pv) {
        if used[hv] || !candidate_ok(host, pattern, assignment, pv, hv) {
            continue;
        }
        assignment[pv] = hv;
        used[hv] = true;
        if backtrack(host, pattern, order, depth + 1, assignment, used) {
            return true;
        }
        assignment[pv] = usize::MAX;
        used[hv] = false;
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn count_backtrack(
    host: &Graph,
    pattern: &Graph,
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<usize>,
    used: &mut Vec<bool>,
    count: &mut u64,
) {
    if depth == order.len() {
        *count += 1;
        return;
    }
    let pv = order[depth];
    for hv in candidate_hosts(host, pattern, assignment, pv) {
        if used[hv] || !candidate_ok(host, pattern, assignment, pv, hv) {
            continue;
        }
        assignment[pv] = hv;
        used[hv] = true;
        count_backtrack(host, pattern, order, depth + 1, assignment, used, count);
        assignment[pv] = usize::MAX;
        used[hv] = false;
    }
}

/// Candidate host vertices for `pattern_vertex`: if some neighbour is already
/// mapped, only the host-neighbours of its image need to be considered;
/// otherwise all host vertices.
fn candidate_hosts(
    host: &Graph,
    pattern: &Graph,
    assignment: &[usize],
    pattern_vertex: usize,
) -> Vec<usize> {
    for &pn in pattern.neighbors(pattern_vertex) {
        let mapped = assignment[pn];
        if mapped != usize::MAX {
            return host.neighbors(mapped).to_vec();
        }
    }
    (0..host.vertex_count()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_pattern_always_found() {
        let g = generators::cycle(5);
        assert!(contains_subgraph(&g, &Graph::empty(0)));
        assert_eq!(find_subgraph(&g, &Graph::empty(0)), Some(vec![]));
    }

    #[test]
    fn triangle_in_complete_graph() {
        let g = generators::complete(5);
        let k3 = generators::complete(3);
        let mapping = find_subgraph(&g, &k3).unwrap();
        assert_eq!(mapping.len(), 3);
        for (u, v) in k3.edges() {
            assert!(g.has_edge(mapping[u], mapping[v]));
        }
        assert!(has_triangle(&g));
        assert_eq!(triangle_count(&g), 10);
        assert_eq!(count_labelled_copies(&g, &k3), 60);
    }

    #[test]
    fn no_triangle_in_bipartite_graph() {
        let g = generators::complete_bipartite(4, 4);
        assert!(!has_triangle(&g));
        assert!(!contains_subgraph(&g, &generators::complete(3)));
        assert!(contains_subgraph(&g, &generators::cycle(4)));
        assert!(contains_subgraph(&g, &generators::complete_bipartite(2, 2)));
        assert!(!contains_subgraph(
            &g,
            &generators::complete_bipartite(5, 2)
        ));
    }

    #[test]
    fn cycle_detection_lengths() {
        let g = generators::cycle(7);
        assert!(contains_subgraph(&g, &generators::cycle(7)));
        assert!(!contains_subgraph(&g, &generators::cycle(4)));
        assert!(!contains_subgraph(&g, &generators::cycle(3)));
        assert!(contains_subgraph(&g, &generators::path(7)));
    }

    #[test]
    fn k4_detection() {
        let mut g = generators::turan_graph(12, 3);
        let k4 = generators::complete(4);
        assert!(!contains_subgraph(&g, &k4));
        // Add one edge inside a part to create a K4.
        g.add_edge(0, 3);
        assert!(contains_subgraph(&g, &k4));
    }

    #[test]
    fn planted_pattern_is_found_and_absence_detected() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let pattern = generators::complete_bipartite(2, 3);
        let host = generators::random_bipartite(15, 15, 0.08, &mut rng);
        let (with_copy, _) = generators::plant_copy(&host, &pattern, &mut rng);
        assert!(contains_subgraph(&with_copy, &pattern));
    }

    #[test]
    fn disconnected_pattern() {
        let two_edges = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let host = generators::perfect_matching(2);
        assert!(contains_subgraph(&host, &two_edges));
        let host_single = generators::perfect_matching(1);
        assert!(!contains_subgraph(&host_single, &two_edges));
    }

    #[test]
    fn bfs_distances_handle_disconnection_and_paths() {
        // A path 0–1–2 plus an isolated vertex 3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let d = bfs_distances(&g);
        assert_eq!(d.get(0, 2), 2);
        assert_eq!(d.get(2, 0), 2);
        assert_eq!(d.get(1, 1), 0);
        assert_eq!(d.get(0, 3), IntMatrix::INFINITY);
        assert_eq!(d.get(3, 3), 0);
    }

    #[test]
    fn triangles_listing_is_sorted_and_correct() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let ts = triangles(&g);
        assert_eq!(ts, vec![(0, 1, 2), (2, 3, 4)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn count_matches_brute_force_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        for _ in 0..10 {
            let g = generators::erdos_renyi(8, 0.5, &mut rng);
            let k3 = generators::complete(3);
            // count_labelled_copies counts each triangle 3! = 6 times.
            assert_eq!(count_labelled_copies(&g, &k3), 6 * triangle_count(&g));
        }
    }

    #[test]
    fn kruskal_on_a_known_instance() {
        // Classic 4-cycle with a chord: MST = {0-1, 1-2, 2-3}.
        let g =
            WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 1), (0, 3, 5), (0, 2, 4)]);
        let forest = minimum_spanning_forest(&g);
        assert_eq!(forest.edges, vec![(0, 1, 1), (1, 2, 2), (2, 3, 1)]);
        assert_eq!(forest.total_weight, 4);
        assert_eq!(forest.components, 1);
    }

    #[test]
    fn kruskal_handles_forests_and_trivial_graphs() {
        // Two components plus an isolated vertex.
        let g = WeightedGraph::from_edges(5, &[(0, 1, 3), (1, 2, 1), (0, 2, 2), (3, 4, 7)]);
        let forest = minimum_spanning_forest(&g);
        assert_eq!(forest.edges, vec![(0, 2, 2), (1, 2, 1), (3, 4, 7)]);
        assert_eq!(forest.total_weight, 10);
        assert_eq!(forest.components, 2);

        let trivial = minimum_spanning_forest(&WeightedGraph::empty(1));
        assert_eq!(trivial.edges, vec![]);
        assert_eq!(trivial.components, 1);
        assert_eq!(
            minimum_spanning_forest(&WeightedGraph::empty(0)).components,
            0
        );
    }

    #[test]
    fn kruskal_tie_break_picks_lexicographically_smallest_edges() {
        // All weights equal on K4: the (w, u, v) order must pick the star
        // at vertex 0, the lexicographically smallest spanning tree.
        let g = crate::weighted::constant_weights(&generators::complete(4), 5);
        let forest = minimum_spanning_forest(&g);
        assert_eq!(forest.edges, vec![(0, 1, 5), (0, 2, 5), (0, 3, 5)]);
        assert_eq!(forest.total_weight, 15);
    }

    #[test]
    fn kruskal_weight_is_optimal_on_random_instances() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x312);
        for _ in 0..6 {
            let g = crate::weighted::weighted_erdos_renyi(9, 0.5, 6, &mut rng);
            let forest = minimum_spanning_forest(&g);
            // Spanning-forest size matches the component structure.
            assert_eq!(
                forest.edges.len(),
                g.vertex_count() - forest.components,
                "forest size vs components"
            );
            // Exhaustively check optimality over all spanning forests via
            // the cycle property: removing any forest edge and reconnecting
            // with any non-forest edge across the same cut never improves.
            for &(u, v, w) in &forest.edges {
                for (a, b, w2) in g.edges() {
                    if forest.edges.contains(&(a, b, w2)) {
                        continue;
                    }
                    let mut dsu = UnionFind::new(g.vertex_count());
                    for &(x, y, _) in forest.edges.iter().filter(|&&e| e != (u, v, w)) {
                        dsu.union(x, y);
                    }
                    // (a, b) reconnects the split iff it crosses the cut.
                    if !dsu.connected(a, b) && dsu.connected(a, u) != dsu.connected(b, u) {
                        assert!(
                            (w2, a, b) > (w, u, v),
                            "swap ({a},{b},{w2}) for ({u},{v},{w}) would improve the forest"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pattern_larger_than_host_not_found() {
        let g = generators::complete(3);
        assert!(!contains_subgraph(&g, &generators::complete(4)));
        assert_eq!(count_labelled_copies(&g, &generators::complete(4)), 0);
    }
}
