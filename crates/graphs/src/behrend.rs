//! Behrend sets and Ruzsa–Szemerédi graphs.
//!
//! Theorem 24 reduces 3-party number-on-forehead set disjointness to triangle
//! detection using a family of tripartite graphs (Claim 23, due to Ruzsa and
//! Szemerédi) in which every edge lies in exactly one triangle and the number
//! of triangles is `n²/e^{O(√log n)}`. The standard explicit construction
//! goes through Behrend's large subsets of `[m]` with no 3-term arithmetic
//! progression, implemented here.

use crate::graph::Graph;

/// Computes a large subset of `{0, …, m-1}` containing no non-trivial
/// 3-term arithmetic progression (Behrend's construction).
///
/// The returned set has size `m / e^{O(√log m)}`; for small `m` the
/// construction falls back to exhaustively-known small AP-free sets so that
/// the result is never empty for `m ≥ 1`.
///
/// # Examples
///
/// ```
/// let s = clique_graphs::behrend::behrend_set(729);
/// assert!(clique_graphs::behrend::is_3ap_free(&s));
/// assert!(s.len() >= 20);
/// ```
pub fn behrend_set(m: usize) -> Vec<u64> {
    if m == 0 {
        return Vec::new();
    }
    if m <= 4 {
        // {0, 1} is AP-free (a progression needs three distinct elements);
        // include as much as fits.
        return (0..m.min(2) as u64).collect();
    }

    // For moderate m the greedy (Stanley-sequence) construction beats the
    // sphere construction by a wide margin; keep whichever is larger.
    let mut best: Vec<u64> = if m <= 1 << 15 {
        greedy_ap_free(m)
    } else {
        vec![0, 1]
    };
    // Try every dimension k up to ~2·sqrt(log2 m) and keep the best result.
    let max_k = ((m as f64).log2().sqrt() * 2.0).ceil() as usize + 1;
    for k in 1..=max_k.max(1) {
        let d = ((m as f64).powf(1.0 / k as f64) / 2.0).floor() as usize;
        if d < 2 {
            continue;
        }
        // All vectors in {0,…,d-1}^k, grouped by squared norm; the vectors of
        // any fixed norm lie on a sphere, which contains no three collinear
        // points, so mapping them to integers in base 2d (no carries when
        // adding two of them) yields an AP-free set.
        let mut by_norm: std::collections::HashMap<usize, Vec<u64>> =
            std::collections::HashMap::new();
        let mut vector = vec![0usize; k];
        loop {
            let norm: usize = vector.iter().map(|&x| x * x).sum();
            let mut value: u64 = 0;
            let base = (2 * d) as u64;
            for &digit in vector.iter().rev() {
                value = value * base + digit as u64;
            }
            if (value as usize) < m {
                by_norm.entry(norm).or_default().push(value);
            }
            // Increment the vector (odometer-style).
            let mut pos = 0;
            loop {
                if pos == k {
                    break;
                }
                vector[pos] += 1;
                if vector[pos] < d {
                    break;
                }
                vector[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
        if let Some(candidate) = by_norm.into_values().max_by_key(Vec::len) {
            if candidate.len() > best.len() {
                best = candidate;
            }
        }
    }
    best.sort_unstable();
    best
}

/// Greedily builds an AP-free subset of `{0, …, m-1}` (the Stanley sequence:
/// integers with no digit 2 in base 3), of size `Θ(m^{log₃ 2}) ≈ Θ(m^{0.63})`.
fn greedy_ap_free(m: usize) -> Vec<u64> {
    let mut chosen: Vec<u64> = Vec::new();
    let mut member = vec![false; m];
    for c in 0..m as u64 {
        // Adding c (the largest element so far) creates a progression
        // a < b < c exactly when 2b - c is a chosen element for some chosen b.
        let creates_ap = chosen.iter().any(|&b| {
            let a2 = 2 * b;
            a2 >= c && a2 - c < b && member[(a2 - c) as usize]
        });
        if !creates_ap {
            member[c as usize] = true;
            chosen.push(c);
        }
    }
    chosen
}

/// Returns `true` if `set` contains no non-trivial 3-term arithmetic
/// progression `a, a+s, a+2s` with `s > 0`.
pub fn is_3ap_free(set: &[u64]) -> bool {
    let elements: std::collections::HashSet<u64> = set.iter().copied().collect();
    for (i, &a) in set.iter().enumerate() {
        for &b in set.iter().skip(i + 1) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if lo == hi {
                continue;
            }
            let diff = hi - lo;
            if elements.contains(&(hi + diff)) {
                return false;
            }
        }
    }
    true
}

/// A Ruzsa–Szemerédi tripartite graph together with its triangle structure.
///
/// The graph has parts `A = {0,…,m-1}`, `B = {m,…,3m-1}`, `C = {3m,…,6m-1}`
/// and, for every `x ∈ [m]` and `s` in a Behrend set `S ⊆ [m]`, the triangle
/// `{A_x, B_{x+s}, C_{x+2s}}`. Every edge lies in exactly one of these
/// triangles, and because `S` is 3-AP-free these are the *only* triangles of
/// the graph — exactly the properties required by Claim 23 and Theorem 24.
#[derive(Clone, Debug)]
pub struct RuzsaSzemeredi {
    /// The underlying tripartite graph on `6m` vertices.
    pub graph: Graph,
    /// The designated edge-disjoint triangles `(a, b, c)` by vertex id.
    pub triangles: Vec<(usize, usize, usize)>,
    /// The parameter `m` (size of part `A`).
    pub m: usize,
    /// The Behrend set used.
    pub behrend: Vec<u64>,
}

impl RuzsaSzemeredi {
    /// Builds the Ruzsa–Szemerédi graph with parameter `m`.
    pub fn new(m: usize) -> Self {
        let behrend = behrend_set(m);
        let mut graph = Graph::empty(6 * m);
        let mut triangles = Vec::with_capacity(m * behrend.len());
        for x in 0..m {
            for &s in &behrend {
                let s = s as usize;
                let a = x;
                let b = m + x + s; // x+s < 2m
                let c = 3 * m + x + 2 * s; // x+2s < 3m
                graph.add_edge(a, b);
                graph.add_edge(b, c);
                graph.add_edge(a, c);
                triangles.push((a, b, c));
            }
        }
        Self {
            graph,
            triangles,
            m,
            behrend,
        }
    }

    /// Number of vertices of the graph.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of designated (and, in fact, of all) triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Index lookup: for an edge of the graph, the unique designated triangle
    /// containing it, as an index into [`Self::triangles`]. Returns `None`
    /// for pairs that are not edges.
    pub fn triangle_of_edge(&self, u: usize, v: usize) -> Option<usize> {
        // Every edge belongs to exactly one designated triangle, so a linear
        // index keyed by the sorted pair suffices.
        let key = if u < v { (u, v) } else { (v, u) };
        self.edge_index().get(&key).copied()
    }

    fn edge_index(&self) -> std::collections::HashMap<(usize, usize), usize> {
        let mut map = std::collections::HashMap::new();
        for (idx, &(a, b, c)) in self.triangles.iter().enumerate() {
            for (u, v) in [(a, b), (b, c), (a, c)] {
                let key = if u < v { (u, v) } else { (v, u) };
                map.insert(key, idx);
            }
        }
        map
    }

    /// Part sizes `(|A|, |B|, |C|)` as vertex-id ranges.
    pub fn parts(
        &self,
    ) -> (
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
    ) {
        (0..self.m, self.m..3 * self.m, 3 * self.m..6 * self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::triangles;

    #[test]
    fn behrend_sets_are_ap_free_and_nonempty() {
        for m in [1usize, 2, 5, 10, 64, 200, 729, 2048] {
            let s = behrend_set(m);
            assert!(!s.is_empty(), "Behrend set empty for m = {m}");
            assert!(is_3ap_free(&s), "Behrend set has a 3-AP for m = {m}");
            assert!(s.iter().all(|&x| (x as usize) < m));
            // Sorted and duplicate-free.
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn behrend_sets_grow_superlinearly_in_practice() {
        // The construction should clearly beat the trivial {0, 1} answer and
        // grow with m.
        let small = behrend_set(100).len();
        let large = behrend_set(10_000).len();
        assert!(small >= 5, "|S(100)| = {small}");
        assert!(large >= 40, "|S(10000)| = {large}");
        assert!(large > small);
    }

    #[test]
    fn ap_detector_works() {
        assert!(is_3ap_free(&[]));
        assert!(is_3ap_free(&[5]));
        assert!(is_3ap_free(&[1, 2]));
        assert!(!is_3ap_free(&[1, 2, 3]));
        assert!(!is_3ap_free(&[0, 4, 8]));
        assert!(is_3ap_free(&[0, 1, 3, 4, 9]));
    }

    #[test]
    fn ruzsa_szemeredi_structure() {
        let rs = RuzsaSzemeredi::new(30);
        assert_eq!(rs.vertex_count(), 180);
        assert_eq!(rs.triangle_count(), 30 * rs.behrend.len());
        // Every designated triangle is a triangle of the graph.
        for &(a, b, c) in &rs.triangles {
            assert!(rs.graph.has_edge(a, b));
            assert!(rs.graph.has_edge(b, c));
            assert!(rs.graph.has_edge(a, c));
        }
        // Edge-disjointness: 3 * #triangles = #edges.
        assert_eq!(rs.graph.edge_count(), 3 * rs.triangle_count());
    }

    #[test]
    fn ruzsa_szemeredi_has_no_extra_triangles() {
        let rs = RuzsaSzemeredi::new(20);
        let all = triangles(&rs.graph);
        assert_eq!(all.len(), rs.triangle_count());
        let designated: std::collections::HashSet<(usize, usize, usize)> = rs
            .triangles
            .iter()
            .map(|&(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                (t[0], t[1], t[2])
            })
            .collect();
        for t in all {
            assert!(designated.contains(&t), "unexpected triangle {t:?}");
        }
    }

    #[test]
    fn triangle_of_edge_lookup() {
        let rs = RuzsaSzemeredi::new(12);
        for (idx, &(a, b, c)) in rs.triangles.iter().enumerate() {
            assert_eq!(rs.triangle_of_edge(a, b), Some(idx));
            assert_eq!(rs.triangle_of_edge(c, b), Some(idx));
            assert_eq!(rs.triangle_of_edge(a, c), Some(idx));
        }
        assert_eq!(rs.triangle_of_edge(0, 1), None); // both in part A
    }

    #[test]
    fn parts_are_disjoint_ranges() {
        let rs = RuzsaSzemeredi::new(8);
        let (a, b, c) = rs.parts();
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 16);
        assert_eq!(c.len(), 24);
        assert!(a.end <= b.start && b.end <= c.start);
    }

    #[test]
    fn empty_parameter() {
        let rs = RuzsaSzemeredi::new(0);
        assert_eq!(rs.vertex_count(), 0);
        assert_eq!(rs.triangle_count(), 0);
    }
}
