//! Degeneracy, degeneracy orderings and k-cores.
//!
//! The degeneracy of a graph `G` is the smallest `k` such that every subgraph
//! of `G` has a vertex of degree at most `k`. Claim 6 of the paper bounds the
//! degeneracy of `H`-free graphs by `4·ex(n, H)/n`, and the one-round
//! reconstruction protocol of Becker et al. (the backbone of Theorems 7
//! and 9) works exactly when the degeneracy is at most its parameter `k`.

use crate::graph::Graph;

/// The result of a degeneracy computation: the value and a witnessing
/// elimination ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// The degeneracy of the graph.
    pub degeneracy: usize,
    /// An ordering `v_1, …, v_n` such that every vertex has at most
    /// `degeneracy` neighbours *later* in the ordering.
    pub order: Vec<usize>,
}

/// Computes the degeneracy and an elimination ordering in `O(n + m)` time
/// using the standard bucket-peeling algorithm.
///
/// # Examples
///
/// ```
/// use clique_graphs::{degeneracy::degeneracy_ordering, generators};
///
/// let g = generators::cycle(10);
/// let d = degeneracy_ordering(&g);
/// assert_eq!(d.degeneracy, 2);
/// assert_eq!(d.order.len(), 10);
/// ```
pub fn degeneracy_ordering(graph: &Graph) -> DegeneracyOrdering {
    let n = graph.vertex_count();
    if n == 0 {
        return DegeneracyOrdering {
            degeneracy: 0,
            order: Vec::new(),
        };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Buckets of vertices by current degree.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut current = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket; degrees only decrease by one per
        // removal, so scanning from `current.saturating_sub(1)` keeps the
        // total work linear.
        current = current.saturating_sub(1);
        loop {
            while current < buckets.len() {
                // Pop stale entries lazily.
                match buckets[current].last() {
                    Some(&v) if removed[v] || degree[v] != current => {
                        buckets[current].pop();
                    }
                    Some(_) => break,
                    None => break,
                }
            }
            if current < buckets.len() && !buckets[current].is_empty() {
                break;
            }
            current += 1;
        }
        let v = buckets[current].pop().expect("non-empty bucket");
        removed[v] = true;
        degeneracy = degeneracy.max(current);
        order.push(v);
        for &u in graph.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    DegeneracyOrdering { degeneracy, order }
}

/// The degeneracy of the graph (see [`degeneracy_ordering`]).
pub fn degeneracy(graph: &Graph) -> usize {
    degeneracy_ordering(graph).degeneracy
}

/// The `k`-core of the graph: the maximal induced subgraph of minimum degree
/// at least `k`, returned as the set of vertices it contains (possibly empty).
pub fn k_core(graph: &Graph, k: usize) -> Vec<usize> {
    let n = graph.vertex_count();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&v| degree[v] < k).collect();
    for &v in &queue {
        removed[v] = true;
    }
    while let Some(v) = queue.pop() {
        for &u in graph.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                if degree[u] < k {
                    removed[u] = true;
                    queue.push(u);
                }
            }
        }
    }
    (0..n).filter(|&v| !removed[v]).collect()
}

/// Verifies that `order` is an elimination ordering witnessing degeneracy at
/// most `k`: every vertex has at most `k` neighbours appearing later.
pub fn verify_elimination_order(graph: &Graph, order: &[usize], k: usize) -> bool {
    let n = graph.vertex_count();
    if order.len() != n {
        return false;
    }
    let mut position = vec![usize::MAX; n];
    for (idx, &v) in order.iter().enumerate() {
        if v >= n || position[v] != usize::MAX {
            return false;
        }
        position[v] = idx;
    }
    for v in 0..n {
        let later = graph
            .neighbors(v)
            .iter()
            .filter(|&&u| position[u] > position[v])
            .count();
        if later > k {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degeneracy_of_basic_families() {
        assert_eq!(degeneracy(&Graph::empty(0)), 0);
        assert_eq!(degeneracy(&Graph::empty(7)), 0);
        assert_eq!(degeneracy(&generators::path(10)), 1);
        assert_eq!(degeneracy(&generators::star(9)), 1);
        assert_eq!(degeneracy(&generators::cycle(9)), 2);
        assert_eq!(degeneracy(&generators::complete(6)), 5);
        assert_eq!(degeneracy(&generators::complete_bipartite(3, 7)), 3);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xDE6E);
        assert_eq!(degeneracy(&generators::random_tree(30, &mut rng)), 1);
    }

    #[test]
    fn ordering_witnesses_degeneracy() {
        for g in [
            generators::complete(5),
            generators::cycle(12),
            generators::turan_graph(12, 3),
            generators::complete_bipartite(4, 9),
        ] {
            let d = degeneracy_ordering(&g);
            assert!(verify_elimination_order(&g, &d.order, d.degeneracy));
            if d.degeneracy > 0 {
                assert!(
                    !verify_elimination_order(&g, &d.order, d.degeneracy - 1),
                    "ordering should not witness a smaller degeneracy for this graph"
                );
            }
        }
    }

    #[test]
    fn k_core_of_clique_plus_pendant() {
        let mut g = generators::complete(4);
        let mut h = Graph::empty(5);
        for (u, v) in g.edges() {
            h.add_edge(u, v);
        }
        h.add_edge(3, 4);
        g = h;
        let core3 = k_core(&g, 3);
        assert_eq!(core3, vec![0, 1, 2, 3]);
        let core4 = k_core(&g, 4);
        assert!(core4.is_empty());
        let core1 = k_core(&g, 1);
        assert_eq!(core1.len(), 5);
    }

    #[test]
    fn verify_rejects_bad_orders() {
        let g = generators::complete(4);
        assert!(!verify_elimination_order(&g, &[0, 1, 2], 3));
        assert!(!verify_elimination_order(&g, &[0, 0, 1, 2], 3));
        assert!(verify_elimination_order(&g, &[0, 1, 2, 3], 3));
        assert!(!verify_elimination_order(&g, &[0, 1, 2, 3], 2));
    }

    #[test]
    fn degeneracy_matches_naive_definition_on_small_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        for _ in 0..20 {
            let g = generators::erdos_renyi(9, 0.4, &mut rng);
            let fast = degeneracy(&g);
            let naive = naive_degeneracy(&g);
            assert_eq!(fast, naive);
        }
    }

    /// Exponential-time reference: max over subsets of the min degree.
    fn naive_degeneracy(g: &Graph) -> usize {
        let n = g.vertex_count();
        let mut best = 0;
        for mask in 1u32..(1 << n) {
            let verts: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
            let (sub, _) = g.induced_subgraph(&verts);
            let min_deg = (0..sub.vertex_count())
                .map(|v| sub.degree(v))
                .min()
                .unwrap_or(0);
            best = best.max(min_deg);
        }
        best
    }
}
