//! # clique-graphs — graph substrate for the congested clique reproduction
//!
//! This crate provides every graph-theoretic ingredient used by the
//! reproduction of Drucker, Kuhn & Oshman, *On the Power of the Congested
//! Clique Model* (PODC 2014):
//!
//! * [`graph::Graph`] — the undirected graph type whose adjacency rows are
//!   the players' inputs in the subgraph-detection problem;
//! * [`generators`] — pattern graphs, random hosts and planted instances;
//! * [`degeneracy`] — degeneracy, elimination orderings and `k`-cores
//!   (Claim 6);
//! * [`iso`] — subgraph-isomorphism search used as the local post-processing
//!   step of the detection protocols and as the ground-truth oracle;
//! * [`turan`] — the [`turan::Pattern`] type and Turán-number upper bounds
//!   (Definition 5, Theorem 7);
//! * [`extremal`] — explicit dense `H`-free graphs: polarity graphs,
//!   projective incidence graphs, greedy constructions (Section 3.2–3.5);
//! * [`behrend`] — Behrend AP-free sets and Ruzsa–Szemerédi graphs
//!   (Claim 23, Theorem 24);
//! * [`sampling`] — the correlated edge-sampling scheme of Theorem 9 /
//!   Lemma 8;
//! * [`weighted`] — edge-weighted graphs with the `(w, u, v)` unique-weight
//!   normalization, weighted generators and the Kruskal/Borůvka union-find.
//!
//! # Examples
//!
//! ```
//! use clique_graphs::{generators, iso, turan::Pattern};
//!
//! // Build the extremal K4-free graph on 12 vertices and check it really is
//! // K4-free but contains triangles.
//! let g = generators::turan_graph(12, 3);
//! assert!(!iso::contains_subgraph(&g, &Pattern::Clique(4).graph()));
//! assert!(iso::contains_subgraph(&g, &Pattern::Clique(3).graph()));
//! assert!(g.edge_count() as f64 <= Pattern::Clique(4).ex_upper_bound(12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behrend;
pub mod degeneracy;
pub mod extremal;
pub mod generators;
pub mod graph;
pub mod iso;
pub mod sampling;
pub mod turan;
pub mod weighted;

pub use graph::Graph;
pub use turan::Pattern;
pub use weighted::WeightedGraph;
