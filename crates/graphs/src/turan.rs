//! Fixed subgraph patterns and Turán-number bounds.
//!
//! The upper bound of Theorem 7 runs the reconstruction protocol with
//! degeneracy parameter `Θ(ex(n, H)/n)`, so the detection algorithms need a
//! per-pattern estimate of the Turán number `ex(n, H)` (Definition 5 /
//! Definition 17). [`Pattern`] names the pattern families used throughout
//! the paper and [`Pattern::ex_upper_bound`] returns the standard upper
//! bounds from extremal graph theory that the paper quotes:
//!
//! * odd cycles and non-bipartite `H` in general: `ex(n, H) = Θ(n²)`,
//! * the 4-cycle: `ex(n, C₄) = Θ(n^{3/2})`,
//! * even cycles `C_{2ℓ}`: `ex(n, C_{2ℓ}) = O(n^{1+1/ℓ})` (Bondy–Simonovits),
//! * `K_{r,s}` with `2 ≤ r ≤ s`: `ex(n, K_{r,s}) = O(n^{2−1/r})`
//!   (Kővári–Sós–Turán),
//! * trees/forests on `k` vertices: `ex(n, H) ≤ (k−2)·n` (Erdős–Gallai).

use crate::generators;
use crate::graph::Graph;

/// A fixed pattern graph `H` for the `H`-subgraph-detection problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// The clique `K_ℓ`.
    Clique(usize),
    /// The cycle `C_ℓ` (`ℓ ≥ 3`).
    Cycle(usize),
    /// The complete bipartite graph `K_{ℓ,m}`.
    CompleteBipartite(usize, usize),
    /// The path on `k` vertices.
    Path(usize),
    /// The star `K_{1,k}`.
    Star(usize),
    /// An arbitrary fixed pattern.
    Custom(Graph),
}

impl Pattern {
    /// The pattern as a concrete graph.
    pub fn graph(&self) -> Graph {
        match self {
            Pattern::Clique(l) => generators::complete(*l),
            Pattern::Cycle(l) => generators::cycle(*l),
            Pattern::CompleteBipartite(l, m) => generators::complete_bipartite(*l, *m),
            Pattern::Path(k) => generators::path(*k),
            Pattern::Star(k) => generators::star(*k),
            Pattern::Custom(g) => g.clone(),
        }
    }

    /// Number of vertices of the pattern.
    pub fn vertex_count(&self) -> usize {
        match self {
            Pattern::Clique(l) | Pattern::Cycle(l) | Pattern::Path(l) => *l,
            Pattern::CompleteBipartite(l, m) => l + m,
            Pattern::Star(k) => k + 1,
            Pattern::Custom(g) => g.vertex_count(),
        }
    }

    /// Returns `true` if the pattern is bipartite (contains no odd cycle).
    ///
    /// Non-bipartite patterns have `ex(n, H) = Θ(n²)`, for which Theorem 7
    /// gives only the trivial `O(n log n / b)` upper bound.
    pub fn is_bipartite(&self) -> bool {
        match self {
            Pattern::Clique(l) => *l <= 2,
            Pattern::Cycle(l) => *l == 0 || l % 2 == 0,
            Pattern::CompleteBipartite(_, _) | Pattern::Path(_) | Pattern::Star(_) => true,
            Pattern::Custom(g) => g.is_bipartite(),
        }
    }

    /// Returns `true` if the pattern is a forest (`ex(n, H) = O(n)`).
    pub fn is_forest(&self) -> bool {
        match self {
            Pattern::Clique(l) => *l <= 2,
            Pattern::Cycle(l) => *l < 3,
            Pattern::CompleteBipartite(l, m) => l.min(m) <= &1,
            Pattern::Path(_) | Pattern::Star(_) => true,
            Pattern::Custom(g) => {
                let g = g.clone();
                g.edge_count() < g.vertex_count() && is_acyclic(&g)
            }
        }
    }

    /// A standard upper bound on the Turán number `ex(n, H)`, as a real
    /// number.
    ///
    /// These are the bounds quoted in Section 3.1 of the paper; they are
    /// used to choose the degeneracy threshold `4·ex(n, H)/n` of Claim 6 and
    /// the round budget of Theorem 7. For custom patterns the bound falls
    /// back to the Kővári–Sós–Turán bound through the largest complete
    /// bipartite subpattern when bipartite, and to `n²/2` otherwise.
    pub fn ex_upper_bound(&self, n: usize) -> f64 {
        let nf = n as f64;
        if n <= 1 {
            return 0.0;
        }
        match self {
            Pattern::Clique(l) => {
                if *l <= 2 {
                    0.0
                } else {
                    // Turán's theorem: ex(n, K_ℓ) = (1 - 1/(ℓ-1)) n²/2.
                    (1.0 - 1.0 / (*l as f64 - 1.0)) * nf * nf / 2.0
                }
            }
            Pattern::Cycle(l) => {
                if *l < 3 {
                    0.0
                } else if l % 2 == 1 {
                    // Odd cycles: the extremal graph is K_{n/2,n/2}.
                    (nf / 2.0) * (nf / 2.0)
                } else {
                    // Bondy–Simonovits: ex(n, C_{2ℓ}) ≤ c·n^{1 + 1/ℓ}; the
                    // constant is ≤ 100·ℓ in general and ≤ 1/2·(1+o(1)) for
                    // C4. We use the clean form n^{1+1/ℓ}.
                    let half = (*l / 2) as f64;
                    nf.powf(1.0 + 1.0 / half)
                }
            }
            Pattern::CompleteBipartite(l, m) => {
                let (r, s) = if l <= m { (*l, *m) } else { (*m, *l) };
                if r <= 1 {
                    // K_{1,s} is a star: ex(n, K_{1,s}) = (s-1)n/2.
                    (s as f64 - 1.0) * nf / 2.0
                } else {
                    // Kővári–Sós–Turán:
                    // ex(n, K_{r,s}) ≤ ½ ((s-1)^{1/r} (n - r + 1) n^{1-1/r} + (r-1) n).
                    let rf = r as f64;
                    let sf = s as f64;
                    0.5 * ((sf - 1.0).powf(1.0 / rf) * (nf - rf + 1.0) * nf.powf(1.0 - 1.0 / rf)
                        + (rf - 1.0) * nf)
                }
            }
            Pattern::Path(k) => {
                if *k <= 2 {
                    0.0
                } else {
                    // Erdős–Gallai: ex(n, P_k) ≤ (k-2)/2 · n.
                    (*k as f64 - 2.0) / 2.0 * nf
                }
            }
            Pattern::Star(k) => {
                if *k == 0 {
                    0.0
                } else {
                    (*k as f64 - 1.0) * nf / 2.0
                }
            }
            Pattern::Custom(g) => {
                if g.edge_count() == 0 {
                    0.0
                } else if self.is_forest() {
                    (g.vertex_count() as f64 - 1.0) * nf
                } else if self.is_bipartite() {
                    // Any bipartite H with parts of size a ≤ b is a subgraph
                    // of K_{a,b}, so ex(n, H) ≤ ex(n, K_{a,b}).
                    let coloring = g.bipartition().expect("pattern is bipartite");
                    let a = coloring.iter().filter(|&&c| c).count();
                    let b = g.vertex_count() - a;
                    Pattern::CompleteBipartite(a.min(b).max(1), a.max(b).max(1)).ex_upper_bound(n)
                } else {
                    nf * nf / 2.0
                }
            }
        }
    }

    /// The degeneracy threshold `⌈4·ex(n, H)/n⌉` used by Claim 6 and
    /// Theorem 7 (at least 1).
    pub fn degeneracy_threshold(&self, n: usize) -> usize {
        if n == 0 {
            return 1;
        }
        ((4.0 * self.ex_upper_bound(n) / n as f64).ceil() as usize).max(1)
    }

    /// A short human-readable name (e.g. `"K4"`, `"C6"`, `"K2,3"`).
    pub fn name(&self) -> String {
        match self {
            Pattern::Clique(l) => format!("K{l}"),
            Pattern::Cycle(l) => format!("C{l}"),
            Pattern::CompleteBipartite(l, m) => format!("K{l},{m}"),
            Pattern::Path(k) => format!("P{k}"),
            Pattern::Star(k) => format!("K1,{k}"),
            Pattern::Custom(g) => format!("H(n={},m={})", g.vertex_count(), g.edge_count()),
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn is_acyclic(g: &Graph) -> bool {
    // A forest has fewer edges than vertices in every connected component;
    // simplest check: run a DFS counting edges vs vertices per component.
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        seen[start] = true;
        let mut vertices = 0usize;
        let mut edge_endpoints = 0usize;
        while let Some(u) = stack.pop() {
            vertices += 1;
            edge_endpoints += g.degree(u);
            for &v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        if edge_endpoints / 2 >= vertices {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::contains_subgraph;

    #[test]
    fn pattern_graphs_have_expected_shape() {
        assert_eq!(Pattern::Clique(4).graph().edge_count(), 6);
        assert_eq!(Pattern::Cycle(5).graph().edge_count(), 5);
        assert_eq!(Pattern::CompleteBipartite(2, 3).graph().edge_count(), 6);
        assert_eq!(Pattern::Path(4).graph().edge_count(), 3);
        assert_eq!(Pattern::Star(6).graph().edge_count(), 6);
        assert_eq!(Pattern::Clique(4).vertex_count(), 4);
        assert_eq!(Pattern::CompleteBipartite(2, 3).vertex_count(), 5);
        assert_eq!(Pattern::Star(6).vertex_count(), 7);
    }

    #[test]
    fn bipartiteness_classification() {
        assert!(!Pattern::Clique(3).is_bipartite());
        assert!(!Pattern::Cycle(5).is_bipartite());
        assert!(Pattern::Cycle(6).is_bipartite());
        assert!(Pattern::CompleteBipartite(3, 3).is_bipartite());
        assert!(Pattern::Path(9).is_bipartite());
        assert!(Pattern::Custom(generators::cycle(4)).is_bipartite());
        assert!(!Pattern::Custom(generators::complete(3)).is_bipartite());
    }

    #[test]
    fn forest_classification() {
        assert!(Pattern::Path(5).is_forest());
        assert!(Pattern::Star(5).is_forest());
        assert!(!Pattern::Cycle(4).is_forest());
        assert!(!Pattern::Clique(3).is_forest());
        assert!(Pattern::CompleteBipartite(1, 4).is_forest());
        assert!(!Pattern::CompleteBipartite(2, 2).is_forest());
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x7EE5);
        assert!(Pattern::Custom(generators::random_tree(10, &mut rng)).is_forest());
    }

    #[test]
    fn turan_bounds_have_right_order_of_magnitude() {
        let n = 1_000usize;
        let nf = n as f64;
        // Cliques: Θ(n²).
        assert!(Pattern::Clique(4).ex_upper_bound(n) > 0.3 * nf * nf);
        // C4: Θ(n^{3/2}).
        let c4 = Pattern::Cycle(4).ex_upper_bound(n);
        assert!(c4 >= nf.powf(1.5) * 0.9 && c4 <= nf.powf(1.6));
        // C6: O(n^{4/3}).
        let c6 = Pattern::Cycle(6).ex_upper_bound(n);
        assert!(c6 <= nf.powf(1.4));
        // Odd cycles: Θ(n²).
        assert!(Pattern::Cycle(5).ex_upper_bound(n) >= nf * nf / 4.0 * 0.99);
        // Trees: O(n).
        assert!(Pattern::Path(5).ex_upper_bound(n) <= 2.0 * nf);
        assert!(Pattern::Star(4).ex_upper_bound(n) <= 2.0 * nf);
        // K_{2,2} matches C4 order.
        let k22 = Pattern::CompleteBipartite(2, 2).ex_upper_bound(n);
        assert!(k22 <= nf.powf(1.6) && k22 >= 0.3 * nf.powf(1.5));
    }

    #[test]
    fn turan_bound_is_actually_an_upper_bound_for_small_cases() {
        // For very small n we can verify ex(n, H) exhaustively against the
        // bound for a few patterns by checking the complete graph minus
        // nothing: any H-free graph has at most the bound many edges.
        // Here we verify the weaker but meaningful statement that known
        // extremal constructions do not exceed the bound.
        let turan = generators::turan_graph(10, 2); // K3-free
        assert!(!contains_subgraph(&turan, &Pattern::Clique(3).graph()));
        assert!(turan.edge_count() as f64 <= Pattern::Clique(3).ex_upper_bound(10) + 1e-9);

        let c4free = crate::extremal::dense_c4_free(31);
        assert!(!contains_subgraph(&c4free, &Pattern::Cycle(4).graph()));
        assert!(c4free.edge_count() as f64 <= Pattern::Cycle(4).ex_upper_bound(31) + 31.0);
    }

    #[test]
    fn degeneracy_threshold_positive_and_monotone_in_pattern_density() {
        let n = 256;
        let t_tree = Pattern::Path(4).degeneracy_threshold(n);
        let t_c4 = Pattern::Cycle(4).degeneracy_threshold(n);
        let t_k4 = Pattern::Clique(4).degeneracy_threshold(n);
        assert!(t_tree >= 1);
        assert!(t_tree < t_c4);
        assert!(t_c4 < t_k4);
        assert_eq!(Pattern::Clique(4).degeneracy_threshold(0), 1);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Pattern::Clique(4).name(), "K4");
        assert_eq!(Pattern::Cycle(6).to_string(), "C6");
        assert_eq!(Pattern::CompleteBipartite(2, 3).name(), "K2,3");
        assert_eq!(Pattern::Star(3).name(), "K1,3");
        assert!(Pattern::Custom(generators::path(3))
            .name()
            .starts_with("H("));
    }

    #[test]
    fn custom_bipartite_pattern_bound_uses_kst() {
        let h = Pattern::Custom(generators::cycle(4));
        let direct = Pattern::CompleteBipartite(2, 2).ex_upper_bound(500);
        assert!((h.ex_upper_bound(500) - direct).abs() < 1e-9);
    }
}
