//! Edge-weighted graphs with unique-weight normalization.
//!
//! The deterministic sketch-based MST protocols assume *distinct* edge
//! weights so that the minimum spanning forest is unique and the cut
//! property picks a single safe edge per component. [`WeightedGraph`]
//! provides that guarantee without restricting the inputs: raw weights may
//! repeat, and every comparison goes through the total order
//! `(w(e), u, v)` (endpoints sorted, `u < v`) — the standard tie-breaking
//! normalization. Two edges never compare equal, the minimum spanning
//! forest is unique, and its total *raw* weight still equals the optimum of
//! the unnormalized instance.
//!
//! The module also carries the weighted companions of the
//! [`generators`] module and the [`UnionFind`] structure
//! shared by the sequential Kruskal oracle
//! ([`iso::minimum_spanning_forest`](crate::iso::minimum_spanning_forest))
//! and the distributed Borůvka contraction.

use std::collections::BTreeMap;

use rand::Rng;

use crate::generators;
use crate::graph::Graph;

/// An undirected graph with a `u64` weight on every edge.
///
/// Structure and weights are kept separate: the adjacency lives in a
/// [`Graph`] (so every unweighted algorithm applies unchanged via
/// [`Self::graph`]) and the weights in a map keyed by the sorted endpoint
/// pair.
///
/// # Examples
///
/// ```
/// use clique_graphs::weighted::WeightedGraph;
///
/// let mut g = WeightedGraph::empty(4);
/// g.add_edge(0, 1, 5);
/// g.add_edge(2, 1, 5); // same raw weight: the (w, u, v) order breaks the tie
/// assert_eq!(g.weight(1, 0), Some(5));
/// assert!(g.edge_order_key(0, 1) < g.edge_order_key(1, 2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: BTreeMap<(usize, usize), u64>,
}

impl WeightedGraph {
    /// Creates a weighted graph on `n` vertices with no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            graph: Graph::empty(n),
            weights: BTreeMap::new(),
        }
    }

    /// Builds a weighted graph from an edge list with weights.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize, u64)]) -> Self {
        let mut g = Self::empty(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Inserts the edge `{u, v}` with weight `w`, overwriting the weight if
    /// the edge already exists. Returns `true` if the edge was new.
    /// Self-loops are ignored (returns `false`), as in [`Graph::add_edge`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: u64) -> bool {
        if u == v {
            return false;
        }
        let inserted = self.graph.add_edge(u, v);
        self.weights.insert((u.min(v), u.max(v)), w);
        inserted
    }

    /// The weight of the edge `{u, v}`, or `None` if it is not present.
    pub fn weight(&self, u: usize, v: usize) -> Option<u64> {
        self.weights.get(&(u.min(v), u.max(v))).copied()
    }

    /// Returns `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.graph.has_edge(u, v)
    }

    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Iterates over the edges as `(u, v, w)` with `u < v`, ascending by
    /// `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.weights.iter().map(|(&(u, v), &w)| (u, v, w))
    }

    /// The neighbors of `u` with the connecting edge weights, ascending by
    /// neighbor id.
    pub fn weighted_neighbors(&self, u: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.graph.neighbors(u).iter().map(move |&v| {
            let w = self.weight(u, v).expect("adjacency and weights in sync");
            (v, w)
        })
    }

    /// The largest edge weight (0 for an edgeless graph).
    pub fn max_weight(&self) -> u64 {
        self.weights.values().copied().max().unwrap_or(0)
    }

    /// The unique-weight normalization: edges compare by `(w, u, v)` with
    /// the endpoints sorted, so no two edges are ever tied. All MST
    /// algorithms in this workspace order edges by this key.
    ///
    /// # Panics
    ///
    /// Panics if the edge is not present.
    pub fn edge_order_key(&self, u: usize, v: usize) -> (u64, usize, usize) {
        let (a, b) = (u.min(v), u.max(v));
        let w = self
            .weight(a, b)
            .unwrap_or_else(|| panic!("edge ({a},{b}) not present"));
        (w, a, b)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.values().sum()
    }
}

/// Disjoint-set forest with union by size and path compression — the
/// component tracker of Kruskal's oracle and of the distributed Borůvka
/// contraction.
///
/// # Examples
///
/// ```
/// use clique_graphs::weighted::UnionFind;
///
/// let mut dsu = UnionFind::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(!dsu.union(1, 0));
/// assert_eq!(dsu.find(0), dsu.find(1));
/// assert_eq!(dsu.components(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton components.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// The representative of `x`'s component.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the components of `x` and `y`; returns `true` if they were
    /// distinct. To keep runs reproducible regardless of call order, ties
    /// in size are broken towards the smaller representative.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (big, small) = match self.size[rx].cmp(&self.size[ry]) {
            std::cmp::Ordering::Greater => (rx, ry),
            std::cmp::Ordering::Less => (ry, rx),
            std::cmp::Ordering::Equal => (rx.min(ry), rx.max(ry)),
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same component.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.components
    }
}

/// Assigns every edge of `graph` an independent uniform weight from
/// `1..=max_weight` (duplicates allowed — the `(w, u, v)` order breaks
/// ties). Edges are weighted in ascending `(u, v)` order, so a fixed seed
/// gives a fixed instance.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn random_weights<R: Rng + ?Sized>(
    graph: &Graph,
    max_weight: u64,
    rng: &mut R,
) -> WeightedGraph {
    assert!(max_weight > 0, "weights must come from a non-empty range");
    let mut out = WeightedGraph::empty(graph.vertex_count());
    for (u, v) in graph.edges() {
        out.add_edge(u, v, rng.gen_range(1..max_weight + 1));
    }
    out
}

/// Assigns every edge of `graph` the same weight `w` — the all-equal-weight
/// instance where the `(w, u, v)` tie-break does all the work.
pub fn constant_weights(graph: &Graph, w: u64) -> WeightedGraph {
    let mut out = WeightedGraph::empty(graph.vertex_count());
    for (u, v) in graph.edges() {
        out.add_edge(u, v, w);
    }
    out
}

/// `G(n, p)` with uniform weights from `1..=max_weight`.
pub fn weighted_erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_weight: u64,
    rng: &mut R,
) -> WeightedGraph {
    let graph = generators::erdos_renyi(n, p, rng);
    random_weights(&graph, max_weight, rng)
}

/// The path on `n` vertices with uniform weights from `1..=max_weight`.
pub fn weighted_path<R: Rng + ?Sized>(n: usize, max_weight: u64, rng: &mut R) -> WeightedGraph {
    random_weights(&generators::path(n), max_weight, rng)
}

/// The cycle on `n` vertices with uniform weights from `1..=max_weight`.
pub fn weighted_cycle<R: Rng + ?Sized>(n: usize, max_weight: u64, rng: &mut R) -> WeightedGraph {
    random_weights(&generators::cycle(n), max_weight, rng)
}

/// The star `K_{1,k}` with uniform weights from `1..=max_weight`.
pub fn weighted_star<R: Rng + ?Sized>(k: usize, max_weight: u64, rng: &mut R) -> WeightedGraph {
    random_weights(&generators::star(k), max_weight, rng)
}

/// The complete graph `K_n` with uniform weights from `1..=max_weight`.
pub fn weighted_complete<R: Rng + ?Sized>(n: usize, max_weight: u64, rng: &mut R) -> WeightedGraph {
    random_weights(&generators::complete(n), max_weight, rng)
}

/// A uniform random tree on `n` vertices with uniform weights from
/// `1..=max_weight`.
pub fn weighted_random_tree<R: Rng + ?Sized>(
    n: usize,
    max_weight: u64,
    rng: &mut R,
) -> WeightedGraph {
    let tree = generators::random_tree(n, rng);
    random_weights(&tree, max_weight, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn add_edge_and_lookup_are_symmetric() {
        let mut g = WeightedGraph::empty(5);
        assert!(g.add_edge(3, 1, 7));
        assert!(!g.add_edge(1, 3, 9)); // overwrite, not a new edge
        assert_eq!(g.weight(1, 3), Some(9));
        assert_eq!(g.weight(3, 1), Some(9));
        assert_eq!(g.weight(0, 4), None);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(3, 1));
    }

    #[test]
    fn edges_iterate_sorted_with_weights() {
        let g = WeightedGraph::from_edges(4, &[(2, 3, 1), (0, 1, 4), (1, 2, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 4), (1, 2, 2), (2, 3, 1)]);
        assert_eq!(g.total_weight(), 7);
        assert_eq!(g.max_weight(), 4);
        assert_eq!(
            g.weighted_neighbors(1).collect::<Vec<_>>(),
            vec![(0, 4), (2, 2)]
        );
    }

    #[test]
    fn order_keys_are_distinct_even_with_equal_weights() {
        let g = constant_weights(&generators::complete(5), 3);
        let mut keys: Vec<_> = g.edges().map(|(u, v, _)| g.edge_order_key(u, v)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), g.edge_count(), "tie-break must separate edges");
    }

    #[test]
    fn random_weights_are_in_range_and_deterministic() {
        let base = generators::cycle(12);
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        let a = random_weights(&base, 6, &mut r1);
        let b = random_weights(&base, 6, &mut r2);
        assert_eq!(a, b);
        assert!(a.edges().all(|(_, _, w)| (1..=6).contains(&w)));
        assert_eq!(a.graph(), &base);
    }

    #[test]
    fn weighted_generators_match_their_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(weighted_path(6, 4, &mut rng).edge_count(), 5);
        assert_eq!(weighted_cycle(6, 4, &mut rng).edge_count(), 6);
        assert_eq!(weighted_star(6, 4, &mut rng).edge_count(), 6);
        assert_eq!(weighted_complete(6, 4, &mut rng).edge_count(), 15);
        let t = weighted_random_tree(9, 4, &mut rng);
        assert_eq!(t.edge_count(), 8);
        assert!(t.graph().is_connected());
        let g = weighted_erdos_renyi(10, 0.5, 4, &mut rng);
        assert!(g.edges().all(|(_, _, w)| (1..=4).contains(&w)));
    }

    #[test]
    fn union_find_merges_and_counts() {
        let mut dsu = UnionFind::new(6);
        assert_eq!(dsu.components(), 6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(2, 3));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 3));
        assert!(dsu.connected(0, 3));
        assert!(!dsu.connected(0, 5));
        assert_eq!(dsu.components(), 3);
    }

    #[test]
    fn union_find_is_call_order_independent_on_ties() {
        let mut a = UnionFind::new(4);
        let mut b = UnionFind::new(4);
        a.union(0, 1);
        b.union(1, 0);
        assert_eq!(a.find(0), b.find(1));
    }
}
