//! The undirected graph type shared by every crate in the workspace.
//!
//! Inputs to the congested clique in the subgraph-detection problem are
//! `n`-node undirected graphs in which player `i` knows the edges adjacent to
//! node `i`; [`Graph`] stores exactly that information (sorted adjacency
//! lists) and provides the operations the algorithms and constructions in the
//! paper need: edge queries, degrees, induced subgraphs, unions, and
//! adjacency rows for distributing the input among players.

use std::fmt;

use clique_sim::bits::BitString;
use clique_sim::lane::{DefaultLane, Word};
use clique_sim::linalg::BitMatrix;

/// Lane width of the packed adjacency representations, in bits.
const LANE_BITS: usize = <DefaultLane as Word>::BITS;

/// An undirected simple graph on vertices `0..n`.
///
/// # Examples
///
/// ```
/// use clique_graphs::Graph;
///
/// let mut g = Graph::empty(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Creates a graph from an undirected edge list on `n` vertices.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::empty(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge is new.
    ///
    /// Self-loops are ignored (returns `false`).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let n = self.vertex_count();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        if u == v || self.has_edge(u, v) {
            return false;
        }
        let pos_u = self.adj[u].binary_search(&v).unwrap_err();
        self.adj[u].insert(pos_u, v);
        let pos_v = self.adj[v].binary_search(&u).unwrap_err();
        self.adj[v].insert(pos_v, u);
        self.edges += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.vertex_count() || v >= self.vertex_count() || u == v {
            return false;
        }
        if let Ok(pos) = self.adj[u].binary_search(&v) {
            self.adj[u].remove(pos);
            let pos_v = self.adj[v]
                .binary_search(&u)
                .expect("adjacency lists out of sync");
            self.adj[v].remove(pos_v);
            self.edges -= 1;
            true
        } else {
            false
        }
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj
            .get(u)
            .is_some_and(|list| list.binary_search(&v).is_ok())
    }

    /// The sorted neighbour list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// The degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The maximum degree of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = usize> {
        0..self.vertex_count()
    }

    /// The adjacency row of `u` packed into a [`BitString`] of `n` bits
    /// (used to hand player `u` its share of the input, ready to ship as a
    /// message payload without a per-bit encode loop).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn adjacency_row_bits(&self, u: usize) -> BitString {
        let n = self.vertex_count();
        let mut words = vec![DefaultLane::ZERO; n.div_ceil(LANE_BITS)];
        for &v in &self.adj[u] {
            words[v / LANE_BITS] |= DefaultLane::bit(v % LANE_BITS);
        }
        BitString::from_words(&words, n)
    }

    /// The full adjacency matrix packed into a [`BitMatrix`] (one lane
    /// word holds `DefaultLane::BITS` entries), the representation the
    /// word-parallel `F₂` kernels consume.
    pub fn adjacency_bitmatrix(&self) -> BitMatrix {
        let n = self.vertex_count();
        let mut m = BitMatrix::zeros(n, n);
        for (u, neighbors) in self.adj.iter().enumerate() {
            let row = m.row_words_mut(u);
            for &v in neighbors {
                row[v / LANE_BITS] |= DefaultLane::bit(v % LANE_BITS);
            }
        }
        m
    }

    /// Builds a graph on `m.rows()` vertices from a packed adjacency
    /// matrix. The matrix is symmetrised by OR-ing `(u,v)` and `(v,u)`; the
    /// diagonal is ignored.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn from_adjacency_bitmatrix(m: &BitMatrix) -> Self {
        let n = m.rows();
        assert_eq!(m.cols(), n, "adjacency matrix must be square");
        let mut g = Self::empty(n);
        for u in 0..n {
            for (wi, &word) in m.row_words(u).iter().enumerate() {
                let mut bits = word;
                while bits != DefaultLane::ZERO {
                    let v = wi * LANE_BITS + bits.trailing_zeros() as usize;
                    bits = bits.clear_lowest_set_bit();
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
            }
        }
        g
    }

    /// The packed adjacency matrix padded with zero rows and columns to
    /// `dim × dim` — the form the matrix-multiplication pipelines consume
    /// (e.g. Strassen circuits need power-of-two dimensions). Padding never
    /// sets bits at or past column `dim`, preserving the [`BitMatrix`]
    /// invariant the word-parallel kernels rely on.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is below the vertex count (shrinking would drop
    /// edges).
    pub fn adjacency_bitmatrix_padded(&self, dim: usize) -> BitMatrix {
        let n = self.vertex_count();
        assert!(dim >= n, "padding dimension {dim} below vertex count {n}");
        let mut m = BitMatrix::zeros(dim, dim);
        for (u, neighbors) in self.adj.iter().enumerate() {
            let row = m.row_words_mut(u);
            for &v in neighbors {
                row[v / LANE_BITS] |= DefaultLane::bit(v % LANE_BITS);
            }
        }
        m
    }

    /// The subgraph induced by `vertices`, relabelled to `0..vertices.len()`
    /// in the given order. Returns the subgraph and the mapping from new
    /// labels to original labels.
    ///
    /// # Panics
    ///
    /// Panics if a vertex is out of range or listed twice.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let n = self.vertex_count();
        let mut position = vec![usize::MAX; n];
        for (new, &old) in vertices.iter().enumerate() {
            assert!(old < n, "vertex {old} out of range");
            assert!(position[old] == usize::MAX, "vertex {old} listed twice");
            position[old] = new;
        }
        let mut sub = Graph::empty(vertices.len());
        for (new_u, &old_u) in vertices.iter().enumerate() {
            for &old_v in &self.adj[old_u] {
                let new_v = position[old_v];
                if new_v != usize::MAX && new_u < new_v {
                    sub.add_edge(new_u, new_v);
                }
            }
        }
        (sub, vertices.to_vec())
    }

    /// Keeps only the edges for which `keep` returns `true`.
    pub fn filter_edges(&self, mut keep: impl FnMut(usize, usize) -> bool) -> Graph {
        let mut g = Graph::empty(self.vertex_count());
        for (u, v) in self.edges() {
            if keep(u, v) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The disjoint union of `self` and `other` (vertices of `other` are
    /// shifted by `self.vertex_count()`).
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let offset = self.vertex_count();
        let mut g = Graph::empty(offset + other.vertex_count());
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        for (u, v) in other.edges() {
            g.add_edge(u + offset, v + offset);
        }
        g
    }

    /// Returns `true` if the graph is connected (the empty graph and the
    /// one-vertex graph are considered connected).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Returns a proper 2-colouring if the graph is bipartite, `None`
    /// otherwise.
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        let n = self.vertex_count();
        let mut color: Vec<Option<bool>> = vec![None; n];
        for start in 0..n {
            if color[start].is_some() {
                continue;
            }
            color[start] = Some(false);
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                let cu = color[u].expect("queued vertices are coloured");
                for &v in &self.adj[u] {
                    match color[v] {
                        None => {
                            color[v] = Some(!cu);
                            queue.push_back(v);
                        }
                        Some(cv) if cv == cu => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        Some(color.into_iter().map(|c| c.unwrap_or(false)).collect())
    }

    /// Returns `true` if the graph contains no odd cycle.
    pub fn is_bipartite(&self) -> bool {
        self.bipartition().is_some()
    }

    /// Number of vertex pairs `{u, v}`, i.e. the edge count of the complete
    /// graph on the same vertex set.
    pub fn max_possible_edges(&self) -> usize {
        let n = self.vertex_count();
        n * (n.saturating_sub(1)) / 2
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={})",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph on {} vertices:", self.vertex_count())?;
        for (u, v) in self.edges() {
            writeln!(f, "  {u} -- {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(0, 1));
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge not re-added");
        assert!(!g.add_edge(2, 2), "self loop ignored");
        assert!(g.add_edge(1, 2));
        assert_eq!(g.edge_count(), 2);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn edges_iterator_is_sorted_pairs() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (3, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn adjacency_round_trip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let m = g.adjacency_bitmatrix();
        let g2 = Graph::from_adjacency_bitmatrix(&m);
        assert_eq!(g, g2);
        assert_eq!(
            g.adjacency_row_bits(0).to_bools(),
            vec![false, true, false, true]
        );
        // Packed rows agree with the matrix rows.
        for u in 0..4 {
            assert_eq!(g.adjacency_row_bits(u), m.row_bits(u));
        }
    }

    #[test]
    fn adjacency_round_trip_across_word_boundaries() {
        // 70 vertices forces two words per packed row.
        let mut g = Graph::empty(70);
        g.add_edge(0, 69);
        g.add_edge(63, 64);
        g.add_edge(1, 63);
        let m = g.adjacency_bitmatrix();
        assert_eq!(Graph::from_adjacency_bitmatrix(&m), g);
        assert_eq!(m.count_ones(), 2 * g.edge_count());
        let row = g.adjacency_row_bits(69);
        assert_eq!(row.len(), 70);
        assert!(row.bit(0) && !row.bit(1));
    }

    #[test]
    fn padded_adjacency_extends_with_zero_rows_and_columns() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let m = g.adjacency_bitmatrix_padded(70);
        assert_eq!((m.rows(), m.cols()), (70, 70));
        assert_eq!(m.count_ones(), 2 * g.edge_count());
        // The top-left block equals the unpadded adjacency matrix; padding
        // rows and columns stay empty.
        assert_eq!(m.submatrix(0, 0, 3, 3), g.adjacency_bitmatrix());
        for i in 3..70 {
            assert!(m.row_words(i).iter().all(|&w| w == 0));
        }
        // Padding a graph to its own size is the identity.
        assert_eq!(g.adjacency_bitmatrix_padded(3), g.adjacency_bitmatrix());
    }

    #[test]
    #[should_panic(expected = "below vertex count")]
    fn padded_adjacency_rejects_shrinking() {
        let _ = Graph::from_edges(4, &[(0, 1)]).adjacency_bitmatrix_padded(3);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1)); // 1--2 in the original
        assert_eq!(map, vec![1, 2, 4]);
    }

    #[test]
    fn disjoint_union_shifts_labels() {
        let a = Graph::from_edges(2, &[(0, 1)]);
        let b = Graph::from_edges(3, &[(0, 2)]);
        let c = a.disjoint_union(&b);
        assert_eq!(c.vertex_count(), 5);
        assert_eq!(c.edge_count(), 2);
        assert!(c.has_edge(0, 1));
        assert!(c.has_edge(2, 4));
    }

    #[test]
    fn connectivity() {
        assert!(Graph::empty(0).is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(!Graph::empty(2).is_connected());
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(path.is_connected());
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!split.is_connected());
    }

    #[test]
    fn bipartiteness() {
        let even_cycle = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(even_cycle.is_bipartite());
        let odd_cycle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!odd_cycle.is_bipartite());
        let coloring = even_cycle.bipartition().unwrap();
        for (u, v) in even_cycle.edges() {
            assert_ne!(coloring[u], coloring[v]);
        }
    }

    #[test]
    fn filter_edges_keeps_subset() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = g.filter_edges(|u, v| u + v >= 3);
        assert_eq!(f.edge_count(), 2);
        assert!(!f.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::empty(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn debug_and_display() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(format!("{g:?}"), "Graph(n=3, m=1)");
        assert!(g.to_string().contains("0 -- 1"));
    }
}
