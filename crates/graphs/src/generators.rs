//! Graph generators: fixed families, random models, and planted instances.
//!
//! These produce the workloads for the subgraph-detection experiments:
//! pattern graphs `H` (cliques, cycles, complete bipartite graphs, paths,
//! stars), random host graphs `G(n, p)`, and hosts with planted copies of a
//! pattern for the "yes" instances.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::Graph;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// The cycle `C_n` (empty for `n < 3`).
pub fn cycle(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    if n >= 3 {
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
    }
    g
}

/// The path `P_n` on `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 1..n {
        g.add_edge(u - 1, u);
    }
    g
}

/// The star `K_{1,k}`: one centre (vertex 0) joined to `k` leaves.
pub fn star(k: usize) -> Graph {
    let mut g = Graph::empty(k + 1);
    for leaf in 1..=k {
        g.add_edge(0, leaf);
    }
    g
}

/// The complete bipartite graph `K_{a,b}` with sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::empty(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(u, v);
        }
    }
    g
}

/// The Turán graph `T(n, r)`: the complete `r`-partite graph on `n` vertices
/// with parts as equal as possible. It is the extremal `K_{r+1}`-free graph.
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn turan_graph(n: usize, r: usize) -> Graph {
    assert!(r > 0, "Turán graph needs at least one part");
    let part = |v: usize| v % r;
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if part(u) != part(v) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// An Erdős–Rényi random graph `G(n, p)`: every pair becomes an edge
/// independently with probability `p`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random bipartite graph with sides `0..a` and `a..a+b` where every
/// cross pair is an edge independently with probability `p`.
pub fn random_bipartite<R: Rng + ?Sized>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random graph with (roughly) bounded degeneracy: vertices are added one
/// by one and each new vertex chooses up to `k` random earlier neighbours.
///
/// The result always has degeneracy at most `k`, and for `k ≤ n/2` the
/// degeneracy is typically close to `k`.
pub fn random_bounded_degeneracy<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for v in 1..n {
        let picks = k.min(v);
        let mut earlier: Vec<usize> = (0..v).collect();
        earlier.shuffle(rng);
        for &u in earlier.iter().take(picks) {
            g.add_edge(u, v);
        }
    }
    g
}

/// Plants a copy of `pattern` into `host` on a uniformly random set of
/// vertices, returning the modified host and the vertices used (in pattern
/// order).
///
/// # Panics
///
/// Panics if `pattern` has more vertices than `host`.
pub fn plant_copy<R: Rng + ?Sized>(
    host: &Graph,
    pattern: &Graph,
    rng: &mut R,
) -> (Graph, Vec<usize>) {
    let n = host.vertex_count();
    let h = pattern.vertex_count();
    assert!(h <= n, "pattern has more vertices than the host");
    let mut vertices: Vec<usize> = (0..n).collect();
    vertices.shuffle(rng);
    vertices.truncate(h);
    let mut g = host.clone();
    for (u, v) in pattern.edges() {
        g.add_edge(vertices[u], vertices[v]);
    }
    (g, vertices)
}

/// A graph consisting of `copies` vertex-disjoint copies of `pattern`,
/// padded with isolated vertices up to `n` vertices.
///
/// # Panics
///
/// Panics if the copies do not fit into `n` vertices.
pub fn disjoint_copies(pattern: &Graph, copies: usize, n: usize) -> Graph {
    let h = pattern.vertex_count();
    assert!(
        copies * h <= n,
        "{copies} copies of a {h}-vertex pattern do not fit into {n} vertices"
    );
    let mut g = Graph::empty(n);
    for c in 0..copies {
        let offset = c * h;
        for (u, v) in pattern.edges() {
            g.add_edge(offset + u, offset + v);
        }
    }
    g
}

/// A perfect matching on `2k` vertices: edges `{2i, 2i+1}`.
pub fn perfect_matching(k: usize) -> Graph {
    let mut g = Graph::empty(2 * k);
    for i in 0..k {
        g.add_edge(2 * i, 2 * i + 1);
    }
    g
}

/// A uniformly random tree on `n` vertices (random attachment).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(parent, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xC11C)
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(complete(0).edge_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn cycle_and_path_and_star() {
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(cycle(2).edge_count(), 0);
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(path(1).edge_count(), 0);
        let s = star(4);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(1), 1);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(g.is_bipartite());
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn turan_graph_is_clique_free() {
        use crate::iso::contains_subgraph;
        let g = turan_graph(12, 3);
        // T(12, 3) = K_{4,4,4} has 3 * 4 * 4 + ... = 48 edges and no K4.
        assert_eq!(g.edge_count(), 48);
        assert!(!contains_subgraph(&g, &complete(4)));
        assert!(contains_subgraph(&g, &complete(3)));
    }

    #[test]
    fn erdos_renyi_edge_probability() {
        let mut r = rng();
        let g = erdos_renyi(60, 0.0, &mut r);
        assert_eq!(g.edge_count(), 0);
        let g = erdos_renyi(60, 1.0, &mut r);
        assert_eq!(g.edge_count(), 60 * 59 / 2);
        let g = erdos_renyi(80, 0.3, &mut r);
        let expected = 0.3 * (80.0 * 79.0 / 2.0);
        assert!((g.edge_count() as f64) > expected * 0.7);
        assert!((g.edge_count() as f64) < expected * 1.3);
    }

    #[test]
    fn random_bipartite_has_no_intra_side_edges() {
        let mut r = rng();
        let g = random_bipartite(10, 12, 0.5, &mut r);
        for (u, v) in g.edges() {
            assert!(u < 10 && v >= 10, "edge ({u},{v}) crosses sides");
        }
    }

    #[test]
    fn bounded_degeneracy_generator_respects_bound() {
        use crate::degeneracy::degeneracy;
        let mut r = rng();
        for k in [1usize, 2, 4, 7] {
            let g = random_bounded_degeneracy(50, k, &mut r);
            assert!(degeneracy(&g) <= k, "degeneracy exceeded bound {k}");
        }
    }

    #[test]
    fn plant_copy_creates_pattern() {
        use crate::iso::contains_subgraph;
        let mut r = rng();
        let host = erdos_renyi(30, 0.02, &mut r);
        let pattern = cycle(4);
        let (planted, where_) = plant_copy(&host, &pattern, &mut r);
        assert_eq!(where_.len(), 4);
        assert!(contains_subgraph(&planted, &pattern));
        for (u, v) in pattern.edges() {
            assert!(planted.has_edge(where_[u], where_[v]));
        }
    }

    #[test]
    fn disjoint_copies_and_matching() {
        let g = disjoint_copies(&complete(3), 4, 20);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.vertex_count(), 20);
        let m = perfect_matching(5);
        assert_eq!(m.edge_count(), 5);
        assert_eq!(m.max_degree(), 1);
    }

    #[test]
    fn random_tree_is_connected_and_acyclic() {
        let mut r = rng();
        let t = random_tree(40, &mut r);
        assert_eq!(t.edge_count(), 39);
        assert!(t.is_connected());
        assert!(t.is_bipartite());
    }
}
