//! The `Protocol` abstraction and the `Runner` that executes protocols on
//! any model instance.
//!
//! The paper's results all share one shape — *run protocol `P` on model
//! `CLIQUE-{BCAST,UCAST}(n, b)` and count rounds* — so the execution API
//! mirrors it: a [`Protocol`] is the algorithm (model-independent), a
//! [`CliqueConfig`] is the model, and [`Runner::execute`] pairs the two,
//! returning the protocol's output together with the full communication
//! ledger as a [`RunOutcome`]. [`Runner::sweep`] runs one protocol instance
//! per configuration of an `(n, b)` grid (see
//! [`CliqueConfigBuilder::grid`](crate::model::CliqueConfigBuilder::grid)).
//!
//! Closures `FnMut(&mut Session) -> Result<T, SimError>` implement
//! [`Protocol`] directly, so one-off measurements need no struct.

use crate::model::{CliqueConfig, SimError};
use crate::outcome::RunOutcome;
use crate::session::Session;

/// A distributed algorithm that can run on any model instance.
///
/// Implementations read their input from `self`, drive all communication
/// through the [`Session`] (phases, strict rounds, nested sub-protocols),
/// and return their protocol-specific output; the caller gets the round and
/// bit accounting from the session's ledger.
///
/// # Examples
///
/// ```
/// use clique_sim::prelude::*;
///
/// /// Every node broadcasts one bit; the output is the OR of all inputs.
/// struct BroadcastOr {
///     inputs: Vec<bool>,
/// }
///
/// impl Protocol for BroadcastOr {
///     type Output = bool;
///
///     fn run(&mut self, session: &mut Session) -> Result<bool, SimError> {
///         let msgs: Vec<BitString> = self
///             .inputs
///             .iter()
///             .map(|&b| BitString::from_bits(u64::from(b), 1))
///             .collect();
///         let inboxes = session.broadcast_all("inputs", &msgs)?;
///         Ok(self.inputs[0] || inboxes[0].broadcasts().any(|(_, m)| m.bit(0)))
///     }
/// }
///
/// # fn main() -> Result<(), SimError> {
/// let config = CliqueConfig::builder().nodes(4).bandwidth(1).broadcast().build();
/// let outcome = Runner::new(config).execute(&mut BroadcastOr {
///     inputs: vec![false, false, true, false],
/// })?;
/// assert!(*outcome);
/// assert_eq!(outcome.rounds(), 1);
/// # Ok(())
/// # }
/// ```
pub trait Protocol {
    /// The protocol-specific result (decision, reconstruction, …).
    type Output;

    /// Executes the protocol, charging all communication to `session`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the protocol violates the model rules or a
    /// round limit.
    fn run(&mut self, session: &mut Session) -> Result<Self::Output, SimError>;
}

/// Closures are protocols: `|session| { … }` runs directly.
impl<T, F> Protocol for F
where
    F: FnMut(&mut Session) -> Result<T, SimError>,
{
    type Output = T;

    fn run(&mut self, session: &mut Session) -> Result<T, SimError> {
        self(session)
    }
}

/// Executes [`Protocol`]s on a fixed model instance.
///
/// One `Runner` can execute any number of protocols; each execution gets a
/// fresh [`Session`] (fresh ledger) over the runner's configuration.
#[derive(Clone, Debug)]
pub struct Runner {
    config: CliqueConfig,
}

/// One point of a [`Runner::sweep`]: the configuration and the outcome of
/// the protocol instance that ran on it.
#[derive(Clone, Debug)]
pub struct SweepPoint<T> {
    /// The model instance of this grid point.
    pub config: CliqueConfig,
    /// The protocol outcome measured on it.
    pub outcome: RunOutcome<T>,
}

impl Runner {
    /// Creates a runner for the given model instance.
    pub fn new(config: CliqueConfig) -> Self {
        Self { config }
    }

    /// The model configuration.
    pub fn config(&self) -> &CliqueConfig {
        &self.config
    }

    /// Executes `protocol` on a fresh session, returning its output paired
    /// with the run's metrics.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's error; the failed run's ledger is dropped
    /// with the session. To measure the cost of a run *up to* a failure,
    /// execute the protocol via [`Session::run_nested`] on a session you
    /// keep — it absorbs the partial metrics even on error.
    pub fn execute<P: Protocol + ?Sized>(
        &self,
        protocol: &mut P,
    ) -> Result<RunOutcome<P::Output>, SimError> {
        let mut session = Session::new(self.config.clone());
        let output = protocol.run(&mut session)?;
        Ok(RunOutcome::new(output, session.into_metrics()))
    }

    /// Runs one protocol instance per configuration: `make` builds the
    /// protocol for each grid point (so inputs can be sized to `config.n`),
    /// then the instance executes on a fresh session.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first failing point.
    ///
    /// # Examples
    ///
    /// ```
    /// use clique_sim::prelude::*;
    ///
    /// # fn main() -> Result<(), SimError> {
    /// // How many rounds does "everyone broadcasts n bits" take, per (n, b)?
    /// let grid = CliqueConfig::builder().broadcast().grid(&[8, 16], &[1, 4]);
    /// let points = Runner::sweep(grid, |config| {
    ///     let n = config.n;
    ///     move |session: &mut Session| {
    ///         let rows: Vec<BitString> =
    ///             (0..n).map(|_| BitString::from_bools(&vec![true; n])).collect();
    ///         session.broadcast_all("rows", &rows)?;
    ///         Ok(())
    ///     }
    /// })?;
    /// assert_eq!(points.len(), 4);
    /// assert_eq!(points[1].outcome.rounds(), 2); // n = 8, b = 4
    /// # Ok(())
    /// # }
    /// ```
    pub fn sweep<P, F>(
        configs: impl IntoIterator<Item = CliqueConfig>,
        mut make: F,
    ) -> Result<Vec<SweepPoint<P::Output>>, SimError>
    where
        P: Protocol,
        F: FnMut(&CliqueConfig) -> P,
    {
        let mut points = Vec::new();
        for config in configs {
            let mut protocol = make(&config);
            let outcome = Runner::new(config.clone()).execute(&mut protocol)?;
            points.push(SweepPoint { config, outcome });
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;

    #[test]
    fn execute_runs_closures_with_fresh_sessions() {
        let runner = Runner::new(CliqueConfig::broadcast(2, 1));
        for _ in 0..2 {
            let outcome = runner
                .execute(&mut |session: &mut Session| {
                    session.charge_rounds("work", 3);
                    Ok(7u8)
                })
                .unwrap();
            assert_eq!(*outcome, 7);
            // Each execution starts from a zeroed ledger.
            assert_eq!(outcome.rounds(), 3);
        }
        assert_eq!(runner.config().n, 2);
    }

    #[test]
    fn sweep_visits_every_grid_point() {
        let grid = CliqueConfig::builder().broadcast().grid(&[2, 4], &[1, 2]);
        let points = Runner::sweep(grid, |config| {
            let n = config.n;
            move |session: &mut Session| {
                let msgs: Vec<BitString> =
                    (0..n).map(|_| BitString::from_bools(&[true; 4])).collect();
                session.broadcast_all("msgs", &msgs)?;
                Ok(n)
            }
        })
        .unwrap();
        assert_eq!(points.len(), 4);
        // 4-bit messages: b = 1 -> 4 rounds, b = 2 -> 2 rounds.
        assert_eq!(points[0].outcome.rounds(), 4);
        assert_eq!(points[1].outcome.rounds(), 2);
        assert_eq!(*points[3].outcome, 4);
    }

    #[test]
    fn errors_propagate_from_execute() {
        let runner = Runner::new(CliqueConfig::broadcast(2, 1));
        let err = runner
            .execute(&mut |_session: &mut Session| -> Result<(), SimError> {
                Err(SimError::RoundLimitExceeded { limit: 1 })
            })
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 1 });
    }
}
