//! The `Protocol` abstraction and the `Runner` that executes protocols on
//! any model instance.
//!
//! The paper's results all share one shape — *run protocol `P` on model
//! `CLIQUE-{BCAST,UCAST}(n, b)` and count rounds* — so the execution API
//! mirrors it: a [`Protocol`] is the algorithm (model-independent), a
//! [`CliqueConfig`] is the model, and [`Runner::execute`] pairs the two,
//! returning the protocol's output together with the full communication
//! ledger as a [`RunOutcome`]. [`Runner::sweep`] runs one protocol instance
//! per configuration of an `(n, b)` grid (see
//! [`CliqueConfigBuilder::grid`](crate::model::CliqueConfigBuilder::grid)).
//!
//! Closures `FnMut(&mut Session) -> Result<T, SimError>` implement
//! [`Protocol`] directly, so one-off measurements need no struct.

use crate::model::{CliqueConfig, SimError};
use crate::outcome::RunOutcome;
use crate::par;
use crate::session::Session;
use crate::transport::Transport;

/// A distributed algorithm that can run on any model instance.
///
/// Implementations read their input from `self`, drive all communication
/// through the [`Session`] (phases, strict rounds, nested sub-protocols),
/// and return their protocol-specific output; the caller gets the round and
/// bit accounting from the session's ledger.
///
/// # Examples
///
/// ```
/// use clique_sim::prelude::*;
///
/// /// Every node broadcasts one bit; the output is the OR of all inputs.
/// struct BroadcastOr {
///     inputs: Vec<bool>,
/// }
///
/// impl Protocol for BroadcastOr {
///     type Output = bool;
///
///     fn run(&mut self, session: &mut Session) -> Result<bool, SimError> {
///         let msgs: Vec<BitString> = self
///             .inputs
///             .iter()
///             .map(|&b| BitString::from_bits(u64::from(b), 1))
///             .collect();
///         let inboxes = session.broadcast_all("inputs", &msgs)?;
///         Ok(self.inputs[0] || inboxes[0].broadcasts().any(|(_, m)| m.bit(0)))
///     }
/// }
///
/// # fn main() -> Result<(), SimError> {
/// let config = CliqueConfig::builder().nodes(4).bandwidth(1).broadcast().build();
/// let outcome = Runner::new(config).execute(&mut BroadcastOr {
///     inputs: vec![false, false, true, false],
/// })?;
/// assert!(*outcome);
/// assert_eq!(outcome.rounds(), 1);
/// # Ok(())
/// # }
/// ```
pub trait Protocol {
    /// The protocol-specific result (decision, reconstruction, …).
    type Output;

    /// Executes the protocol, charging all communication to `session`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the protocol violates the model rules or a
    /// round limit.
    fn run(&mut self, session: &mut Session) -> Result<Self::Output, SimError>;
}

/// Closures are protocols: `|session| { … }` runs directly.
impl<T, F> Protocol for F
where
    F: FnMut(&mut Session) -> Result<T, SimError>,
{
    type Output = T;

    fn run(&mut self, session: &mut Session) -> Result<T, SimError> {
        self(session)
    }
}

/// Executes [`Protocol`]s on a fixed model instance.
///
/// One `Runner` can execute any number of protocols; each execution gets a
/// fresh [`Session`] (fresh ledger) over the runner's configuration.
#[derive(Clone, Debug)]
pub struct Runner {
    config: CliqueConfig,
    /// Worker-count override handed to every session this runner opens;
    /// `None` uses the default resolution (see [`par::workers`]).
    threads: Option<usize>,
    /// Transport prototype cloned into every session this runner opens;
    /// `None` uses the process default (see
    /// [`transport::default_kind`](crate::transport::default_kind)).
    transport: Option<Box<dyn Transport>>,
}

/// One point of a [`Runner::sweep`]: the configuration and the outcome of
/// the protocol instance that ran on it.
#[derive(Clone, Debug)]
pub struct SweepPoint<T> {
    /// The model instance of this grid point.
    pub config: CliqueConfig,
    /// The protocol outcome measured on it.
    pub outcome: RunOutcome<T>,
}

impl Runner {
    /// Creates a runner for the given model instance.
    pub fn new(config: CliqueConfig) -> Self {
        Self {
            config,
            threads: None,
            transport: None,
        }
    }

    /// Returns this runner with a worker-count override that every session
    /// it opens inherits (`None` restores the default resolution, see
    /// [`par::workers`]). Parallelism never changes protocol outputs or
    /// ledgers.
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Returns this runner with a transport prototype that every session it
    /// opens receives a clone of (`None` restores the process default, see
    /// [`transport::default_kind`](crate::transport::default_kind)).
    /// Transports never change protocol outputs or ledgers — see
    /// [`transport`](crate::transport).
    #[must_use]
    pub fn with_transport(mut self, transport: Option<Box<dyn Transport>>) -> Self {
        self.transport = transport;
        self
    }

    /// The model configuration.
    pub fn config(&self) -> &CliqueConfig {
        &self.config
    }

    /// Executes `protocol` on a fresh session, returning its output paired
    /// with the run's metrics.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's error; the failed run's ledger is dropped
    /// with the session. To measure the cost of a run *up to* a failure,
    /// execute the protocol via [`Session::run_nested`] on a session you
    /// keep — it absorbs the partial metrics even on error.
    pub fn execute<P: Protocol + ?Sized>(
        &self,
        protocol: &mut P,
    ) -> Result<RunOutcome<P::Output>, SimError> {
        let mut session = Session::new(self.config.clone());
        session.set_threads(self.threads);
        if let Some(transport) = &self.transport {
            session.set_transport(transport.clone_box());
        }
        let output = protocol.run(&mut session)?;
        Ok(RunOutcome::new(output, session.into_metrics()))
    }

    /// Runs one protocol instance per configuration: `make` builds the
    /// protocol for each grid point (so inputs can be sized to `config.n`),
    /// then the instance executes on a fresh session.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first failing point.
    ///
    /// # Examples
    ///
    /// ```
    /// use clique_sim::prelude::*;
    ///
    /// # fn main() -> Result<(), SimError> {
    /// // How many rounds does "everyone broadcasts n bits" take, per (n, b)?
    /// let grid = CliqueConfig::builder().broadcast().grid(&[8, 16], &[1, 4]);
    /// let points = Runner::sweep(grid, |config| {
    ///     let n = config.n;
    ///     move |session: &mut Session| {
    ///         let rows: Vec<BitString> =
    ///             (0..n).map(|_| BitString::from_bools(&vec![true; n])).collect();
    ///         session.broadcast_all("rows", &rows)?;
    ///         Ok(())
    ///     }
    /// })?;
    /// assert_eq!(points.len(), 4);
    /// assert_eq!(points[1].outcome.rounds(), 2); // n = 8, b = 4
    /// # Ok(())
    /// # }
    /// ```
    pub fn sweep<P, F>(
        configs: impl IntoIterator<Item = CliqueConfig>,
        mut make: F,
    ) -> Result<Vec<SweepPoint<P::Output>>, SimError>
    where
        P: Protocol,
        F: FnMut(&CliqueConfig) -> P,
    {
        let mut points = Vec::new();
        for config in configs {
            let mut protocol = make(&config);
            let outcome = Runner::new(config.clone()).execute(&mut protocol)?;
            points.push(SweepPoint { config, outcome });
        }
        Ok(points)
    }

    /// [`Self::sweep`] with the independent grid points executed on the
    /// worker pool (up to [`par::threads`] at a time). The returned points
    /// are in grid order and identical to a serial sweep — each point runs
    /// on its own fresh session, so outputs and ledgers cannot depend on
    /// scheduling; on error, the first failing point *in grid order* is
    /// reported, exactly like [`Self::sweep`].
    ///
    /// The pool budget is divided between the two levels: with `t` workers
    /// and `p` grid points, `min(t, p)` points run concurrently and each
    /// point's session gets `max(1, t / min(t, p))` workers for its own
    /// engines — so a many-point sweep runs its points serially inside
    /// (no quadratic oversubscription), while a sweep of few heavy points
    /// still parallelizes within each point.
    ///
    /// The `Send`/`Sync` bounds are what the pool forces on protocol state:
    /// `make` is shared by the workers and each built protocol (plus its
    /// output) crosses a thread boundary once.
    ///
    /// # Errors
    ///
    /// Propagates the error of the first failing grid point.
    pub fn sweep_par<P, F>(
        configs: impl IntoIterator<Item = CliqueConfig>,
        make: F,
    ) -> Result<Vec<SweepPoint<P::Output>>, SimError>
    where
        P: Protocol + Send,
        P::Output: Send,
        F: Fn(&CliqueConfig) -> P + Sync,
    {
        let configs: Vec<CliqueConfig> = configs.into_iter().collect();
        let budget = par::threads();
        let outer = budget.min(configs.len().max(1));
        let inner = (budget / outer).max(1);
        let results = par::map(configs.len(), outer, |i| {
            let config = &configs[i];
            let mut protocol = make(config);
            Runner::new(config.clone())
                .with_threads(Some(inner))
                .execute(&mut protocol)
                .map(|outcome| SweepPoint {
                    config: config.clone(),
                    outcome,
                })
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;

    #[test]
    fn execute_runs_closures_with_fresh_sessions() {
        let runner = Runner::new(CliqueConfig::broadcast(2, 1));
        for _ in 0..2 {
            let outcome = runner
                .execute(&mut |session: &mut Session| {
                    session.charge_rounds("work", 3);
                    Ok(7u8)
                })
                .unwrap();
            assert_eq!(*outcome, 7);
            // Each execution starts from a zeroed ledger.
            assert_eq!(outcome.rounds(), 3);
        }
        assert_eq!(runner.config().n, 2);
    }

    #[test]
    fn sweep_visits_every_grid_point() {
        let grid = CliqueConfig::builder().broadcast().grid(&[2, 4], &[1, 2]);
        let points = Runner::sweep(grid, |config| {
            let n = config.n;
            move |session: &mut Session| {
                let msgs: Vec<BitString> =
                    (0..n).map(|_| BitString::from_bools(&[true; 4])).collect();
                session.broadcast_all("msgs", &msgs)?;
                Ok(n)
            }
        })
        .unwrap();
        assert_eq!(points.len(), 4);
        // 4-bit messages: b = 1 -> 4 rounds, b = 2 -> 2 rounds.
        assert_eq!(points[0].outcome.rounds(), 4);
        assert_eq!(points[1].outcome.rounds(), 2);
        assert_eq!(*points[3].outcome, 4);
    }

    #[test]
    fn sweep_par_matches_sweep_in_order_and_content() {
        let make = |config: &CliqueConfig| {
            let n = config.n;
            move |session: &mut Session| {
                let msgs: Vec<BitString> =
                    (0..n).map(|_| BitString::from_bools(&[true; 4])).collect();
                session.broadcast_all("msgs", &msgs)?;
                Ok(n)
            }
        };
        let grid = || {
            CliqueConfig::builder()
                .broadcast()
                .grid(&[2, 4, 8], &[1, 2])
        };
        let serial = Runner::sweep(grid(), make).unwrap();
        let parallel = Runner::sweep_par(grid(), make).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config);
            assert_eq!(*s.outcome, *p.outcome);
            assert_eq!(s.outcome.metrics, p.outcome.metrics);
        }
    }

    #[test]
    fn sweep_par_reports_the_first_failing_point_in_grid_order() {
        let grid = CliqueConfig::builder().broadcast().grid(&[2, 4, 8], &[1]);
        let err = Runner::sweep_par(grid, |config| {
            let n = config.n;
            move |_session: &mut Session| -> Result<(), SimError> {
                if n >= 4 {
                    return Err(SimError::RoundLimitExceeded { limit: n as u64 });
                }
                Ok(())
            }
        })
        .unwrap_err();
        // Both n = 4 and n = 8 fail; grid order reports n = 4 first.
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 4 });
    }

    #[test]
    fn errors_propagate_from_execute() {
        let runner = Runner::new(CliqueConfig::broadcast(2, 1));
        let err = runner
            .execute(&mut |_session: &mut Session| -> Result<(), SimError> {
                Err(SimError::RoundLimitExceeded { limit: 1 })
            })
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 1 });
    }
}
