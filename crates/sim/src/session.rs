//! The execution context handed to [`Protocol`] implementations.
//!
//! A [`Session`] is one protocol execution on one model instance: it owns
//! the round/bit ledger and fronts *both* engines behind a single
//! interface — bulk-synchronous phases (the [`PhaseEngine`] accounting:
//! `⌈max link load / b⌉` rounds per phase) and strict round-by-round
//! execution of [`NodeAlgorithm`]s (the [`RoundEngine`]). Sub-protocols run
//! through [`Session::run_protocol`] (same ledger) or
//! [`Session::run_nested`] (own ledger, absorbed into the parent), so a
//! composed protocol gets one coherent metrics trail no matter how many
//! engines it touched.

use crate::bits::BitString;
use crate::engine::RoundEngine;
use crate::metrics::{Metrics, RunReport};
use crate::model::{CliqueConfig, SimError};
use crate::node::NodeAlgorithm;
use crate::outcome::RunOutcome;
use crate::phase::{PhaseEngine, PhaseInbox, PhaseOutbox};
use crate::protocol::Protocol;
use crate::transport::Transport;

/// One protocol execution on one model instance.
///
/// # Examples
///
/// ```
/// use clique_sim::prelude::*;
///
/// # fn main() -> Result<(), clique_sim::model::SimError> {
/// let config = CliqueConfig::builder().nodes(4).bandwidth(2).broadcast().build();
/// let mut session = Session::new(config);
/// let msgs: Vec<BitString> = (0..4).map(|i| BitString::from_bits(i, 6)).collect();
/// let inboxes = session.broadcast_all("announce", &msgs)?;
/// assert_eq!(session.rounds(), 3); // ceil(6 / 2)
/// assert!(inboxes[0].broadcast_from(NodeId::new(3)).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    engine: PhaseEngine,
    /// Per-session worker-count override, inherited by nested sessions and
    /// strict-engine runs; `None` uses the default resolution (see
    /// [`par::workers`](crate::par::workers)).
    threads: Option<usize>,
}

/// The result of driving [`NodeAlgorithm`]s to completion inside a session:
/// the final node states plus the run report of the strict engine.
#[derive(Debug)]
pub struct NodeRun<A> {
    /// The node algorithms after the run (e.g. to extract outputs).
    pub nodes: Vec<A>,
    /// Completion status and the metrics of the strict execution (already
    /// absorbed into the session as well).
    pub report: RunReport,
}

impl Session {
    /// Opens a session on the given model.
    pub fn new(config: CliqueConfig) -> Self {
        Self {
            engine: PhaseEngine::new(config),
            threads: None,
        }
    }

    /// Overrides the worker count for this session's engines (`None`
    /// restores the default resolution, see
    /// [`par::workers`](crate::par::workers)).
    /// Nested sessions and strict-engine runs inherit the override.
    /// Parallelism never changes transcripts, ledgers or outputs — only
    /// wall-clock time.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
        self.engine.set_threads(threads);
    }

    /// The worker count this session's engines use.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Replaces the message-delivery backend for this session's engines.
    /// Nested sessions and strict-engine runs inherit a clone of the
    /// backend. Transports never change transcripts, ledgers or outputs
    /// (see [`transport`](crate::transport)) — only delivery mechanics.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.engine.set_transport(transport);
    }

    /// The message-delivery backend in use.
    pub fn transport(&self) -> &dyn Transport {
        self.engine.transport()
    }

    /// The model configuration.
    pub fn config(&self) -> &CliqueConfig {
        self.engine.config()
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.engine.config().n
    }

    /// Link bandwidth in bits per round.
    pub fn bandwidth(&self) -> usize {
        self.engine.config().bandwidth
    }

    /// Asserts the session runs on the complete clique topology — the
    /// connectivity every clique protocol assumes. Call first in
    /// [`Protocol::run`] of protocols that address arbitrary pairs or rely
    /// on broadcasts reaching everyone; on a restricted CONGEST topology
    /// such protocols would otherwise silently compute from partial views.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not [`Topology::Clique`](crate::model::Topology).
    pub fn require_clique(&self) {
        assert!(
            matches!(self.config().topology, crate::model::Topology::Clique),
            "this protocol requires the complete clique topology, got {}",
            self.config()
        );
    }

    /// [`Self::require_clique`] plus a player-count check against the
    /// protocol's input size.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a clique or the session has a
    /// different number of players than `n`.
    pub fn require_clique_of(&self, n: usize) {
        self.require_clique();
        assert_eq!(
            self.n(),
            n,
            "session has {} players, protocol input has {n}",
            self.n()
        );
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// Rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.engine.rounds()
    }

    /// Total bits charged so far.
    pub fn total_bits(&self) -> u64 {
        self.engine.total_bits()
    }

    /// Executes one bulk-synchronous phase; see [`PhaseEngine::exchange`]
    /// for the exact accounting and error conditions.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseEngine::exchange`] errors.
    pub fn exchange(
        &mut self,
        label: &str,
        outs: Vec<PhaseOutbox>,
    ) -> Result<Vec<PhaseInbox>, SimError> {
        self.engine.exchange(label, outs)
    }

    /// Convenience wrapper for a pure broadcast phase; see
    /// [`PhaseEngine::broadcast_all`].
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseEngine::exchange`] errors.
    pub fn broadcast_all(
        &mut self,
        label: &str,
        messages: &[BitString],
    ) -> Result<Vec<PhaseInbox>, SimError> {
        self.engine.broadcast_all(label, messages)
    }

    /// Charges additional rounds without moving data (e.g. an analytically
    /// accounted black-box subroutine).
    pub fn charge_rounds(&mut self, label: &str, rounds: u64) {
        self.engine.charge_rounds(label, rounds);
    }

    /// Merges the metrics of an externally executed sub-run into this
    /// session.
    pub fn absorb_metrics(&mut self, other: &Metrics) {
        self.engine.absorb_metrics(other);
    }

    /// Closes the session, returning the accumulated metrics.
    pub fn into_metrics(self) -> Metrics {
        self.engine.into_metrics()
    }

    /// Runs a sub-protocol *on this session's ledger*: everything it
    /// charges lands directly in this session's metrics.
    ///
    /// # Errors
    ///
    /// Propagates the sub-protocol's error.
    pub fn run_protocol<P: Protocol + ?Sized>(
        &mut self,
        protocol: &mut P,
    ) -> Result<P::Output, SimError> {
        protocol.run(self)
    }

    /// Runs a sub-protocol on a fresh ledger over the *same* model, then
    /// absorbs its metrics into this session. Use this when the caller needs
    /// the sub-run's own round/bit counts (e.g. per-attempt reporting).
    ///
    /// # Errors
    ///
    /// Propagates the sub-protocol's error.
    pub fn run_nested<P: Protocol + ?Sized>(
        &mut self,
        protocol: &mut P,
    ) -> Result<RunOutcome<P::Output>, SimError> {
        let config = self.config().clone();
        self.run_nested_with(config, protocol)
    }

    /// Runs a sub-protocol on a fresh ledger over a *different* model (e.g.
    /// a sub-clique or another bandwidth regime), then absorbs its metrics
    /// into this session.
    ///
    /// # Errors
    ///
    /// Propagates the sub-protocol's error. Rounds and bits the sub-run
    /// charged before failing are still absorbed into this session (the
    /// traffic happened), matching [`Self::run_nodes`].
    pub fn run_nested_with<P: Protocol + ?Sized>(
        &mut self,
        config: CliqueConfig,
        protocol: &mut P,
    ) -> Result<RunOutcome<P::Output>, SimError> {
        let mut sub = Session::new(config);
        sub.set_threads(self.threads);
        sub.set_transport(self.engine.transport().clone_box());
        let result = protocol.run(&mut sub);
        let metrics = sub.into_metrics();
        self.absorb_metrics(&metrics);
        Ok(RunOutcome::new(result?, metrics))
    }

    /// Runs one [`NodeAlgorithm`] instance per player on the strict
    /// [`RoundEngine`] over this session's model, charging every round and
    /// bit to this session.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the nodes do not halt in
    /// time, or any model violation raised by the engine. Rounds executed
    /// before the error are still charged.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the session's `n`.
    pub fn run_nodes<A: NodeAlgorithm>(
        &mut self,
        nodes: Vec<A>,
        max_rounds: u64,
    ) -> Result<NodeRun<A>, SimError> {
        let mut engine = RoundEngine::new(self.config().clone(), nodes);
        engine.set_threads(self.threads);
        engine.set_transport(self.engine.transport().clone_box());
        let result = engine.run(max_rounds);
        self.absorb_metrics(engine.metrics());
        let report = result?;
        Ok(NodeRun {
            nodes: engine.into_nodes(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Inbox, NodeCtx, NodeId, Outbox};

    #[test]
    fn session_fronts_the_phase_engine() {
        let mut session = Session::new(CliqueConfig::broadcast(3, 2));
        let msgs = vec![
            BitString::from_bits(0b101, 3),
            BitString::new(),
            BitString::new(),
        ];
        let inboxes = session.broadcast_all("announce", &msgs).unwrap();
        assert_eq!(session.rounds(), 2);
        assert_eq!(session.total_bits(), 3);
        assert!(inboxes[1].broadcast_from(NodeId::new(0)).is_some());
        session.charge_rounds("black box", 5);
        assert_eq!(session.rounds(), 7);
        assert_eq!(session.into_metrics().rounds, 7);
    }

    #[test]
    fn nested_runs_absorb_into_the_parent() {
        let mut parent = Session::new(CliqueConfig::broadcast(2, 1));
        let sub = parent
            .run_nested(&mut |session: &mut Session| {
                session.charge_rounds("inner", 4);
                Ok(17u32)
            })
            .unwrap();
        assert_eq!(*sub, 17);
        assert_eq!(sub.rounds(), 4);
        assert_eq!(parent.rounds(), 4);

        // A nested run on a different model still charges the parent.
        let other = CliqueConfig::unicast(5, 3);
        let sub = parent
            .run_nested_with(other.clone(), &mut |session: &mut Session| {
                assert_eq!(session.config(), &other);
                session.charge_rounds("inner", 1);
                Ok(())
            })
            .unwrap();
        assert_eq!(sub.rounds(), 1);
        assert_eq!(parent.rounds(), 5);

        // A failing nested run charges what it used before the error.
        let err = parent
            .run_nested(&mut |session: &mut Session| -> Result<(), SimError> {
                session.charge_rounds("partial", 2);
                Err(SimError::RoundLimitExceeded { limit: 9 })
            })
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 9 });
        assert_eq!(parent.rounds(), 7);
    }

    #[test]
    fn require_clique_accepts_cliques() {
        let session = Session::new(CliqueConfig::unicast(4, 2));
        session.require_clique();
        session.require_clique_of(4);
    }

    #[test]
    #[should_panic(expected = "complete clique topology")]
    fn require_clique_rejects_graph_topologies() {
        use crate::model::AdjacencyTopology;
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let session = Session::new(CliqueConfig::congest(3, 2, adj));
        session.require_clique();
    }

    #[test]
    #[should_panic(expected = "protocol input has 5")]
    fn require_clique_of_rejects_size_mismatch() {
        let session = Session::new(CliqueConfig::broadcast(4, 2));
        session.require_clique_of(5);
    }

    /// Every node broadcasts its bit; afterwards everyone knows the OR.
    struct OrNode {
        input: bool,
        result: Option<bool>,
    }

    impl NodeAlgorithm for OrNode {
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &Inbox, outbox: &mut Outbox) {
            if ctx.round == 0 {
                outbox.broadcast(BitString::from_bits(u64::from(self.input), 1));
            } else {
                let mut any = self.input;
                for (_, msg) in inbox.iter() {
                    any |= msg.bit(0);
                }
                self.result = Some(any);
            }
        }

        fn halted(&self) -> bool {
            self.result.is_some()
        }
    }

    #[test]
    fn run_nodes_charges_the_session() {
        let mut session = Session::new(CliqueConfig::broadcast(4, 1));
        let nodes = vec![false, true, false, false]
            .into_iter()
            .map(|input| OrNode {
                input,
                result: None,
            })
            .collect();
        let run = session.run_nodes(nodes, 10).unwrap();
        assert!(run.report.completed);
        assert!(run.nodes.iter().all(|n| n.result == Some(true)));
        assert_eq!(session.rounds(), run.report.rounds());
        assert!(session.rounds() >= 2);
    }

    #[test]
    fn run_nodes_round_limit_still_charges() {
        #[derive(Debug)]
        struct Chatter;
        impl NodeAlgorithm for Chatter {
            fn round(&mut self, _: &NodeCtx<'_>, _: &Inbox, outbox: &mut Outbox) {
                outbox.broadcast(BitString::from_bits(1, 1));
            }
        }
        let mut session = Session::new(CliqueConfig::broadcast(2, 1));
        let err = session.run_nodes(vec![Chatter, Chatter], 3).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 3 });
        assert_eq!(session.rounds(), 3);
    }
}
