//! Bit-precise message payloads.
//!
//! The congested clique model is parameterised by a bandwidth `b` measured in
//! *bits* per link per round, so all message accounting in this workspace is
//! done at bit granularity. [`BitString`] is an append-only bit vector with a
//! cursor-based reader ([`BitReader`]); it is the payload type used by both
//! the low-level round engine and the high-level phase engine.
//!
//! The backing storage is generic over the machine-word lane
//! ([`Word`], default [`DefaultLane`]): bits are packed
//! least-significant-first, `W::BITS` per word. The lane width is purely a
//! local-throughput knob — lengths, encodings and transcripts are identical
//! at every width (pinned by the cross-width proptests in
//! `tests/properties.rs`).

use std::fmt;

use crate::lane::{DefaultLane, Word};

/// An append-only sequence of bits used as a message payload.
///
/// Bits are stored least-significant-first inside `W::BITS`-bit words. The
/// type supports appending single bits, fixed-width unsigned integers and
/// whole bit strings, and reading them back in order with a [`BitReader`].
///
/// # Examples
///
/// ```
/// use clique_sim::bits::BitString;
///
/// let mut msg: BitString = BitString::new();
/// msg.push_bits(42, 16);
/// msg.push_bit(true);
/// assert_eq!(msg.len(), 17);
///
/// let mut reader = msg.reader();
/// assert_eq!(reader.read_bits(16), Some(42));
/// assert_eq!(reader.read_bit(), Some(true));
/// assert!(reader.is_exhausted());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitString<W: Word = DefaultLane> {
    words: Vec<W>,
    len: usize,
}

impl<W: Word> Default for BitString<W> {
    fn default() -> Self {
        Self {
            words: Vec::new(),
            len: 0,
        }
    }
}

impl<W: Word> BitString<W> {
    /// Creates an empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit string with capacity for at least `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(W::BITS)),
            len: 0,
        }
    }

    /// Creates an empty bit string reusing `backing` (cleared, capacity
    /// kept) as storage — the constructor [`BufferArena`] hands recycled
    /// buffers back through.
    ///
    /// [`BufferArena`]: crate::arena::BufferArena
    pub fn from_recycled(mut backing: Vec<W>) -> Self {
        backing.clear();
        Self {
            words: backing,
            len: 0,
        }
    }

    /// Consumes the bit string, returning its backing word buffer (so the
    /// allocation can be recycled via [`Self::from_recycled`]).
    pub fn into_backing(self) -> Vec<W> {
        self.words
    }

    /// Creates a bit string containing the `width` low-order bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn from_bits(value: u64, width: usize) -> Self {
        let mut bs = Self::with_capacity(width);
        bs.push_bits(value, width);
        bs
    }

    /// Creates a bit string from a slice of booleans, one bit per element.
    ///
    /// Packs `W::BITS` bits per word instead of appending bit by bit.
    pub fn from_bools(bits: &[bool]) -> Self {
        let words = bits
            .chunks(W::BITS)
            .map(|chunk| {
                let mut word = W::ZERO;
                for (i, &bit) in chunk.iter().enumerate() {
                    if bit {
                        word |= W::bit(i);
                    }
                }
                word
            })
            .collect();
        Self {
            words,
            len: bits.len(),
        }
    }

    /// Creates a bit string of length `len` from packed little-endian words
    /// (bit `i` is bit `i % W::BITS` of `words[i / W::BITS]`).
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn from_words(words: &[W], len: usize) -> Self {
        let mut bs = Self::with_capacity(len);
        bs.push_words(words, len);
        bs
    }

    /// The bits unpacked into a vector of booleans, one element per bit.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let take = (self.len - w * W::BITS).min(W::BITS);
            for i in 0..take {
                out.push((word >> i) & W::ONE == W::ONE);
            }
        }
        out
    }

    /// The packed little-endian words backing the bit string. Bits past
    /// `len()` in the last word are zero.
    pub fn words(&self) -> &[W] {
        &self.words
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let word_idx = self.len / W::BITS;
        let bit_idx = self.len % W::BITS;
        if word_idx == self.words.len() {
            self.words.push(W::ZERO);
        }
        if bit {
            self.words[word_idx] |= W::bit(bit_idx);
        }
        self.len += 1;
    }

    /// Appends the `width` low-order bits of `value`, least-significant first.
    ///
    /// The bits are shifted into the (at most two) straddled words in O(1)
    /// instead of one call per bit.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        if width == 0 {
            return;
        }
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        self.push_word_bits(W::from_u64(value), width);
    }

    /// Appends the `width` low-order bits of a full lane (`value` must
    /// already be masked to `width` bits, `width <= W::BITS`).
    fn push_word_bits(&mut self, value: W, width: usize) {
        debug_assert!(width <= W::BITS);
        debug_assert_eq!(value & !W::mask_low(width), W::ZERO);
        if width == 0 {
            return;
        }
        let word_idx = self.len / W::BITS;
        let bit_idx = self.len % W::BITS;
        while self.words.len() * W::BITS < self.len + width {
            self.words.push(W::ZERO);
        }
        self.words[word_idx] |= value << bit_idx;
        if bit_idx + width > W::BITS {
            // The straddle spills `bit_idx + width - W::BITS` bits into the
            // next word; the shift amount is `< width <= W::BITS`.
            self.words[word_idx + 1] |= value >> (W::BITS - bit_idx);
        }
        self.len += width;
    }

    /// Appends the first `len` bits of the packed little-endian `words`
    /// (the inverse of [`BitReader::read_words`]).
    ///
    /// When the current length is word-aligned this is a bulk copy; otherwise
    /// each word is shifted into place with two word operations.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn push_words(&mut self, words: &[W], len: usize) {
        assert!(
            len <= words.len() * W::BITS,
            "{len} bits requested from {} words",
            words.len()
        );
        let full = len / W::BITS;
        let rem = len % W::BITS;
        if self.len.is_multiple_of(W::BITS) {
            // Word-aligned fast path: memcpy the full words.
            self.words.extend_from_slice(&words[..full]);
            if rem > 0 {
                self.words.push(words[full] & W::mask_low(rem));
            }
            self.len += len;
        } else {
            for &word in &words[..full] {
                self.push_word_bits(word, W::BITS);
            }
            if rem > 0 {
                self.push_word_bits(words[full] & W::mask_low(rem), rem);
            }
        }
    }

    /// Appends an unsigned integer using the number of bits needed to
    /// represent values in `0..universe` (i.e. `ceil(log2(universe))` bits).
    ///
    /// # Panics
    ///
    /// Panics if `value >= universe` or `universe == 0`.
    pub fn push_uint(&mut self, value: u64, universe: u64) {
        assert!(universe > 0, "universe must be positive");
        assert!(
            value < universe,
            "value {value} out of range for universe {universe}"
        );
        self.push_bits(value, bits_for_universe(universe));
    }

    /// Appends all bits of `other` (word-at-a-time).
    pub fn extend_from(&mut self, other: &BitString<W>) {
        self.push_words(&other.words, other.len);
    }

    /// Returns the bit at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range");
        (self.words[index / W::BITS] >> (index % W::BITS)) & W::ONE == W::ONE
    }

    /// Flips the bit at position `index` (used by fault injection; the
    /// position is a model-level coordinate, so the result is identical at
    /// every lane width).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn toggle_bit(&mut self, index: usize) {
        assert!(index < self.len, "bit index {index} out of range");
        self.words[index / W::BITS] ^= W::bit(index % W::BITS);
    }

    /// The bits serialised as little-endian bytes (`ceil(len / 8)` of them,
    /// zero-padded in the last byte) — the canonical byte order shared by
    /// every lane width, which checksums and framing are computed over.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.words.len() * W::BYTES);
        for &word in &self.words {
            word.extend_le_bytes(&mut bytes);
        }
        bytes.truncate(self.len.div_ceil(8));
        bytes
    }

    /// Returns a cursor for reading the bits back in order.
    pub fn reader(&self) -> BitReader<'_, W> {
        BitReader { bits: self, pos: 0 }
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bit(i))
    }

    /// Concatenates `self` and `other` into a new bit string.
    pub fn concat(&self, other: &BitString<W>) -> BitString<W> {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }
}

impl<W: Word> fmt::Debug for BitString<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString[{} bits: ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl<W: Word> fmt::Display for BitString<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

impl<W: Word> FromIterator<bool> for BitString<W> {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bs = BitString::new();
        for bit in iter {
            bs.push_bit(bit);
        }
        bs
    }
}

impl<W: Word> Extend<bool> for BitString<W> {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for bit in iter {
            self.push_bit(bit);
        }
    }
}

/// A cursor over a [`BitString`] that reads bits in the order they were
/// appended.
///
/// All read methods return `None` once the underlying data is exhausted,
/// which makes malformed-message handling explicit at the call site.
#[derive(Clone, Debug)]
pub struct BitReader<'a, W: Word = DefaultLane> {
    bits: &'a BitString<W>,
    pos: usize,
}

impl<'a, W: Word> BitReader<'a, W> {
    /// Reads a single bit, advancing the cursor.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bits.len() {
            return None;
        }
        let bit = self.bits.bit(self.pos);
        self.pos += 1;
        Some(bit)
    }

    /// Reads up to `W::BITS` bits as one lane, least-significant first.
    /// `width <= W::BITS` and `pos + width <= len` are the caller's
    /// responsibility.
    fn read_word_bits(&mut self, width: usize) -> W {
        debug_assert!(width <= W::BITS);
        debug_assert!(self.pos + width <= self.bits.len());
        if width == 0 {
            return W::ZERO;
        }
        let word_idx = self.pos / W::BITS;
        let bit_idx = self.pos % W::BITS;
        let mut value = self.bits.words[word_idx] >> bit_idx;
        if bit_idx + width > W::BITS {
            value |= self.bits.words[word_idx + 1] << (W::BITS - bit_idx);
        }
        self.pos += width;
        value & W::mask_low(width)
    }

    /// Reads `width` bits as an unsigned integer (least-significant first).
    ///
    /// Returns `None` if fewer than `width` bits remain. The bits are
    /// extracted from the (at most two) straddled words in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: usize) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        if self.pos + width > self.bits.len() {
            return None;
        }
        Some(self.read_word_bits(width).low_u64())
    }

    /// Reads `len` bits into packed little-endian words (the inverse of
    /// [`BitString::push_words`]).
    ///
    /// Returns `None` (without advancing) if fewer than `len` bits remain.
    pub fn read_words(&mut self, len: usize) -> Option<Vec<W>> {
        if self.pos + len > self.bits.len() {
            return None;
        }
        let mut out = Vec::with_capacity(len.div_ceil(W::BITS));
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(W::BITS);
            out.push(self.read_word_bits(take));
            remaining -= take;
        }
        Some(out)
    }

    /// Reads an unsigned integer encoded with [`BitString::push_uint`] for
    /// the same `universe`.
    pub fn read_uint(&mut self, universe: u64) -> Option<u64> {
        self.read_bits(bits_for_universe(universe))
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Returns `true` if no bits remain.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Number of bits required to represent any value in `0..universe`.
///
/// Returns 0 when `universe <= 1` (a single possible value carries no
/// information).
///
/// # Examples
///
/// ```
/// assert_eq!(clique_sim::bits::bits_for_universe(1), 0);
/// assert_eq!(clique_sim::bits::bits_for_universe(2), 1);
/// assert_eq!(clique_sim::bits::bits_for_universe(1000), 10);
/// ```
pub fn bits_for_universe(universe: u64) -> usize {
    if universe <= 1 {
        0
    } else {
        (u64::BITS - (universe - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitstring() {
        let bs = BitString::<DefaultLane>::new();
        assert!(bs.is_empty());
        assert_eq!(bs.len(), 0);
        assert!(bs.reader().is_exhausted());
    }

    #[test]
    fn push_and_read_single_bits() {
        let mut bs = BitString::<DefaultLane>::new();
        bs.push_bit(true);
        bs.push_bit(false);
        bs.push_bit(true);
        assert_eq!(bs.len(), 3);
        assert!(bs.bit(0));
        assert!(!bs.bit(1));
        assert!(bs.bit(2));
        let mut r = bs.reader();
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn push_and_read_fixed_width() {
        let mut bs = BitString::<DefaultLane>::new();
        bs.push_bits(0xDEAD_BEEF, 32);
        bs.push_bits(7, 3);
        bs.push_bits(u64::MAX, 64);
        let mut r = bs.reader();
        assert_eq!(r.read_bits(32), Some(0xDEAD_BEEF));
        assert_eq!(r.read_bits(3), Some(7));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert!(r.is_exhausted());
    }

    #[test]
    fn read_past_end_returns_none() {
        let bs = BitString::<DefaultLane>::from_bits(5, 3);
        let mut r = bs.reader();
        assert_eq!(r.read_bits(4), None);
        assert_eq!(r.read_bits(3), Some(5));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn zero_width_reads_and_writes() {
        let mut bs = BitString::<DefaultLane>::new();
        bs.push_bits(0, 0);
        assert!(bs.is_empty());
        let mut r = bs.reader();
        assert_eq!(r.read_bits(0), Some(0));
    }

    #[test]
    fn uint_encoding_round_trip() {
        let mut bs = BitString::<DefaultLane>::new();
        for v in [0u64, 1, 99, 999] {
            bs.push_uint(v, 1000);
        }
        let mut r = bs.reader();
        for v in [0u64, 1, 99, 999] {
            assert_eq!(r.read_uint(1000), Some(v));
        }
        assert!(r.is_exhausted());
        assert_eq!(bs.len(), 4 * 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn uint_out_of_range_panics() {
        let mut bs = BitString::<DefaultLane>::new();
        bs.push_uint(1000, 1000);
    }

    #[test]
    fn bits_for_universe_values() {
        assert_eq!(bits_for_universe(0), 0);
        assert_eq!(bits_for_universe(1), 0);
        assert_eq!(bits_for_universe(2), 1);
        assert_eq!(bits_for_universe(3), 2);
        assert_eq!(bits_for_universe(4), 2);
        assert_eq!(bits_for_universe(5), 3);
        assert_eq!(bits_for_universe(1 << 20), 20);
        assert_eq!(bits_for_universe(u64::MAX), 64);
    }

    #[test]
    fn extend_and_concat() {
        let a = BitString::<DefaultLane>::from_bools(&[true, false]);
        let b = BitString::from_bools(&[true, true, false]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![true, false, true, true, false]
        );
        let mut d = a.clone();
        d.extend_from(&b);
        assert_eq!(c, d);
    }

    #[test]
    fn from_iterator_and_extend_trait() {
        let bs: BitString = [true, true, false].into_iter().collect();
        assert_eq!(bs.len(), 3);
        let mut bs2 = bs.clone();
        bs2.extend([false, true]);
        assert_eq!(bs2.len(), 5);
        assert!(bs2.bit(4));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let bs = BitString::<DefaultLane>::from_bools(&[true, false, true]);
        assert_eq!(format!("{bs}"), "101");
        assert!(format!("{bs:?}").contains("3 bits"));
    }

    /// The per-width round-trip exercised at `u64` and `u128` (width-keyed
    /// offsets/lengths so straddles hit both lane sizes).
    fn push_words_round_trip<W: Word>() {
        let probes = [0usize, 1, 3, W::BITS - 1, W::BITS, W::BITS + 1];
        let lens = [
            0usize,
            1,
            37,
            W::BITS,
            W::BITS + 36,
            2 * W::BITS,
            3 * W::BITS + 8,
        ];
        for &offset in &probes {
            for &len in &lens {
                let words: Vec<W> = (0..len.div_ceil(W::BITS).max(1))
                    .map(|i| {
                        W::from_u64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
                            | (W::from_u64(0xD1B5_4A32_D192_ED03u64.wrapping_mul(i as u64 + 7))
                                << (W::BITS - 64).min(63))
                    })
                    .collect();
                let mut bs = BitString::<W>::new();
                for i in 0..offset {
                    bs.push_bit(i % 3 == 0);
                }
                bs.push_words(&words, len);
                assert_eq!(bs.len(), offset + len);
                let mut r = bs.reader();
                for i in 0..offset {
                    assert_eq!(r.read_bit(), Some(i % 3 == 0));
                }
                let got = r.read_words(len).expect("enough bits");
                assert_eq!(got.len(), len.div_ceil(W::BITS));
                for (w, &word) in got.iter().enumerate() {
                    let width = (len - w * W::BITS).min(W::BITS);
                    assert_eq!(
                        word,
                        words[w] & W::mask_low(width),
                        "offset {offset}, len {len}, word {w}"
                    );
                }
                assert!(r.is_exhausted());
            }
        }
    }

    #[test]
    fn push_words_and_read_words_round_trip() {
        push_words_round_trip::<u64>();
        push_words_round_trip::<u128>();
    }

    #[test]
    fn read_words_past_end_does_not_advance() {
        let bs: BitString<u64> = BitString::from_bits(0b101, 3);
        let mut r = bs.reader();
        assert_eq!(r.read_words(4), None);
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_words(3), Some(vec![0b101]));
    }

    #[test]
    fn from_words_and_to_bools_match_per_bit_paths() {
        let bools: Vec<bool> = (0..150).map(|i| (i * 7) % 5 < 2).collect();
        let packed = BitString::<DefaultLane>::from_bools(&bools);
        let mut per_bit = BitString::new();
        for &b in &bools {
            per_bit.push_bit(b);
        }
        assert_eq!(packed, per_bit);
        assert_eq!(packed.to_bools(), bools);
        let rebuilt = BitString::from_words(packed.words(), packed.len());
        assert_eq!(rebuilt, packed);
    }

    fn unused_high_bits_stay_zero_for<W: Word>() {
        // `words()` promises zeroed padding; push paths must maintain it.
        let mut bs = BitString::<W>::from_bools(&[true; 70]);
        bs.push_bits(u64::MAX, 3);
        bs.push_words(&[W::ONES], 5);
        let last = *bs.words().last().unwrap();
        let used = bs.len() % W::BITS;
        assert_eq!(last & !W::mask_low(used), W::ZERO);
    }

    #[test]
    fn unused_high_bits_stay_zero() {
        unused_high_bits_stay_zero_for::<u64>();
        unused_high_bits_stay_zero_for::<u128>();
    }

    #[test]
    fn crossing_word_boundaries() {
        let mut bs = BitString::<DefaultLane>::new();
        for i in 0..200u64 {
            bs.push_bits(i % 2, 1);
        }
        bs.push_bits(0xABCD, 16);
        let mut r = bs.reader();
        for i in 0..200u64 {
            assert_eq!(r.read_bits(1), Some(i % 2));
        }
        assert_eq!(r.read_bits(16), Some(0xABCD));
    }

    #[test]
    fn u64_and_u128_encodings_agree_bit_for_bit() {
        let mut narrow = BitString::<u64>::new();
        let mut wide = BitString::<u128>::new();
        for (i, v) in [(3usize, 5u64), (64, u64::MAX), (17, 0x1F00F), (1, 1)] {
            narrow.push_bits(v, i.min(64));
            wide.push_bits(v, i.min(64));
        }
        assert_eq!(narrow.len(), wide.len());
        assert_eq!(narrow.to_bools(), wide.to_bools());
        assert_eq!(narrow.to_le_bytes(), wide.to_le_bytes());
    }

    #[test]
    fn recycled_backing_behaves_like_fresh() {
        let mut bs = BitString::<u64>::from_bools(&[true; 130]);
        bs.push_bits(0xAB, 8);
        let backing = bs.into_backing();
        assert!(backing.capacity() >= 3);
        let mut reused = BitString::from_recycled(backing);
        assert!(reused.is_empty());
        reused.push_bits(0xCD, 8);
        assert_eq!(reused, BitString::from_bits(0xCD, 8));
    }

    #[test]
    fn toggle_bit_flips_exactly_one_bit() {
        let mut bs = BitString::<u64>::from_bools(&[false; 150]);
        bs.toggle_bit(0);
        bs.toggle_bit(149);
        bs.toggle_bit(64);
        assert!(bs.bit(0) && bs.bit(149) && bs.bit(64));
        bs.toggle_bit(64);
        assert!(!bs.bit(64));
        assert_eq!(bs.iter().filter(|&b| b).count(), 2);
    }

    #[test]
    fn le_bytes_are_canonical_and_truncated() {
        let mut bs = BitString::<u64>::new();
        bs.push_bits(0xABCD, 16);
        bs.push_bits(0b101, 3);
        // 19 bits -> 3 bytes: CD AB 05 (bit 16..18 = 101 -> 0b101 = 5).
        assert_eq!(bs.to_le_bytes(), vec![0xCD, 0xAB, 0x05]);
    }
}
