//! # clique-sim — a bit-exact simulator for the congested clique
//!
//! This crate implements the communication models studied in Drucker, Kuhn &
//! Oshman, *On the Power of the Congested Clique Model* (PODC 2014):
//!
//! * **`CLIQUE-UCAST(n, b)`** — `n` players on a complete network; each
//!   player may send a *different* `b`-bit message on each link per round.
//! * **`CLIQUE-BCAST(n, b)`** — each player writes a single `b`-bit message
//!   per round that every other player sees (the multi-party shared
//!   blackboard with number-in-hand inputs).
//! * **`CONGEST-UCAST(n, b)`** — unicast, but only along the edges of an
//!   arbitrary topology (the communication network equals the input graph).
//!
//! Protocols are written against the [`protocol::Protocol`] /
//! [`session::Session`] API: a protocol is model-independent, a
//! [`model::CliqueConfig`] (built with [`model::CliqueConfig::builder`])
//! picks the model, and [`protocol::Runner`] pairs the two and returns an
//! [`outcome::RunOutcome`] with the full round/bit ledger.
//! [`protocol::Runner::sweep`] measures a protocol across an `(n, b)` grid.
//!
//! Underneath, two execution engines do the accounting — a [`Session`]
//! fronts both:
//!
//! * [`engine::RoundEngine`] — strict, round-by-round execution of a
//!   [`node::NodeAlgorithm`] per player, rejecting any message longer than
//!   `b` bits. Use it (via [`session::Session::run_nodes`]) when the
//!   per-round behaviour itself is the object of study.
//! * [`phase::PhaseEngine`] — bulk-synchronous phases carrying arbitrarily
//!   long logical messages, charged `ceil(max link load / b)` rounds
//!   ([`session::Session::exchange`]); the accounting is identical to
//!   chunking every long message into `b`-bit pieces.
//!
//! Player-local work runs on a deterministic scoped worker pool ([`par`]):
//! the round engine steps node algorithms concurrently and merges outboxes
//! in ascending [`node::NodeId`] order, the phase engine validates senders
//! concurrently, and the [`linalg`] products split output rows across
//! workers — transcripts, ledgers and outputs are bit-identical at every
//! worker count (knob: [`par::set_threads`], `CLIQUE_THREADS`, or the
//! per-engine `set_threads`).
//!
//! Message delivery itself is pluggable: both engines hand validated
//! outboxes to a [`transport::Transport`] backend (zero-copy in-memory by
//! default, mpsc-channel ownership transfer as a cross-check), and because
//! all accounting happens before delivery, *the transport never changes
//! transcripts* (knob: [`transport::set_default_kind`], `CLIQUE_TRANSPORT`,
//! or the per-engine `set_transport`). Delivery can also *fail*, typed:
//! [`transport::FaultyTransport`] injects a seeded [`transport::FaultPlan`]
//! of drops, bit flips, duplications and truncations, detected through
//! per-message integrity framing and surfaced as
//! [`model::SimError::TransportFault`] — a faulted run aborts cleanly, it
//! is never silently wrong.
//!
//! # Examples
//!
//! ```
//! use clique_sim::prelude::*;
//!
//! # fn main() -> Result<(), clique_sim::model::SimError> {
//! // The trivial algorithm of Section 3.1: in CLIQUE-BCAST(n, b) every node
//! // broadcasts its whole neighbourhood (n bits), taking ceil(n / b) rounds.
//! let n = 16;
//! let config = CliqueConfig::builder().nodes(n).bandwidth(4).broadcast().build();
//! let outcome = Runner::new(config).execute(&mut |session: &mut Session| {
//!     let rows: Vec<BitString> = (0..n)
//!         .map(|i| BitString::from_bools(&vec![i % 2 == 0; n]))
//!         .collect();
//!     session.broadcast_all("send adjacency rows", &rows)?;
//!     Ok(())
//! })?;
//! assert_eq!(outcome.rounds(), (n as u64).div_ceil(4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bits;
pub mod engine;
pub mod lane;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod node;
pub mod outcome;
pub mod par;
pub mod phase;
pub mod protocol;
pub mod session;
pub mod transport;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::arena::{ArenaStats, BufferArena};
    pub use crate::bits::{bits_for_universe, BitReader, BitString};
    pub use crate::engine::RoundEngine;
    pub use crate::lane::{DefaultLane, Word};
    pub use crate::linalg::{BitMatrix, IntMatrix};
    pub use crate::metrics::{Metrics, PhaseRecord, RunReport};
    pub use crate::model::{
        AdjacencyTopology, CliqueConfig, CliqueConfigBuilder, CommMode, SimError, Topology,
    };
    pub use crate::node::{Inbox, NodeAlgorithm, NodeCtx, NodeId, Outbox};
    pub use crate::outcome::RunOutcome;
    pub use crate::phase::{PhaseEngine, PhaseInbox, PhaseOutbox};
    pub use crate::protocol::{Protocol, Runner, SweepPoint};
    pub use crate::session::{NodeRun, Session};
    pub use crate::transport::{
        ChannelTransport, FaultKind, FaultPlan, FaultyTransport, InMemoryTransport, Transport,
        TransportFault, TransportKind,
    };
}

pub use arena::{ArenaStats, BufferArena};
pub use bits::BitString;
pub use lane::{DefaultLane, Word};
pub use linalg::BitMatrix;
pub use metrics::{Metrics, RunReport};
pub use model::{CliqueConfig, CliqueConfigBuilder, CommMode, SimError};
pub use node::NodeId;
pub use outcome::RunOutcome;
pub use phase::PhaseEngine;
pub use protocol::{Protocol, Runner, SweepPoint};
pub use session::{NodeRun, Session};
pub use transport::{
    ChannelTransport, FaultKind, FaultPlan, FaultyTransport, InMemoryTransport, Transport,
    TransportFault, TransportKind,
};
