//! # clique-sim — a bit-exact simulator for the congested clique
//!
//! This crate implements the communication models studied in Drucker, Kuhn &
//! Oshman, *On the Power of the Congested Clique Model* (PODC 2014):
//!
//! * **`CLIQUE-UCAST(n, b)`** — `n` players on a complete network; each
//!   player may send a *different* `b`-bit message on each link per round.
//! * **`CLIQUE-BCAST(n, b)`** — each player writes a single `b`-bit message
//!   per round that every other player sees (the multi-party shared
//!   blackboard with number-in-hand inputs).
//! * **`CONGEST-UCAST(n, b)`** — unicast, but only along the edges of an
//!   arbitrary topology (the communication network equals the input graph).
//!
//! Two execution engines are provided:
//!
//! * [`engine::RoundEngine`] — strict, round-by-round execution of a
//!   [`node::NodeAlgorithm`] per player, rejecting any message longer than
//!   `b` bits. Use it when the per-round behaviour itself is the object of
//!   study.
//! * [`phase::PhaseEngine`] — bulk-synchronous phases carrying arbitrarily
//!   long logical messages, charged `ceil(max link load / b)` rounds. This is
//!   what the higher-level crates (`clique-core`, `clique-routing`) build
//!   their protocols on; the accounting is identical to chunking every long
//!   message into `b`-bit pieces.
//!
//! # Examples
//!
//! ```
//! use clique_sim::prelude::*;
//!
//! # fn main() -> Result<(), clique_sim::model::SimError> {
//! // The trivial algorithm of Section 3.1: in CLIQUE-BCAST(n, b) every node
//! // broadcasts its whole neighbourhood (n bits), taking ceil(n / b) rounds.
//! let n = 16;
//! let cfg = CliqueConfig::broadcast(n, 4);
//! let mut engine = PhaseEngine::new(cfg);
//! let rows: Vec<BitString> = (0..n)
//!     .map(|i| BitString::from_bools(&vec![i % 2 == 0; n]))
//!     .collect();
//! engine.broadcast_all("send adjacency rows", &rows)?;
//! assert_eq!(engine.rounds(), (n as u64).div_ceil(4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod engine;
pub mod metrics;
pub mod model;
pub mod node;
pub mod phase;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::bits::{bits_for_universe, BitReader, BitString};
    pub use crate::engine::RoundEngine;
    pub use crate::metrics::{Metrics, PhaseRecord, RunReport};
    pub use crate::model::{AdjacencyTopology, CliqueConfig, CommMode, SimError, Topology};
    pub use crate::node::{Inbox, NodeAlgorithm, NodeCtx, NodeId, Outbox};
    pub use crate::phase::{PhaseEngine, PhaseInbox, PhaseOutbox};
}

pub use bits::BitString;
pub use metrics::{Metrics, RunReport};
pub use model::{CliqueConfig, CommMode, SimError};
pub use node::NodeId;
pub use phase::PhaseEngine;
