//! The shared result type of protocol executions.
//!
//! Every protocol run on the simulator produces the same two things: a
//! protocol-specific output (a decision, a reconstructed graph, circuit
//! outputs, …) and the communication [`Metrics`] the run was charged.
//! [`RunOutcome`] pairs them once, so the algorithm crates no longer
//! duplicate `rounds`/`total_bits` fields in every result struct. The
//! outcome [`Deref`]s to the output, so `outcome.contains` and friends keep
//! reading naturally at call sites.

use std::ops::{Deref, DerefMut};

use crate::metrics::Metrics;

/// The result of executing a [`Protocol`](crate::protocol::Protocol): the
/// protocol's output plus the full communication accounting of the run.
///
/// # Examples
///
/// ```
/// use clique_sim::prelude::*;
///
/// # fn main() -> Result<(), clique_sim::model::SimError> {
/// let config = CliqueConfig::builder().nodes(4).bandwidth(2).broadcast().build();
/// let outcome = Runner::new(config).execute(&mut |session: &mut Session| {
///     let msgs: Vec<BitString> = (0..4).map(|i| BitString::from_bits(i, 6)).collect();
///     session.broadcast_all("announce", &msgs)?;
///     Ok("done")
/// })?;
/// assert_eq!(*outcome, "done");
/// assert_eq!(outcome.rounds(), 3); // ceil(6 / 2)
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome<T> {
    /// The protocol-specific output of the run.
    pub output: T,
    /// Communication metrics charged to the run.
    pub metrics: Metrics,
}

impl<T> RunOutcome<T> {
    /// Pairs an output with the metrics of its run.
    pub fn new(output: T, metrics: Metrics) -> Self {
        Self { output, metrics }
    }

    /// Rounds used by the run.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Total payload bits placed on the network / blackboard.
    pub fn total_bits(&self) -> u64 {
        self.metrics.total_bits
    }

    /// Total messages placed on the network.
    pub fn messages(&self) -> u64 {
        self.metrics.messages
    }

    /// The maximum number of rounds charged to any single phase of the run.
    ///
    /// An aggregated strict-round record
    /// ([`PhaseRecord::strict_rounds`](crate::metrics::PhaseRecord::strict_rounds))
    /// represents `k` consecutive one-round steps, not one `k`-round phase,
    /// so it contributes 1 here.
    pub fn max_phase_rounds(&self) -> u64 {
        self.metrics
            .phases
            .iter()
            .map(|p| {
                if p.strict_rounds {
                    p.rounds.min(1)
                } else {
                    p.rounds
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Consumes the outcome, returning the output and dropping the metrics.
    pub fn into_output(self) -> T {
        self.output
    }

    /// Maps the output, keeping the metrics.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunOutcome<U> {
        RunOutcome {
            output: f(self.output),
            metrics: self.metrics,
        }
    }
}

impl<T> Deref for RunOutcome<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.output
    }
}

impl<T> DerefMut for RunOutcome<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PhaseRecord;

    fn metrics() -> Metrics {
        let mut m = Metrics::new();
        m.record_phase(PhaseRecord {
            label: "a".into(),
            rounds: 2,
            bits: 9,
            messages: 3,
            max_link_bits_per_round: 4,
            strict_rounds: false,
        });
        m.record_phase(PhaseRecord {
            label: "b".into(),
            rounds: 5,
            bits: 1,
            messages: 1,
            max_link_bits_per_round: 1,
            strict_rounds: false,
        });
        m
    }

    #[test]
    fn accessors_read_the_metrics() {
        let o = RunOutcome::new(true, metrics());
        assert_eq!(o.rounds(), 7);
        assert_eq!(o.total_bits(), 10);
        assert_eq!(o.messages(), 4);
        assert_eq!(o.max_phase_rounds(), 5);
        assert!(*o);
    }

    #[test]
    fn max_phase_rounds_counts_strict_rounds_individually() {
        // k aggregated strict rounds are k one-round steps, not one k-round
        // phase.
        let mut m = Metrics::new();
        for _ in 0..5 {
            m.record_round(1, 1, 1);
        }
        m.record_phase(PhaseRecord {
            label: "bulk".into(),
            rounds: 3,
            bits: 6,
            messages: 2,
            max_link_bits_per_round: 2,
            strict_rounds: false,
        });
        let o = RunOutcome::new((), m);
        assert_eq!(o.rounds(), 8);
        assert_eq!(o.max_phase_rounds(), 3);
    }

    #[test]
    fn deref_and_map() {
        struct Inner {
            value: u32,
        }
        let o = RunOutcome::new(Inner { value: 7 }, metrics());
        assert_eq!(o.value, 7);
        let mapped = o.map(|inner| inner.value * 2);
        assert_eq!(*mapped, 14);
        assert_eq!(mapped.rounds(), 7);
        assert_eq!(mapped.into_output(), 14);
    }
}
