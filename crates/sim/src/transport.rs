//! Pluggable message-delivery backends for both engines.
//!
//! A [`Transport`] moves validated payloads from a sender's outbox into the
//! receivers' inboxes — nothing else. All round/bit accounting is computed
//! by the engines *before* delivery, from the outbox contents alone, so a
//! transport physically cannot change the ledger; and because both engines
//! call [`Transport::deliver_round`] / [`Transport::deliver_phase`] once
//! per sender in ascending [`NodeId`] order, delivery order (and therefore
//! the transcript every node observes) is fixed by the engine, not the
//! backend. This is the serving-layer invariant: **the transport never
//! changes transcripts** — swapping backends trades mechanics (zero-copy
//! sharing vs. ownership transfer), never results.
//!
//! Two backends ship with the simulator:
//!
//! * [`InMemoryTransport`] — the default: unicasts are moved into the
//!   receiving inbox, broadcasts are [`Arc`]-shared (one allocation per
//!   broadcast, a pointer clone per receiver). This is byte-for-byte the
//!   delivery path the engines used before the trait existed.
//! * [`ChannelTransport`] — every payload crosses an [`mpsc`] channel and
//!   broadcasts are deep-copied per receiver, modelling socket-style
//!   ownership transfer (the sender's buffer is gone once sent, each
//!   receiver owns its bytes). Useful as a cross-check that no protocol
//!   accidentally depends on broadcast aliasing.
//!
//! The process default is [`TransportKind::InMemory`]; it can be overridden
//! with [`set_default_kind`] or the `CLIQUE_TRANSPORT` environment variable
//! (`memory` or `channel`), mirroring the `CLIQUE_THREADS` worker knob — CI
//! runs the regression pins under both values to enforce the invariant.
//!
//! # Fault injection
//!
//! Delivery can fail: [`Transport::deliver_round`] / [`deliver_phase`]
//! return a [`TransportFault`] that the engines wrap (with the current
//! round) into [`SimError::TransportFault`] and abort the run — a faulty
//! delivery is *never* silently absorbed into a transcript. Two sources of
//! faults exist:
//!
//! * Real backend failures — e.g. a [`ChannelTransport`] whose receiving
//!   endpoint disconnected reports [`FaultKind::Disconnect`] instead of
//!   panicking mid-round.
//! * Deterministic chaos testing — [`FaultyTransport`] wraps any inner
//!   backend and injects a seeded [`FaultPlan`] schedule of per-`(round,
//!   sender, receiver)` message drops, bit flips, duplications and
//!   truncations. Each scheduled fault is applied to the message's
//!   integrity framing ([`frame`]: a 32-bit length plus a 64-bit FNV-1a
//!   checksum) and re-detected from the damage ([`unframe`]), so every
//!   injected fault surfaces as a typed error naming the damage class.
//!   Messages the plan leaves alone pass through to the inner backend
//!   untouched: an empty plan is byte-for-byte the bare inner transport.
//!
//! Detection is deterministic, not probabilistic: dropping, duplicating or
//! truncating framed bits breaks the length check, and each FNV-1a step
//! `h' = (h ^ byte) * prime` is a bijection in `h` for a fixed byte (XOR is
//! bijective; multiplying by an odd constant is bijective mod 2^64), so any
//! single-bit payload change with unchanged length always changes the final
//! checksum.
//!
//! [`deliver_phase`]: Transport::deliver_phase
//! [`SimError::TransportFault`]: crate::model::SimError::TransportFault

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::bits::BitString;
use crate::model::{CliqueConfig, SimError};
use crate::node::{Inbox, NodeId, Outbox};
use crate::phase::{PhaseInbox, PhaseOutbox};

/// A message-delivery backend.
///
/// Implementations deliver one sender's validated outbox into the inbox
/// array; the engines call this once per sender in ascending [`NodeId`]
/// order and have already charged the ledger, so a conforming transport
/// must deliver exactly the submitted payloads to exactly the addressed
/// receivers (broadcasts to every neighbour of `sender`) and may differ
/// only in *how* the bytes travel.
pub trait Transport: fmt::Debug + Send {
    /// A short stable identifier (e.g. for reports): `"memory"`, `"channel"`.
    fn name(&self) -> &'static str;

    /// Delivers one strict-round outbox: each unicast into its
    /// destination's slot for `sender`, the broadcast (if any) to every
    /// neighbour of `sender`. The outbox is drained.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportFault`] when delivery is lost or damaged (a
    /// real backend failure, or an injected fault detected through the
    /// integrity framing); the engine aborts the run with
    /// [`SimError::TransportFault`](crate::model::SimError).
    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    ) -> Result<(), TransportFault>;

    /// Delivers one phase outbox: the broadcast (if any) to every neighbour,
    /// unicasts appended to the destination's per-sender aggregate in
    /// submission order.
    ///
    /// # Errors
    ///
    /// As [`Self::deliver_round`].
    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    ) -> Result<(), TransportFault>;

    /// Clones the backend for a nested engine (fresh delivery state, same
    /// mechanics); this is what makes `Box<dyn Transport>` fields of the
    /// `Clone` engine types work.
    fn clone_box(&self) -> Box<dyn Transport>;
}

impl Clone for Box<dyn Transport> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The failure classes a transport can detect (and [`FaultyTransport`] can
/// inject). The first four are injectable; [`FaultKind::Disconnect`] is
/// reserved for real backend failures such as a dropped channel endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The message never arrived.
    Drop,
    /// At least one bit of the message flipped in flight.
    Corrupt,
    /// The message arrived more than once (payload longer than declared).
    Duplicate,
    /// A trailing portion of the message was lost.
    Truncate,
    /// The backend's receiving endpoint is gone (e.g. a disconnected
    /// channel). Never scheduled by a [`FaultPlan`].
    Disconnect,
}

/// The fault kinds a [`FaultPlan`] can schedule.
pub const INJECTABLE_FAULTS: [FaultKind; 4] = [
    FaultKind::Drop,
    FaultKind::Corrupt,
    FaultKind::Duplicate,
    FaultKind::Truncate,
];

impl FaultKind {
    /// A short stable identifier: `"drop"`, `"corrupt"`, `"duplicate"`,
    /// `"truncate"`, `"disconnect"`.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Truncate => "truncate",
            FaultKind::Disconnect => "disconnect",
        }
    }

    fn mask(self) -> u8 {
        match self {
            FaultKind::Drop => 1,
            FaultKind::Corrupt => 2,
            FaultKind::Duplicate => 4,
            FaultKind::Truncate => 8,
            FaultKind::Disconnect => 0,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A delivery failure detected by a [`Transport`]. The engines wrap it with
/// the round it hit into
/// [`SimError::TransportFault`](crate::model::SimError).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportFault {
    /// The sender whose delivery failed.
    pub sender: NodeId,
    /// The addressed receiver (`None` for a broadcast).
    pub receiver: Option<NodeId>,
    /// The damage class, as detected from the framing (not as scheduled).
    pub kind: FaultKind,
}

impl TransportFault {
    /// The engine-level error for a fault observed in `round`.
    pub fn at_round(self, round: u64) -> SimError {
        SimError::TransportFault {
            round,
            sender: self.sender,
            receiver: self.receiver,
            kind: self.kind,
        }
    }
}

impl fmt::Display for TransportFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.receiver {
            Some(receiver) => write!(
                f,
                "transport fault ({}) on message from {} to {receiver}",
                self.kind, self.sender
            ),
            None => write!(
                f,
                "transport fault ({}) on broadcast from {}",
                self.kind, self.sender
            ),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Bits of the integrity header a [`frame`]d message carries: a 32-bit
/// payload bit-length plus a 64-bit FNV-1a checksum.
pub const FRAME_HEADER_BITS: usize = 96;

/// FNV-1a over the payload's canonical little-endian byte serialisation
/// ([`BitString::to_le_bytes`] — `ceil(len / 8)` bytes, zero-padded past
/// `len`) plus its bit length. Hashing the canonical bytes, not the packed
/// backing words, keeps the digest independent of the lane width.
fn payload_checksum(payload: &BitString) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in payload.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for byte in (payload.len() as u64).to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Wraps a payload in integrity framing: 32 length bits, 64 checksum bits,
/// then the payload verbatim.
pub fn frame(payload: &BitString) -> BitString {
    let mut framed = BitString::with_capacity(FRAME_HEADER_BITS + payload.len());
    framed.push_bits(payload.len() as u64, 32);
    framed.push_bits(payload_checksum(payload), 64);
    framed.extend_from(payload);
    framed
}

/// Validates framing and recovers the payload, classifying any damage:
/// empty → [`FaultKind::Drop`], shorter than declared →
/// [`FaultKind::Truncate`], longer → [`FaultKind::Duplicate`], checksum
/// mismatch → [`FaultKind::Corrupt`].
///
/// # Errors
///
/// The detected [`FaultKind`] when the framing does not verify.
pub fn unframe(framed: &BitString) -> Result<BitString, FaultKind> {
    if framed.is_empty() {
        return Err(FaultKind::Drop);
    }
    if framed.len() < FRAME_HEADER_BITS {
        return Err(FaultKind::Truncate);
    }
    let mut reader = framed.reader();
    let declared = reader.read_bits(32).ok_or(FaultKind::Truncate)? as usize;
    let checksum = reader.read_bits(64).ok_or(FaultKind::Truncate)?;
    let body = framed.len() - FRAME_HEADER_BITS;
    if body < declared {
        return Err(FaultKind::Truncate);
    }
    if body > declared {
        return Err(FaultKind::Duplicate);
    }
    let words = reader.read_words(declared).ok_or(FaultKind::Truncate)?;
    let payload = BitString::from_words(&words, declared);
    if payload_checksum(&payload) != checksum {
        return Err(FaultKind::Corrupt);
    }
    Ok(payload)
}

/// A seeded, fully deterministic fault schedule for [`FaultyTransport`].
///
/// Whether a given message is faulted — and how — is a pure function of
/// `(seed, round, sender, receiver, occurrence)`: the coordinates are mixed
/// into a per-message ChaCha8 stream, so the schedule does not depend on
/// delivery order, worker count or wall clock, and replaying a run replays
/// its faults bit for bit. `rate_ppm` is the per-message fault probability
/// in parts per million; faulted messages draw uniformly among the enabled
/// [`INJECTABLE_FAULTS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rate_ppm: u32,
    kinds: u8,
}

impl FaultPlan {
    /// A schedule injecting `kinds` at `rate_ppm` parts per million,
    /// driven by `seed`. Non-injectable kinds ([`FaultKind::Disconnect`])
    /// are ignored.
    pub fn new(seed: u64, rate_ppm: u32, kinds: &[FaultKind]) -> Self {
        let mask = kinds.iter().fold(0u8, |acc, kind| acc | kind.mask());
        Self {
            seed,
            rate_ppm: rate_ppm.min(1_000_000),
            kinds: mask,
        }
    }

    /// The empty schedule: injects nothing, ever.
    pub fn none() -> Self {
        Self {
            seed: 0,
            rate_ppm: 0,
            kinds: 0,
        }
    }

    /// True when this plan can never fault a message (zero rate or no
    /// enabled kinds) — [`FaultyTransport`] then passes every delivery
    /// through untouched.
    pub fn is_empty(&self) -> bool {
        self.rate_ppm == 0 || self.kinds == 0
    }

    /// The driving seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-message fault rate in parts per million.
    pub fn rate_ppm(&self) -> u32 {
        self.rate_ppm
    }

    /// The enabled fault kinds, in [`INJECTABLE_FAULTS`] order.
    pub fn kinds(&self) -> Vec<FaultKind> {
        INJECTABLE_FAULTS
            .iter()
            .copied()
            .filter(|kind| self.kinds & kind.mask() != 0)
            .collect()
    }

    /// The same schedule under a deterministically mixed seed — the hook
    /// retry layers use to give each `(job, attempt)` its own schedule
    /// while staying reproducible.
    #[must_use]
    pub fn salted(&self, salt: u64) -> Self {
        let mut mixed = self.seed ^ FNV_OFFSET;
        for byte in salt.to_le_bytes() {
            mixed = (mixed ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        Self {
            seed: mixed,
            rate_ppm: self.rate_ppm,
            kinds: self.kinds,
        }
    }

    /// The scheduled fault (and an auxiliary draw selecting e.g. the bit to
    /// flip) for one message coordinate, or `None` to deliver cleanly.
    /// `receiver` is `None` for a broadcast; `occurrence` distinguishes
    /// multiple unicasts on one `(sender, receiver)` link within one
    /// round/phase.
    pub fn draw(
        &self,
        round: u64,
        sender: NodeId,
        receiver: Option<NodeId>,
        occurrence: u64,
    ) -> Option<(FaultKind, u64)> {
        if self.is_empty() {
            return None;
        }
        let receiver_code = receiver.map_or(u64::MAX, |dst| dst.index() as u64);
        let mut mixed = self.seed ^ FNV_OFFSET;
        for coordinate in [round, sender.index() as u64, receiver_code, occurrence] {
            for byte in coordinate.to_le_bytes() {
                mixed = (mixed ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mixed);
        if rng.gen::<u64>() % 1_000_000 >= u64::from(self.rate_ppm) {
            return None;
        }
        let enabled = self.kinds();
        let kind = enabled[(rng.gen::<u64>() % enabled.len() as u64) as usize];
        Some((kind, rng.gen::<u64>()))
    }
}

/// Applies a scheduled fault to a framed message. The damage is shaped so
/// [`unframe`] re-detects exactly the injected kind: corruption never
/// touches the 32-bit length field, truncation always leaves at least one
/// bit, duplication appends a full second copy.
fn apply_fault(framed: &BitString, kind: FaultKind, aux: u64) -> BitString {
    match kind {
        FaultKind::Drop | FaultKind::Disconnect => BitString::new(),
        FaultKind::Corrupt => {
            let span = (framed.len() - 32) as u64;
            flip_bit(framed, 32 + (aux % span) as usize)
        }
        FaultKind::Duplicate => framed.concat(framed),
        FaultKind::Truncate => {
            let body = (framed.len() - FRAME_HEADER_BITS) as u64;
            let new_len = if body > 0 {
                FRAME_HEADER_BITS + (aux % body) as usize
            } else {
                1 + (aux % (FRAME_HEADER_BITS as u64 - 1)) as usize
            };
            BitString::from_words(framed.words(), new_len)
        }
    }
}

fn flip_bit(bits: &BitString, position: usize) -> BitString {
    let mut flipped = bits.clone();
    flipped.toggle_bit(position);
    flipped
}

/// A chaos-testing wrapper: screens every message of the inner transport
/// against a [`FaultPlan`] and, when a fault is scheduled, damages the
/// message's integrity framing and reports the detected [`TransportFault`]
/// instead of delivering — the run aborts typed, never silently wrong.
/// Messages the plan leaves alone reach the inner backend untouched, so a
/// wrapper with an empty plan is byte-identical to the bare inner
/// transport.
///
/// The schedule's round coordinate is derived from the engines' delivery
/// discipline (both engines call the transport exactly once per sender per
/// round/phase, in ascending order), so under the phase engine it counts
/// *phases*. [`Transport::clone_box`] restarts the schedule: a nested
/// engine replays the plan from round 0.
#[derive(Debug)]
pub struct FaultyTransport {
    plan: FaultPlan,
    inner: Box<dyn Transport>,
    deliveries: u64,
}

impl FaultyTransport {
    /// Wraps `inner` under `plan`.
    pub fn new(plan: FaultPlan, inner: Box<dyn Transport>) -> Self {
        Self {
            plan,
            inner,
            deliveries: 0,
        }
    }

    /// Wraps the process-default backend (see [`default_transport`]).
    pub fn with_default_inner(plan: FaultPlan) -> Self {
        Self::new(plan, default_transport())
    }

    /// The schedule this wrapper injects.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Screens one message: on a scheduled fault, frames the payload,
    /// applies the damage, and reports what the framing detects.
    fn screen(
        &self,
        round: u64,
        sender: NodeId,
        receiver: Option<NodeId>,
        occurrence: u64,
        payload: &BitString,
    ) -> Result<(), TransportFault> {
        match self.plan.draw(round, sender, receiver, occurrence) {
            None => Ok(()),
            Some((kind, aux)) => {
                let damaged = apply_fault(&frame(payload), kind, aux);
                match unframe(&damaged) {
                    // The damage was a no-op (unreachable for the shipped
                    // injectable kinds by construction): deliver cleanly.
                    Ok(_) => Ok(()),
                    Err(detected) => Err(TransportFault {
                        sender,
                        receiver,
                        kind: detected,
                    }),
                }
            }
        }
    }
}

impl Transport for FaultyTransport {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    ) -> Result<(), TransportFault> {
        let round = self.deliveries / config.n as u64;
        self.deliveries += 1;
        if !self.plan.is_empty() {
            for (occurrence, (dst, msg)) in outbox.unicasts.iter().enumerate() {
                self.screen(round, sender, Some(*dst), occurrence as u64, msg)?;
            }
            if let Some(msg) = &outbox.broadcast {
                self.screen(round, sender, None, 0, msg)?;
            }
        }
        self.inner.deliver_round(config, sender, outbox, inboxes)
    }

    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    ) -> Result<(), TransportFault> {
        let round = self.deliveries / config.n as u64;
        self.deliveries += 1;
        if self.plan.is_empty() {
            return self.inner.deliver_phase(config, sender, outbox, inboxes);
        }
        let (broadcast, unicasts) = outbox.into_parts();
        if let Some(msg) = &broadcast {
            self.screen(round, sender, None, 0, msg)?;
        }
        for (occurrence, (dst, msg)) in unicasts.iter().enumerate() {
            self.screen(round, sender, Some(*dst), occurrence as u64, msg)?;
        }
        let mut rebuilt = PhaseOutbox::new();
        if let Some(msg) = broadcast {
            rebuilt.broadcast(msg);
        }
        for (dst, msg) in unicasts {
            rebuilt.send(dst, msg);
        }
        self.inner.deliver_phase(config, sender, rebuilt, inboxes)
    }

    /// The same plan over a clone of the inner backend, with the schedule
    /// restarted at round 0 (nested engines replay the plan from the top).
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(Self {
            plan: self.plan,
            inner: self.inner.clone_box(),
            deliveries: 0,
        })
    }
}

/// The default zero-copy backend: unicasts move, broadcasts are
/// [`Arc`]-shared across receivers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InMemoryTransport;

impl Transport for InMemoryTransport {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    ) -> Result<(), TransportFault> {
        for (dst, msg) in outbox.unicasts.drain(..) {
            inboxes[dst.index()].insert_owned(sender, msg);
        }
        if let Some(msg) = outbox.broadcast.take() {
            // One shared allocation per broadcast, a pointer clone per
            // receiver.
            let shared = Arc::new(msg);
            for dst in config.topology.neighbors(sender, config.n) {
                inboxes[dst.index()].insert_shared(sender, Arc::clone(&shared));
            }
        }
        Ok(())
    }

    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    ) -> Result<(), TransportFault> {
        let (broadcast, unicasts) = outbox.into_parts();
        if let Some(msg) = broadcast {
            let shared = Arc::new(msg);
            for dst in config.topology.neighbors(sender, config.n) {
                inboxes[dst.index()].deliver_broadcast(sender, Arc::clone(&shared));
            }
        }
        for (dst, msg) in unicasts {
            inboxes[dst.index()].deliver_unicast(sender, msg);
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(*self)
    }
}

/// One payload in flight inside a [`ChannelTransport`].
#[derive(Debug)]
enum Wire {
    Unicast { dst: NodeId, payload: BitString },
    Broadcast { dst: NodeId, payload: BitString },
}

/// A backend that moves every payload through an [`mpsc`] channel,
/// modelling socket-style ownership transfer: the sender's buffer is
/// consumed by the send, broadcasts are deep-copied once per receiver, and
/// each receiver ends up owning its bytes (no [`Arc`] aliasing across
/// inboxes). Delivery is FIFO per sender, so the resulting inboxes are
/// byte-identical to [`InMemoryTransport`]'s.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: mpsc::Sender<Wire>,
    rx: mpsc::Receiver<Wire>,
}

impl ChannelTransport {
    /// Creates a backend with a fresh channel.
    pub fn new() -> Self {
        let (tx, rx) = mpsc::channel();
        Self { tx, rx }
    }

    /// Pushes one payload into the channel; a disconnected receiving
    /// endpoint becomes a typed [`FaultKind::Disconnect`] fault instead of
    /// a mid-round panic. (With the shipped constructor the receiver lives
    /// in `self`, so this only fires for externally wired endpoints.)
    fn send(
        &self,
        sender: NodeId,
        receiver: Option<NodeId>,
        wire: Wire,
    ) -> Result<(), TransportFault> {
        self.tx.send(wire).map_err(|_| TransportFault {
            sender,
            receiver,
            kind: FaultKind::Disconnect,
        })
    }
}

impl Default for ChannelTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    ) -> Result<(), TransportFault> {
        for (dst, msg) in outbox.unicasts.drain(..) {
            self.send(sender, Some(dst), Wire::Unicast { dst, payload: msg })?;
        }
        if let Some(msg) = outbox.broadcast.take() {
            for dst in config.topology.neighbors(sender, config.n) {
                self.send(
                    sender,
                    None,
                    Wire::Broadcast {
                        dst,
                        payload: msg.clone(),
                    },
                )?;
            }
        }
        while let Ok(wire) = self.rx.try_recv() {
            match wire {
                // Both kinds arrive as owned bytes: ownership was
                // transferred through the channel.
                Wire::Unicast { dst, payload } | Wire::Broadcast { dst, payload } => {
                    inboxes[dst.index()].insert_owned(sender, payload);
                }
            }
        }
        Ok(())
    }

    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    ) -> Result<(), TransportFault> {
        let (broadcast, unicasts) = outbox.into_parts();
        if let Some(msg) = broadcast {
            for dst in config.topology.neighbors(sender, config.n) {
                self.send(
                    sender,
                    None,
                    Wire::Broadcast {
                        dst,
                        payload: msg.clone(),
                    },
                )?;
            }
        }
        for (dst, msg) in unicasts {
            self.send(sender, Some(dst), Wire::Unicast { dst, payload: msg })?;
        }
        while let Ok(wire) = self.rx.try_recv() {
            match wire {
                Wire::Broadcast { dst, payload } => {
                    inboxes[dst.index()].deliver_broadcast(sender, Arc::new(payload));
                }
                Wire::Unicast { dst, payload } => {
                    inboxes[dst.index()].deliver_unicast(sender, payload);
                }
            }
        }
        Ok(())
    }

    /// A fresh channel: delivery state is transient (drained within each
    /// call), so a clone shares nothing with the original.
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(Self::new())
    }
}

/// The shipped backends, for knobs and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// [`InMemoryTransport`] — the zero-copy default.
    InMemory,
    /// [`ChannelTransport`] — mpsc-based ownership transfer.
    Channel,
}

impl TransportKind {
    /// Instantiates the backend.
    pub fn create(self) -> Box<dyn Transport> {
        match self {
            TransportKind::InMemory => Box::new(InMemoryTransport),
            TransportKind::Channel => Box::new(ChannelTransport::new()),
        }
    }

    /// Parses a knob value (`"memory"` / `"channel"`, as accepted by
    /// `CLIQUE_TRANSPORT`).
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "memory" | "in-memory" | "inmemory" => Some(TransportKind::InMemory),
            "channel" | "mpsc" => Some(TransportKind::Channel),
            _ => None,
        }
    }

    /// The stable identifier ([`Transport::name`]) of this backend.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InMemory => "memory",
            TransportKind::Channel => "channel",
        }
    }
}

/// Process-wide default-transport override; 0 = not set.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets (or with `None` clears) the process-wide default transport that
/// newly created engines use; per-engine `set_transport` overrides it.
pub fn set_default_kind(kind: Option<TransportKind>) {
    let value = match kind {
        None => 0,
        Some(TransportKind::InMemory) => 1,
        Some(TransportKind::Channel) => 2,
    };
    OVERRIDE.store(value, Ordering::Relaxed);
}

/// The backend newly created engines default to: the [`set_default_kind`]
/// override if set, else `CLIQUE_TRANSPORT` if it parses (cached after the
/// first read), else [`TransportKind::InMemory`].
pub fn default_kind() -> TransportKind {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => return TransportKind::InMemory,
        2 => return TransportKind::Channel,
        _ => {}
    }
    static DEFAULT: OnceLock<TransportKind> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CLIQUE_TRANSPORT")
            .ok()
            .and_then(|value| TransportKind::parse(&value))
            // An unparsable CLIQUE_TRANSPORT falls through to the in-memory
            // default rather than aborting library users, matching
            // CLIQUE_THREADS.
            .unwrap_or(TransportKind::InMemory)
    })
}

/// Instantiates the current default backend (see [`default_kind`]).
pub fn default_transport() -> Box<dyn Transport> {
    default_kind().create()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoundEngine;
    use crate::model::AdjacencyTopology;
    use crate::node::{NodeAlgorithm, NodeCtx};
    use crate::phase::PhaseEngine;

    #[test]
    fn kind_parsing_and_names() {
        assert_eq!(
            TransportKind::parse("memory"),
            Some(TransportKind::InMemory)
        );
        assert_eq!(
            TransportKind::parse(" Channel "),
            Some(TransportKind::Channel)
        );
        assert_eq!(TransportKind::parse("mpsc"), Some(TransportKind::Channel));
        assert_eq!(TransportKind::parse("tcp"), None);
        assert_eq!(TransportKind::InMemory.name(), "memory");
        assert_eq!(TransportKind::Channel.create().name(), "channel");
    }

    #[test]
    fn default_kind_override_round_trips() {
        set_default_kind(Some(TransportKind::Channel));
        assert_eq!(default_kind(), TransportKind::Channel);
        set_default_kind(Some(TransportKind::InMemory));
        assert_eq!(default_kind(), TransportKind::InMemory);
        set_default_kind(None);
        // Without an override the cached env/default value applies; either
        // way it must be stable across calls.
        assert_eq!(default_kind(), default_kind());
    }

    /// Mixed round traffic: everyone broadcasts, node 0 also unicasts (in
    /// unicast mode a broadcast and a unicast to the same destination
    /// overwrite deterministically).
    struct Mixed {
        done: bool,
        digest: u64,
    }

    impl NodeAlgorithm for Mixed {
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &crate::node::Inbox, outbox: &mut Outbox) {
            if ctx.round == 0 {
                outbox.broadcast(BitString::from_bits(ctx.id.index() as u64, 3));
                if ctx.id.index() == 0 && ctx.n() > 1 {
                    outbox.send(NodeId::new(1), BitString::from_bits(0b101, 3));
                }
            } else {
                for (sender, msg) in inbox.iter() {
                    self.digest = self
                        .digest
                        .wrapping_mul(31)
                        .wrapping_add(sender.index() as u64)
                        .wrapping_add(msg.reader().read_bits(msg.len().min(8)).unwrap_or(0));
                }
                self.done = true;
            }
        }

        fn halted(&self) -> bool {
            self.done
        }
    }

    fn round_run(transport: Box<dyn Transport>) -> (crate::metrics::Metrics, Vec<u64>) {
        let cfg = CliqueConfig::unicast(6, 8);
        let nodes = (0..6)
            .map(|_| Mixed {
                done: false,
                digest: 0,
            })
            .collect();
        let mut engine = RoundEngine::new(cfg, nodes);
        engine.set_transport(transport);
        engine.run(4).unwrap();
        let digests = engine.nodes().iter().map(|n| n.digest).collect();
        (engine.metrics().clone(), digests)
    }

    #[test]
    fn round_transcripts_identical_across_backends() {
        let memory = round_run(Box::new(InMemoryTransport));
        let channel = round_run(Box::new(ChannelTransport::new()));
        assert_eq!(memory, channel);
    }

    fn phase_run(transport: Box<dyn Transport>) -> (crate::metrics::Metrics, Vec<Vec<u8>>) {
        let n = 5;
        let mut engine = PhaseEngine::new(CliqueConfig::unicast(n, 2));
        engine.set_transport(transport);
        let outs: Vec<PhaseOutbox> = (0..n)
            .map(|i| {
                let mut out = PhaseOutbox::new();
                out.broadcast(BitString::from_bits(i as u64, 4));
                out.send(NodeId::new((i + 1) % n), BitString::from_bits(1, 3));
                out.send(NodeId::new((i + 1) % n), BitString::from_bits(2, 2));
                out
            })
            .collect();
        let inboxes = engine.exchange("mixed", outs).unwrap();
        let digests = inboxes
            .iter()
            .map(|inbox| {
                let mut bytes = Vec::new();
                for (sender, msg) in inbox.broadcasts() {
                    bytes.push(sender.index() as u8);
                    bytes.push(msg.len() as u8);
                }
                for (sender, msg) in inbox.unicasts() {
                    bytes.push(0x80 | sender.index() as u8);
                    bytes.push(msg.len() as u8);
                }
                bytes
            })
            .collect();
        (engine.metrics().clone(), digests)
    }

    #[test]
    fn phase_transcripts_identical_across_backends() {
        let memory = phase_run(Box::new(InMemoryTransport));
        let channel = phase_run(Box::new(ChannelTransport::new()));
        assert_eq!(memory, channel);
    }

    #[test]
    fn framing_round_trips_and_detects_every_injected_kind() {
        let payloads = [
            BitString::new(),
            BitString::from_bits(0b1011, 4),
            BitString::from_bits(u64::MAX, 64),
            {
                let mut long = BitString::new();
                for i in 0..13u64 {
                    long.push_bits(i.wrapping_mul(0x9E37), 17);
                }
                long
            },
        ];
        for payload in &payloads {
            let framed = frame(payload);
            assert_eq!(framed.len(), FRAME_HEADER_BITS + payload.len());
            assert_eq!(unframe(&framed).as_ref(), Ok(payload));
            for kind in INJECTABLE_FAULTS {
                for aux in [0u64, 1, 7, u64::MAX - 3] {
                    let damaged = apply_fault(&framed, kind, aux);
                    assert_eq!(
                        unframe(&damaged),
                        Err(kind),
                        "kind {kind} aux {aux} payload {} bits",
                        payload.len()
                    );
                }
            }
        }
    }

    #[test]
    fn fault_plan_draws_are_deterministic_and_respect_rate() {
        let plan = FaultPlan::new(0xC4A05, 250_000, &INJECTABLE_FAULTS);
        let mut faulted = 0u32;
        for round in 0..4u64 {
            for sender in 0..8 {
                for receiver in 0..8 {
                    let draw =
                        plan.draw(round, NodeId::new(sender), Some(NodeId::new(receiver)), 0);
                    assert_eq!(
                        draw,
                        plan.draw(round, NodeId::new(sender), Some(NodeId::new(receiver)), 0),
                        "draw is not a pure function of its coordinates"
                    );
                    faulted += u32::from(draw.is_some());
                }
            }
        }
        // 256 messages at 25%: the seeded schedule must fault some but not
        // all of them (exact count pinned by determinism, not asserted).
        assert!(faulted > 0 && faulted < 256, "faulted {faulted}/256");
        assert!(FaultPlan::none().draw(0, NodeId::new(0), None, 0).is_none());
        assert!(FaultPlan::new(1, 0, &INJECTABLE_FAULTS).is_empty());
        assert!(FaultPlan::new(1, 500, &[]).is_empty());
        assert!(FaultPlan::new(1, 500, &[FaultKind::Disconnect]).is_empty());
        let salted = plan.salted(3);
        assert_eq!(salted.rate_ppm(), plan.rate_ppm());
        assert_ne!(salted.seed(), plan.seed());
        assert_eq!(plan.salted(3), plan.salted(3));
        assert_ne!(plan.salted(3), plan.salted(4));
    }

    #[test]
    fn empty_plan_wrapper_is_byte_identical_to_bare_inner() {
        for (bare, wrapped) in [
            (
                round_run(Box::new(InMemoryTransport)),
                round_run(Box::new(FaultyTransport::new(
                    FaultPlan::none(),
                    Box::new(InMemoryTransport),
                ))),
            ),
            (
                round_run(Box::new(ChannelTransport::new())),
                round_run(Box::new(FaultyTransport::new(
                    FaultPlan::none(),
                    Box::new(ChannelTransport::new()),
                ))),
            ),
        ] {
            assert_eq!(bare, wrapped);
        }
        let bare = phase_run(Box::new(InMemoryTransport));
        let wrapped = phase_run(Box::new(FaultyTransport::new(
            FaultPlan::none(),
            Box::new(InMemoryTransport),
        )));
        assert_eq!(bare, wrapped);
    }

    #[test]
    fn saturated_plan_faults_the_first_delivery_with_a_typed_error() {
        let plan = FaultPlan::new(7, 1_000_000, &[FaultKind::Corrupt]);
        let cfg = CliqueConfig::unicast(4, 8);
        let nodes = (0..4)
            .map(|_| Mixed {
                done: false,
                digest: 0,
            })
            .collect();
        let mut engine = RoundEngine::new(cfg, nodes);
        engine.set_transport(Box::new(FaultyTransport::with_default_inner(plan)));
        let err = engine.run(4).unwrap_err();
        match err {
            crate::model::SimError::TransportFault {
                round,
                sender: _,
                receiver: _,
                kind,
            } => {
                assert_eq!(round, 0, "the first exchanging round faults");
                assert_eq!(kind, FaultKind::Corrupt);
            }
            other => panic!("expected a transport fault, got {other:?}"),
        }
    }

    #[test]
    fn phase_engine_surfaces_injected_faults() {
        let plan = FaultPlan::new(11, 1_000_000, &[FaultKind::Drop]);
        let n = 5;
        let mut engine = PhaseEngine::new(CliqueConfig::unicast(n, 2));
        engine.set_transport(Box::new(FaultyTransport::with_default_inner(plan)));
        let outs: Vec<PhaseOutbox> = (0..n)
            .map(|i| {
                let mut out = PhaseOutbox::new();
                out.broadcast(BitString::from_bits(i as u64, 4));
                out
            })
            .collect();
        let err = engine.exchange("chaos", outs).unwrap_err();
        assert!(matches!(
            err,
            crate::model::SimError::TransportFault {
                kind: FaultKind::Drop,
                receiver: None,
                ..
            }
        ));
    }

    #[test]
    fn channel_disconnect_is_a_typed_fault_not_a_panic() {
        // Wire a transport whose receiving endpoint is already gone, as a
        // real socket backend could observe mid-run.
        let (tx, rx) = mpsc::channel();
        drop(rx);
        let mut transport = ChannelTransport {
            tx,
            rx: mpsc::channel().1,
        };
        let config = CliqueConfig::unicast(3, 8);
        let mut outbox = Outbox::new();
        outbox.send(NodeId::new(1), BitString::from_bits(1, 1));
        let mut inboxes: Vec<Inbox> = (0..3).map(|_| Inbox::empty(3)).collect();
        let fault = transport
            .deliver_round(&config, NodeId::new(0), &mut outbox, &mut inboxes)
            .unwrap_err();
        assert_eq!(fault.kind, FaultKind::Disconnect);
        assert_eq!(fault.sender, NodeId::new(0));
        assert_eq!(fault.receiver, Some(NodeId::new(1)));
    }

    #[test]
    fn channel_broadcasts_respect_topology() {
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let mut engine = PhaseEngine::new(CliqueConfig::congest(3, 8, adj));
        engine.set_transport(Box::new(ChannelTransport::new()));
        let mut out = PhaseOutbox::new();
        out.broadcast(BitString::from_bits(5, 3));
        let outs = vec![out, PhaseOutbox::new(), PhaseOutbox::new()];
        let inboxes = engine.exchange("local bcast", outs).unwrap();
        assert!(inboxes[1].broadcast_from(NodeId::new(0)).is_some());
        assert!(inboxes[2].broadcast_from(NodeId::new(0)).is_none());
    }
}
