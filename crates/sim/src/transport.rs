//! Pluggable message-delivery backends for both engines.
//!
//! A [`Transport`] moves validated payloads from a sender's outbox into the
//! receivers' inboxes — nothing else. All round/bit accounting is computed
//! by the engines *before* delivery, from the outbox contents alone, so a
//! transport physically cannot change the ledger; and because both engines
//! call [`Transport::deliver_round`] / [`Transport::deliver_phase`] once
//! per sender in ascending [`NodeId`] order, delivery order (and therefore
//! the transcript every node observes) is fixed by the engine, not the
//! backend. This is the serving-layer invariant: **the transport never
//! changes transcripts** — swapping backends trades mechanics (zero-copy
//! sharing vs. ownership transfer), never results.
//!
//! Two backends ship with the simulator:
//!
//! * [`InMemoryTransport`] — the default: unicasts are moved into the
//!   receiving inbox, broadcasts are [`Arc`]-shared (one allocation per
//!   broadcast, a pointer clone per receiver). This is byte-for-byte the
//!   delivery path the engines used before the trait existed.
//! * [`ChannelTransport`] — every payload crosses an [`mpsc`] channel and
//!   broadcasts are deep-copied per receiver, modelling socket-style
//!   ownership transfer (the sender's buffer is gone once sent, each
//!   receiver owns its bytes). Useful as a cross-check that no protocol
//!   accidentally depends on broadcast aliasing.
//!
//! The process default is [`TransportKind::InMemory`]; it can be overridden
//! with [`set_default_kind`] or the `CLIQUE_TRANSPORT` environment variable
//! (`memory` or `channel`), mirroring the `CLIQUE_THREADS` worker knob — CI
//! runs the regression pins under both values to enforce the invariant.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

use crate::bits::BitString;
use crate::model::CliqueConfig;
use crate::node::{Inbox, NodeId, Outbox};
use crate::phase::{PhaseInbox, PhaseOutbox};

/// A message-delivery backend.
///
/// Implementations deliver one sender's validated outbox into the inbox
/// array; the engines call this once per sender in ascending [`NodeId`]
/// order and have already charged the ledger, so a conforming transport
/// must deliver exactly the submitted payloads to exactly the addressed
/// receivers (broadcasts to every neighbour of `sender`) and may differ
/// only in *how* the bytes travel.
pub trait Transport: fmt::Debug + Send {
    /// A short stable identifier (e.g. for reports): `"memory"`, `"channel"`.
    fn name(&self) -> &'static str;

    /// Delivers one strict-round outbox: each unicast into its
    /// destination's slot for `sender`, the broadcast (if any) to every
    /// neighbour of `sender`. The outbox is drained.
    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    );

    /// Delivers one phase outbox: the broadcast (if any) to every neighbour,
    /// unicasts appended to the destination's per-sender aggregate in
    /// submission order.
    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    );

    /// Clones the backend for a nested engine (fresh delivery state, same
    /// mechanics); this is what makes `Box<dyn Transport>` fields of the
    /// `Clone` engine types work.
    fn clone_box(&self) -> Box<dyn Transport>;
}

impl Clone for Box<dyn Transport> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The default zero-copy backend: unicasts move, broadcasts are
/// [`Arc`]-shared across receivers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InMemoryTransport;

impl Transport for InMemoryTransport {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    ) {
        for (dst, msg) in outbox.unicasts.drain(..) {
            inboxes[dst.index()].insert_owned(sender, msg);
        }
        if let Some(msg) = outbox.broadcast.take() {
            // One shared allocation per broadcast, a pointer clone per
            // receiver.
            let shared = Arc::new(msg);
            for dst in config.topology.neighbors(sender, config.n) {
                inboxes[dst.index()].insert_shared(sender, Arc::clone(&shared));
            }
        }
    }

    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    ) {
        let (broadcast, unicasts) = outbox.into_parts();
        if let Some(msg) = broadcast {
            let shared = Arc::new(msg);
            for dst in config.topology.neighbors(sender, config.n) {
                inboxes[dst.index()].deliver_broadcast(sender, Arc::clone(&shared));
            }
        }
        for (dst, msg) in unicasts {
            inboxes[dst.index()].deliver_unicast(sender, msg);
        }
    }

    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(*self)
    }
}

/// One payload in flight inside a [`ChannelTransport`].
#[derive(Debug)]
enum Wire {
    Unicast { dst: NodeId, payload: BitString },
    Broadcast { dst: NodeId, payload: BitString },
}

/// A backend that moves every payload through an [`mpsc`] channel,
/// modelling socket-style ownership transfer: the sender's buffer is
/// consumed by the send, broadcasts are deep-copied once per receiver, and
/// each receiver ends up owning its bytes (no [`Arc`] aliasing across
/// inboxes). Delivery is FIFO per sender, so the resulting inboxes are
/// byte-identical to [`InMemoryTransport`]'s.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: mpsc::Sender<Wire>,
    rx: mpsc::Receiver<Wire>,
}

impl ChannelTransport {
    /// Creates a backend with a fresh channel.
    pub fn new() -> Self {
        let (tx, rx) = mpsc::channel();
        Self { tx, rx }
    }

    fn send(&self, wire: Wire) {
        // The receiving half lives in `self`, so the channel cannot be
        // disconnected.
        self.tx.send(wire).expect("transport channel disconnected");
    }
}

impl Default for ChannelTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn deliver_round(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: &mut Outbox,
        inboxes: &mut [Inbox],
    ) {
        for (dst, msg) in outbox.unicasts.drain(..) {
            self.send(Wire::Unicast { dst, payload: msg });
        }
        if let Some(msg) = outbox.broadcast.take() {
            for dst in config.topology.neighbors(sender, config.n) {
                self.send(Wire::Broadcast {
                    dst,
                    payload: msg.clone(),
                });
            }
        }
        while let Ok(wire) = self.rx.try_recv() {
            match wire {
                // Both kinds arrive as owned bytes: ownership was
                // transferred through the channel.
                Wire::Unicast { dst, payload } | Wire::Broadcast { dst, payload } => {
                    inboxes[dst.index()].insert_owned(sender, payload);
                }
            }
        }
    }

    fn deliver_phase(
        &mut self,
        config: &CliqueConfig,
        sender: NodeId,
        outbox: PhaseOutbox,
        inboxes: &mut [PhaseInbox],
    ) {
        let (broadcast, unicasts) = outbox.into_parts();
        if let Some(msg) = broadcast {
            for dst in config.topology.neighbors(sender, config.n) {
                self.send(Wire::Broadcast {
                    dst,
                    payload: msg.clone(),
                });
            }
        }
        for (dst, msg) in unicasts {
            self.send(Wire::Unicast { dst, payload: msg });
        }
        while let Ok(wire) = self.rx.try_recv() {
            match wire {
                Wire::Broadcast { dst, payload } => {
                    inboxes[dst.index()].deliver_broadcast(sender, Arc::new(payload));
                }
                Wire::Unicast { dst, payload } => {
                    inboxes[dst.index()].deliver_unicast(sender, payload);
                }
            }
        }
    }

    /// A fresh channel: delivery state is transient (drained within each
    /// call), so a clone shares nothing with the original.
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(Self::new())
    }
}

/// The shipped backends, for knobs and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// [`InMemoryTransport`] — the zero-copy default.
    InMemory,
    /// [`ChannelTransport`] — mpsc-based ownership transfer.
    Channel,
}

impl TransportKind {
    /// Instantiates the backend.
    pub fn create(self) -> Box<dyn Transport> {
        match self {
            TransportKind::InMemory => Box::new(InMemoryTransport),
            TransportKind::Channel => Box::new(ChannelTransport::new()),
        }
    }

    /// Parses a knob value (`"memory"` / `"channel"`, as accepted by
    /// `CLIQUE_TRANSPORT`).
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "memory" | "in-memory" | "inmemory" => Some(TransportKind::InMemory),
            "channel" | "mpsc" => Some(TransportKind::Channel),
            _ => None,
        }
    }

    /// The stable identifier ([`Transport::name`]) of this backend.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InMemory => "memory",
            TransportKind::Channel => "channel",
        }
    }
}

/// Process-wide default-transport override; 0 = not set.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets (or with `None` clears) the process-wide default transport that
/// newly created engines use; per-engine `set_transport` overrides it.
pub fn set_default_kind(kind: Option<TransportKind>) {
    let value = match kind {
        None => 0,
        Some(TransportKind::InMemory) => 1,
        Some(TransportKind::Channel) => 2,
    };
    OVERRIDE.store(value, Ordering::Relaxed);
}

/// The backend newly created engines default to: the [`set_default_kind`]
/// override if set, else `CLIQUE_TRANSPORT` if it parses (cached after the
/// first read), else [`TransportKind::InMemory`].
pub fn default_kind() -> TransportKind {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => return TransportKind::InMemory,
        2 => return TransportKind::Channel,
        _ => {}
    }
    static DEFAULT: OnceLock<TransportKind> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CLIQUE_TRANSPORT")
            .ok()
            .and_then(|value| TransportKind::parse(&value))
            // An unparsable CLIQUE_TRANSPORT falls through to the in-memory
            // default rather than aborting library users, matching
            // CLIQUE_THREADS.
            .unwrap_or(TransportKind::InMemory)
    })
}

/// Instantiates the current default backend (see [`default_kind`]).
pub fn default_transport() -> Box<dyn Transport> {
    default_kind().create()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoundEngine;
    use crate::model::AdjacencyTopology;
    use crate::node::{NodeAlgorithm, NodeCtx};
    use crate::phase::PhaseEngine;

    #[test]
    fn kind_parsing_and_names() {
        assert_eq!(
            TransportKind::parse("memory"),
            Some(TransportKind::InMemory)
        );
        assert_eq!(
            TransportKind::parse(" Channel "),
            Some(TransportKind::Channel)
        );
        assert_eq!(TransportKind::parse("mpsc"), Some(TransportKind::Channel));
        assert_eq!(TransportKind::parse("tcp"), None);
        assert_eq!(TransportKind::InMemory.name(), "memory");
        assert_eq!(TransportKind::Channel.create().name(), "channel");
    }

    #[test]
    fn default_kind_override_round_trips() {
        set_default_kind(Some(TransportKind::Channel));
        assert_eq!(default_kind(), TransportKind::Channel);
        set_default_kind(Some(TransportKind::InMemory));
        assert_eq!(default_kind(), TransportKind::InMemory);
        set_default_kind(None);
        // Without an override the cached env/default value applies; either
        // way it must be stable across calls.
        assert_eq!(default_kind(), default_kind());
    }

    /// Mixed round traffic: everyone broadcasts, node 0 also unicasts (in
    /// unicast mode a broadcast and a unicast to the same destination
    /// overwrite deterministically).
    struct Mixed {
        done: bool,
        digest: u64,
    }

    impl NodeAlgorithm for Mixed {
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &crate::node::Inbox, outbox: &mut Outbox) {
            if ctx.round == 0 {
                outbox.broadcast(BitString::from_bits(ctx.id.index() as u64, 3));
                if ctx.id.index() == 0 && ctx.n() > 1 {
                    outbox.send(NodeId::new(1), BitString::from_bits(0b101, 3));
                }
            } else {
                for (sender, msg) in inbox.iter() {
                    self.digest = self
                        .digest
                        .wrapping_mul(31)
                        .wrapping_add(sender.index() as u64)
                        .wrapping_add(msg.reader().read_bits(msg.len().min(8)).unwrap_or(0));
                }
                self.done = true;
            }
        }

        fn halted(&self) -> bool {
            self.done
        }
    }

    fn round_run(transport: Box<dyn Transport>) -> (crate::metrics::Metrics, Vec<u64>) {
        let cfg = CliqueConfig::unicast(6, 8);
        let nodes = (0..6)
            .map(|_| Mixed {
                done: false,
                digest: 0,
            })
            .collect();
        let mut engine = RoundEngine::new(cfg, nodes);
        engine.set_transport(transport);
        engine.run(4).unwrap();
        let digests = engine.nodes().iter().map(|n| n.digest).collect();
        (engine.metrics().clone(), digests)
    }

    #[test]
    fn round_transcripts_identical_across_backends() {
        let memory = round_run(Box::new(InMemoryTransport));
        let channel = round_run(Box::new(ChannelTransport::new()));
        assert_eq!(memory, channel);
    }

    fn phase_run(transport: Box<dyn Transport>) -> (crate::metrics::Metrics, Vec<Vec<u8>>) {
        let n = 5;
        let mut engine = PhaseEngine::new(CliqueConfig::unicast(n, 2));
        engine.set_transport(transport);
        let outs: Vec<PhaseOutbox> = (0..n)
            .map(|i| {
                let mut out = PhaseOutbox::new();
                out.broadcast(BitString::from_bits(i as u64, 4));
                out.send(NodeId::new((i + 1) % n), BitString::from_bits(1, 3));
                out.send(NodeId::new((i + 1) % n), BitString::from_bits(2, 2));
                out
            })
            .collect();
        let inboxes = engine.exchange("mixed", outs).unwrap();
        let digests = inboxes
            .iter()
            .map(|inbox| {
                let mut bytes = Vec::new();
                for (sender, msg) in inbox.broadcasts() {
                    bytes.push(sender.index() as u8);
                    bytes.push(msg.len() as u8);
                }
                for (sender, msg) in inbox.unicasts() {
                    bytes.push(0x80 | sender.index() as u8);
                    bytes.push(msg.len() as u8);
                }
                bytes
            })
            .collect();
        (engine.metrics().clone(), digests)
    }

    #[test]
    fn phase_transcripts_identical_across_backends() {
        let memory = phase_run(Box::new(InMemoryTransport));
        let channel = phase_run(Box::new(ChannelTransport::new()));
        assert_eq!(memory, channel);
    }

    #[test]
    fn channel_broadcasts_respect_topology() {
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let mut engine = PhaseEngine::new(CliqueConfig::congest(3, 8, adj));
        engine.set_transport(Box::new(ChannelTransport::new()));
        let mut out = PhaseOutbox::new();
        out.broadcast(BitString::from_bits(5, 3));
        let outs = vec![out, PhaseOutbox::new(), PhaseOutbox::new()];
        let inboxes = engine.exchange("local bcast", outs).unwrap();
        assert!(inboxes[1].broadcast_from(NodeId::new(0)).is_some());
        assert!(inboxes[2].broadcast_from(NodeId::new(0)).is_none());
    }
}
