//! Player identities and the per-round interface implemented by node
//! algorithms for the low-level round engine.

use std::fmt;
use std::sync::Arc;

use crate::arena::{ArenaStats, BufferArena};
use crate::bits::BitString;
use crate::model::{CliqueConfig, CommMode};

/// Identifier of a player (node) in the model, in `0..n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps an index as a node id.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Read-only per-node view of the model handed to [`NodeAlgorithm`] callbacks.
#[derive(Clone, Debug)]
pub struct NodeCtx<'a> {
    /// This node's identity.
    pub id: NodeId,
    /// Current round number, starting at 0.
    pub round: u64,
    /// The model configuration shared by all nodes.
    pub config: &'a CliqueConfig,
}

impl NodeCtx<'_> {
    /// Number of players.
    pub fn n(&self) -> usize {
        self.config.n
    }

    /// Link bandwidth in bits.
    pub fn bandwidth(&self) -> usize {
        self.config.bandwidth
    }
}

/// A delivered payload: unicasts are moved in and owned by the receiving
/// inbox (no extra allocation), broadcasts are [`Arc`]-shared across all
/// receivers (a pointer clone per receiver instead of the message bits).
#[derive(Clone, Debug)]
enum Payload {
    Owned(BitString),
    Shared(Arc<BitString>),
}

impl Payload {
    fn bits(&self) -> &BitString {
        match self {
            Payload::Owned(bits) => bits,
            Payload::Shared(bits) => bits,
        }
    }
}

/// Messages received by one node in one round, indexed by sender.
#[derive(Clone, Debug, Default)]
pub struct Inbox {
    messages: Vec<Option<Payload>>,
    occupied: usize,
}

impl Inbox {
    /// Creates an empty inbox for a model with `n` players.
    pub fn empty(n: usize) -> Self {
        Self {
            messages: vec![None; n],
            occupied: 0,
        }
    }

    /// Delivers a unicast payload, moving it into the slot.
    pub(crate) fn insert_owned(&mut self, sender: NodeId, message: BitString) {
        self.insert(sender, Payload::Owned(message));
    }

    /// Delivers one receiver's share of a broadcast payload.
    pub(crate) fn insert_shared(&mut self, sender: NodeId, message: Arc<BitString>) {
        self.insert(sender, Payload::Shared(message));
    }

    fn insert(&mut self, sender: NodeId, message: Payload) {
        let slot = &mut self.messages[sender.index()];
        if slot.is_none() {
            self.occupied += 1;
        }
        *slot = Some(message);
    }

    /// Empties the inbox, returning the backing storage of consumed
    /// payloads to `arena` for reuse. Owned (unicast) payloads are always
    /// reclaimed; a shared (broadcast) payload is reclaimed by whichever
    /// inbox drops the last [`Arc`] reference.
    pub(crate) fn recycle_into(&mut self, arena: &mut BufferArena) {
        if self.occupied == 0 {
            return;
        }
        for slot in &mut self.messages {
            match slot.take() {
                Some(Payload::Owned(bits)) => arena.recycle(bits),
                Some(Payload::Shared(shared)) => {
                    if let Ok(bits) = Arc::try_unwrap(shared) {
                        arena.recycle(bits);
                    }
                }
                None => {}
            }
        }
        self.occupied = 0;
    }

    /// The message received from `sender` this round, if any.
    pub fn from(&self, sender: NodeId) -> Option<&BitString> {
        self.messages
            .get(sender.index())
            .and_then(|m| m.as_ref().map(Payload::bits))
    }

    /// Iterates over `(sender, message)` pairs in increasing sender order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &BitString)> {
        self.messages
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (NodeId::new(i), m.bits())))
    }

    /// Number of messages received (tracked, so this is `O(1)`).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Returns `true` if nothing was received.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

/// Messages submitted by one node in one round.
///
/// In a unicast model each destination may receive at most one message per
/// round; in a broadcast model only [`Outbox::broadcast`] may be used. The
/// engine validates these rules and the bandwidth bound when the round is
/// executed.
#[derive(Clone, Debug, Default)]
pub struct Outbox {
    pub(crate) unicasts: Vec<(NodeId, BitString)>,
    pub(crate) broadcast: Option<BitString>,
    /// Recycled payload backings, refilled by the engine from consumed
    /// inbox messages between rounds (see [`Outbox::payload`]).
    arena: BufferArena,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty [`BitString`] to build a payload in, reusing the
    /// backing storage of a previously delivered message when one is
    /// pooled. Purely an allocation optimisation — a payload built here is
    /// indistinguishable from a freshly constructed one, so transcripts
    /// never depend on whether nodes opt in.
    pub fn payload(&mut self) -> BitString {
        self.arena.acquire()
    }

    /// Moves a recycled backing into this outbox's pool (engine-side
    /// refill between rounds).
    pub(crate) fn stash_backing(&mut self, backing: Vec<crate::lane::DefaultLane>) {
        self.arena.recycle_backing(backing);
    }

    /// Reuse counters of this outbox's payload pool.
    pub(crate) fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Queues a unicast message to `dst`.
    pub fn send(&mut self, dst: NodeId, message: BitString) {
        self.unicasts.push((dst, message));
    }

    /// Queues a broadcast message to all neighbours.
    ///
    /// Calling this more than once in a round replaces the previous payload.
    pub fn broadcast(&mut self, message: BitString) {
        self.broadcast = Some(message);
    }

    /// Returns `true` if nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.unicasts.is_empty() && self.broadcast.is_none()
    }

    /// Empties the outbox while keeping its allocation for reuse.
    pub(crate) fn clear(&mut self) {
        self.unicasts.clear();
        self.broadcast = None;
    }

    /// Total number of payload bits queued (counting a broadcast once).
    pub fn queued_bits(&self) -> usize {
        self.unicasts.iter().map(|(_, m)| m.len()).sum::<usize>()
            + self.broadcast.as_ref().map_or(0, BitString::len)
    }
}

/// The behaviour of a single player, invoked once per round by the
/// [`RoundEngine`](crate::engine::RoundEngine).
///
/// Implementations hold the node's local state (including its share of the
/// input). All players typically run the same algorithm type with different
/// state, so the engine is generic over `A: NodeAlgorithm` and owns a
/// `Vec<A>` with one element per player.
///
/// `Send` is a supertrait because the engine may step disjoint groups of
/// players on worker threads (see [`par`](crate::par)); node state moves
/// between threads across rounds but is only ever touched by one thread at
/// a time, and the NodeId-ordered outbox merge keeps transcripts identical
/// at every worker count.
pub trait NodeAlgorithm: Send {
    /// Called once before round 0, e.g. to queue initial computations.
    fn begin(&mut self, _ctx: &NodeCtx<'_>) {}

    /// Executes one round: read this round's `inbox`, update local state and
    /// queue next-round messages into `outbox`.
    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &Inbox, outbox: &mut Outbox);

    /// Returns `true` once this node has terminated. The engine stops when
    /// every node has halted and no messages are in flight.
    fn halted(&self) -> bool {
        false
    }
}

/// Validates an outbox against the model rules, returning the number of
/// payload bits it will place on the network.
///
/// `seen` is caller-provided scratch (reset here), so per-round validation
/// does not allocate.
pub(crate) fn validate_outbox(
    sender: NodeId,
    outbox: &Outbox,
    config: &CliqueConfig,
    strict_bandwidth: bool,
    seen: &mut Vec<bool>,
) -> Result<u64, crate::model::SimError> {
    use crate::model::SimError;

    let n = config.n;
    if config.mode == CommMode::Broadcast && !outbox.unicasts.is_empty() {
        return Err(SimError::UnicastInBroadcastModel { sender });
    }
    seen.clear();
    seen.resize(n, false);
    let mut bits_on_network = 0u64;
    for (dst, msg) in &outbox.unicasts {
        if dst.index() >= n {
            return Err(SimError::InvalidNode { node: *dst, n });
        }
        if *dst == sender {
            return Err(SimError::SelfMessage { node: sender });
        }
        if seen[dst.index()] {
            return Err(SimError::DuplicateMessage {
                sender,
                receiver: *dst,
            });
        }
        seen[dst.index()] = true;
        if !config.topology.connected(sender, *dst) {
            return Err(SimError::NotAnEdge {
                sender,
                receiver: *dst,
            });
        }
        if strict_bandwidth && msg.len() > config.bandwidth {
            return Err(SimError::BandwidthExceeded {
                sender,
                receiver: Some(*dst),
                bits: msg.len(),
                bandwidth: config.bandwidth,
            });
        }
        bits_on_network += msg.len() as u64;
    }
    if let Some(msg) = &outbox.broadcast {
        if strict_bandwidth && msg.len() > config.bandwidth {
            return Err(SimError::BandwidthExceeded {
                sender,
                receiver: None,
                bits: msg.len(),
                bandwidth: config.bandwidth,
            });
        }
        // In the blackboard (broadcast) model a message is written once; in a
        // unicast model a broadcast occupies every outgoing link.
        bits_on_network += match config.mode {
            CommMode::Broadcast => msg.len() as u64,
            CommMode::Unicast => {
                msg.len() as u64 * config.topology.neighbors(sender, n).len() as u64
            }
        };
    }
    Ok(bits_on_network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimError;

    fn validate(
        sender: NodeId,
        outbox: &Outbox,
        config: &CliqueConfig,
        strict: bool,
    ) -> Result<u64, SimError> {
        validate_outbox(sender, outbox, config, strict, &mut Vec::new())
    }

    #[test]
    fn node_id_conversions() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(NodeId::from(7usize), id);
        assert_eq!(id.to_string(), "v7");
    }

    #[test]
    fn inbox_insert_and_query() {
        let mut inbox = Inbox::empty(4);
        assert!(inbox.is_empty());
        inbox.insert_owned(NodeId::new(2), BitString::from_bits(3, 2));
        assert_eq!(inbox.len(), 1);
        assert!(inbox.from(NodeId::new(2)).is_some());
        assert!(inbox.from(NodeId::new(1)).is_none());
        let collected: Vec<_> = inbox.iter().map(|(s, _)| s.index()).collect();
        assert_eq!(collected, vec![2]);
        // Overwriting the same slot does not double-count, and shared
        // (broadcast) payloads read back like owned ones.
        inbox.insert_shared(NodeId::new(2), Arc::new(BitString::from_bits(1, 1)));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox.from(NodeId::new(2)).unwrap().len(), 1);
        let mut arena = BufferArena::new();
        inbox.recycle_into(&mut arena);
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
    }

    #[test]
    fn outbox_queueing() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId::new(1), BitString::from_bits(1, 1));
        out.broadcast(BitString::from_bits(3, 2));
        assert!(!out.is_empty());
        assert_eq!(out.queued_bits(), 3);
    }

    #[test]
    fn validate_rejects_unicast_in_broadcast_model() {
        let cfg = CliqueConfig::broadcast(4, 8);
        let mut out = Outbox::new();
        out.send(NodeId::new(1), BitString::from_bits(1, 1));
        let err = validate(NodeId::new(0), &out, &cfg, true).unwrap_err();
        assert!(matches!(err, SimError::UnicastInBroadcastModel { .. }));
    }

    #[test]
    fn validate_rejects_self_and_duplicate_and_invalid() {
        let cfg = CliqueConfig::unicast(4, 8);
        let mut out = Outbox::new();
        out.send(NodeId::new(0), BitString::new());
        assert!(matches!(
            validate(NodeId::new(0), &out, &cfg, true),
            Err(SimError::SelfMessage { .. })
        ));

        let mut out = Outbox::new();
        out.send(NodeId::new(1), BitString::new());
        out.send(NodeId::new(1), BitString::new());
        assert!(matches!(
            validate(NodeId::new(0), &out, &cfg, true),
            Err(SimError::DuplicateMessage { .. })
        ));

        let mut out = Outbox::new();
        out.send(NodeId::new(9), BitString::new());
        assert!(matches!(
            validate(NodeId::new(0), &out, &cfg, true),
            Err(SimError::InvalidNode { .. })
        ));
    }

    #[test]
    fn validate_bandwidth_strict_and_lenient() {
        let cfg = CliqueConfig::unicast(4, 2);
        let mut out = Outbox::new();
        out.send(NodeId::new(1), BitString::from_bits(7, 3));
        assert!(matches!(
            validate(NodeId::new(0), &out, &cfg, true),
            Err(SimError::BandwidthExceeded { .. })
        ));
        assert_eq!(validate(NodeId::new(0), &out, &cfg, false), Ok(3));
    }

    #[test]
    fn validate_counts_broadcast_bits_per_receiver() {
        let cfg = CliqueConfig::unicast(5, 8);
        let mut out = Outbox::new();
        out.broadcast(BitString::from_bits(0b101, 3));
        // 3 bits to each of the 4 neighbours.
        assert_eq!(validate(NodeId::new(0), &out, &cfg, true), Ok(12));
        // In the blackboard model the same message is only written once.
        let cfg_b = CliqueConfig::broadcast(5, 8);
        assert_eq!(validate(NodeId::new(0), &out, &cfg_b, true), Ok(3));
    }

    #[test]
    fn validate_respects_topology() {
        use crate::model::AdjacencyTopology;
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let cfg = CliqueConfig::congest(3, 4, adj);
        let mut out = Outbox::new();
        out.send(NodeId::new(2), BitString::from_bits(1, 1));
        assert!(matches!(
            validate(NodeId::new(0), &out, &cfg, true),
            Err(SimError::NotAnEdge { .. })
        ));
    }
}
