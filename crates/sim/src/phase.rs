//! The high-level bulk-synchronous phase engine.
//!
//! Most of the paper's algorithms are naturally described in *phases*: "every
//! node broadcasts an `O(k log n)`-bit message", "route this balanced demand",
//! "each player sends its `b`-bit summary to the owner of the heavy gate".
//! Writing these against the bit-strict [`RoundEngine`](crate::engine) would
//! force every algorithm to re-implement chunking of long messages into
//! `b`-bit pieces. [`PhaseEngine`] does this accounting centrally: a phase
//! delivers arbitrarily long logical messages and is charged
//! `ceil(max link load / b)` rounds, which is exactly the number of rounds the
//! chunked execution would take in the respective model.
//!
//! The engine never interprets payloads; information-flow discipline (a node
//! may only use what it has received) is the responsibility of the protocol
//! implementation, and the protocol implementations in `clique-core` are
//! structured so that per-node state is only updated from delivered inboxes.

use std::sync::Arc;

use crate::arena::{ArenaStats, BufferArena};
use crate::bits::BitString;
use crate::metrics::{Metrics, PhaseRecord};
use crate::model::{CliqueConfig, CommMode, SimError};
use crate::node::NodeId;
use crate::par;
use crate::transport::Transport;

/// Logical outgoing data of one node during one phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseOutbox {
    broadcast: Option<BitString>,
    unicasts: Vec<(NodeId, BitString)>,
}

impl PhaseOutbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the broadcast payload for this phase (replacing any previous one).
    pub fn broadcast(&mut self, message: BitString) {
        self.broadcast = Some(message);
    }

    /// Appends a unicast payload for `dst`; multiple sends to the same
    /// destination within a phase are concatenated in order.
    pub fn send(&mut self, dst: NodeId, message: BitString) {
        self.unicasts.push((dst, message));
    }

    /// Returns `true` if nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.broadcast.is_none() && self.unicasts.is_empty()
    }

    /// Decomposes the outbox for a [`Transport`](crate::transport::Transport)
    /// to deliver.
    pub(crate) fn into_parts(self) -> (Option<BitString>, Vec<(NodeId, BitString)>) {
        (self.broadcast, self.unicasts)
    }
}

/// Messages delivered to one node at the end of a phase.
///
/// Broadcast payloads are [`Arc`]-shared across the `n - 1` receiving
/// inboxes, so a phase delivers each broadcast by cloning a pointer per
/// receiver instead of the message bits.
#[derive(Clone, Debug, Default)]
pub struct PhaseInbox {
    broadcasts: Vec<Option<Arc<BitString>>>,
    unicasts: Vec<Option<BitString>>,
}

impl PhaseInbox {
    fn empty(n: usize) -> Self {
        Self {
            broadcasts: vec![None; n],
            unicasts: vec![None; n],
        }
    }

    /// Stores one receiver's share of `sender`'s broadcast (transports hand
    /// each receiver either a clone of one shared [`Arc`] or its own copy).
    pub(crate) fn deliver_broadcast(&mut self, sender: NodeId, payload: Arc<BitString>) {
        self.broadcasts[sender.index()] = Some(payload);
    }

    /// Appends a unicast payload from `sender`; multiple deliveries within
    /// a phase are concatenated in arrival order.
    pub(crate) fn deliver_unicast(&mut self, sender: NodeId, payload: BitString) {
        let slot = &mut self.unicasts[sender.index()];
        match slot {
            Some(existing) => existing.extend_from(&payload),
            None => *slot = Some(payload),
        }
    }

    /// The broadcast written by `sender` during the phase, if any.
    pub fn broadcast_from(&self, sender: NodeId) -> Option<&BitString> {
        self.broadcasts
            .get(sender.index())
            .and_then(|m| m.as_deref())
    }

    /// The (concatenated) unicast payload received from `sender`, if any.
    pub fn unicast_from(&self, sender: NodeId) -> Option<&BitString> {
        self.unicasts.get(sender.index()).and_then(|m| m.as_ref())
    }

    /// Iterates over `(sender, payload)` pairs of broadcasts received.
    pub fn broadcasts(&self) -> impl Iterator<Item = (NodeId, &BitString)> {
        self.broadcasts
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_deref().map(|m| (NodeId::new(i), m)))
    }

    /// Iterates over `(sender, payload)` pairs of unicasts received.
    pub fn unicasts(&self) -> impl Iterator<Item = (NodeId, &BitString)> {
        self.unicasts
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (NodeId::new(i), m)))
    }

    /// Empties the inbox, returning the backing storage of consumed
    /// payloads to `arena`. Unicast payloads are owned and always
    /// reclaimed; a broadcast payload is reclaimed by whichever inbox
    /// drops the last [`Arc`] reference.
    pub(crate) fn recycle_into(&mut self, arena: &mut BufferArena) {
        for slot in &mut self.broadcasts {
            if let Some(shared) = slot.take() {
                if let Ok(bits) = Arc::try_unwrap(shared) {
                    arena.recycle(bits);
                }
            }
        }
        for slot in &mut self.unicasts {
            if let Some(bits) = slot.take() {
                arena.recycle(bits);
            }
        }
    }

    /// Total number of payload bits received.
    pub fn received_bits(&self) -> usize {
        self.broadcasts
            .iter()
            .filter_map(|m| m.as_deref())
            .map(BitString::len)
            .sum::<usize>()
            + self
                .unicasts
                .iter()
                .filter_map(|m| m.as_ref())
                .map(BitString::len)
                .sum::<usize>()
    }
}

/// Bulk-synchronous executor with exact round accounting.
///
/// # Examples
///
/// ```
/// use clique_sim::prelude::*;
/// use clique_sim::phase::{PhaseEngine, PhaseOutbox};
///
/// # fn main() -> Result<(), clique_sim::model::SimError> {
/// // Four players, blackboard bandwidth 2 bits/round.
/// let mut engine = PhaseEngine::new(CliqueConfig::broadcast(4, 2));
///
/// // Every node broadcasts a 6-bit value: ceil(6 / 2) = 3 rounds.
/// let outs: Vec<PhaseOutbox> = (0..4)
///     .map(|i| {
///         let mut out = PhaseOutbox::new();
///         out.broadcast(BitString::from_bits(i as u64, 6));
///         out
///     })
///     .collect();
/// let inboxes = engine.exchange("announce", outs)?;
/// assert_eq!(engine.rounds(), 3);
/// assert_eq!(
///     inboxes[0].broadcast_from(NodeId::new(3)).unwrap().reader().read_bits(6),
///     Some(3)
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PhaseEngine {
    config: CliqueConfig,
    metrics: Metrics,
    /// Per-destination load scratch, reused across senders and phases on
    /// the single-worker path.
    dest_load: Vec<u64>,
    /// Per-engine worker-count override; `None` uses the default
    /// resolution (see [`par::workers`]).
    threads: Option<usize>,
    /// The message-delivery backend. Accounting (pass 1) never touches it,
    /// so the ledger is identical under every backend.
    transport: Box<dyn Transport>,
    /// Recycled payload backings (see [`Self::acquire_payload`] /
    /// [`Self::recycle_inboxes`]). Cloning an engine starts a cold arena.
    arena: BufferArena,
}

/// Validation and load accounting of one sender's phase outbox, computed
/// independently per sender (and therefore in parallel) and merged in
/// ascending [`NodeId`] order.
#[derive(Debug, Default)]
struct SenderSummary {
    /// Unicast model: the heaviest per-destination aggregated load this
    /// sender puts on any link. Broadcast model: its blackboard length.
    max_load: u64,
    /// Payload bits this sender places on the network.
    bits: u64,
    /// Non-empty messages this sender places on the network.
    messages: u64,
    /// The first model violation in this outbox, in submission order.
    error: Option<SimError>,
}

/// Computes one sender's [`SenderSummary`]. `dest_load` is caller-provided
/// scratch (reset here) sized to `config.n`.
fn summarize_outbox(
    config: &CliqueConfig,
    sender: NodeId,
    out: &PhaseOutbox,
    dest_load: &mut Vec<u64>,
) -> SenderSummary {
    let n = config.n;
    dest_load.clear();
    dest_load.resize(n, 0);
    let mut summary = SenderSummary::default();

    if let Some(msg) = &out.broadcast {
        let len = msg.len() as u64;
        match config.mode {
            CommMode::Broadcast => {
                summary.bits += len;
                summary.max_load = summary.max_load.max(len);
            }
            CommMode::Unicast => {
                // A broadcast in the unicast model occupies every outgoing
                // link.
                let receivers = config.topology.neighbors(sender, n);
                summary.bits += len * receivers.len() as u64;
                for dst in receivers {
                    dest_load[dst.index()] += len;
                }
            }
        }
        if len > 0 {
            summary.messages += 1;
        }
    }

    for (dst, msg) in &out.unicasts {
        let error = if config.mode == CommMode::Broadcast {
            Some(SimError::UnicastInBroadcastModel { sender })
        } else if dst.index() >= n {
            Some(SimError::InvalidNode { node: *dst, n })
        } else if *dst == sender {
            Some(SimError::SelfMessage { node: sender })
        } else if !config.topology.connected(sender, *dst) {
            Some(SimError::NotAnEdge {
                sender,
                receiver: *dst,
            })
        } else {
            None
        };
        if error.is_some() {
            summary.error = error;
            return summary;
        }
        let len = msg.len() as u64;
        dest_load[dst.index()] += len;
        summary.bits += len;
        if len > 0 {
            summary.messages += 1;
        }
    }

    if config.mode == CommMode::Unicast {
        if let Some(load) = dest_load.iter().copied().max() {
            summary.max_load = summary.max_load.max(load);
        }
    }
    summary
}

impl PhaseEngine {
    /// Creates a phase engine for the given model, using the process
    /// default transport (see
    /// [`transport::default_kind`](crate::transport::default_kind)).
    pub fn new(config: CliqueConfig) -> Self {
        Self {
            config,
            metrics: Metrics::new(),
            dest_load: Vec::new(),
            threads: None,
            transport: crate::transport::default_transport(),
            arena: BufferArena::new(),
        }
    }

    /// Replaces the message-delivery backend. Transports never change
    /// transcripts (see [`transport`](crate::transport)); the knob only
    /// swaps delivery mechanics.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.transport = transport;
    }

    /// The message-delivery backend in use.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Overrides the worker count used to validate and account phases in
    /// parallel (`None` restores the default resolution). The ledger, the
    /// delivered inboxes and error selection are identical at every worker
    /// count.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// The worker count the next phase will use: an explicit override
    /// (per-engine, else [`par::set_threads`]) is honored as given; the
    /// ambient default engages only from [`par::AMBIENT_MIN_ITEMS`]
    /// players up, so small simulations skip the per-phase spawn overhead.
    pub fn threads(&self) -> usize {
        par::workers(self.threads, self.config.n, par::AMBIENT_MIN_ITEMS)
    }

    /// Consumes the engine, returning the accumulated metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// The model configuration.
    pub fn config(&self) -> &CliqueConfig {
        &self.config
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Total bits charged so far.
    pub fn total_bits(&self) -> u64 {
        self.metrics.total_bits
    }

    /// Executes one phase: `outs[i]` is node `i`'s outgoing data.
    ///
    /// The phase is charged `ceil(L / b)` rounds where `L` is the maximum
    /// load of any link (unicast) or any node's blackboard message
    /// (broadcast). An all-silent phase is charged zero rounds.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnicastInBroadcastModel`] if a unicast payload is
    ///   submitted in a broadcast model.
    /// * [`SimError::InvalidNode`], [`SimError::SelfMessage`],
    ///   [`SimError::NotAnEdge`] for malformed destinations.
    /// * [`SimError::TransportFault`] if the transport loses or damages a
    ///   delivery (the phase is validated and charged before delivery, but
    ///   the engine state is not rolled back).
    ///
    /// # Panics
    ///
    /// Panics if `outs.len() != config.n`.
    pub fn exchange(
        &mut self,
        label: &str,
        outs: Vec<PhaseOutbox>,
    ) -> Result<Vec<PhaseInbox>, SimError> {
        let n = self.config.n;
        let b = self.config.bandwidth as u64;
        assert_eq!(outs.len(), n, "expected {} outboxes, got {}", n, outs.len());
        let workers = self.threads();

        // Pass 1 — validation and load accounting. Each sender's summary
        // depends only on its own outbox and the (shared, read-only) model
        // config, so the summaries are computed on the worker pool (with
        // one reusable `dest_load` scratch per worker); the merge below
        // walks them in ascending sender order, which keeps the ledger and
        // the selected error identical at every worker count.
        let summaries: Vec<SenderSummary> = if workers > 1 {
            let config = &self.config;
            par::map_with(n, workers, Vec::new, |i, dest_load| {
                summarize_outbox(config, NodeId::new(i), &outs[i], dest_load)
            })
        } else {
            let config = &self.config;
            let dest_load = &mut self.dest_load;
            outs.iter()
                .enumerate()
                .map(|(i, out)| summarize_outbox(config, NodeId::new(i), out, dest_load))
                .collect()
        };

        let mut max_load = 0u64;
        let mut total_bits = 0u64;
        let mut messages = 0u64;
        for summary in summaries {
            if let Some(error) = summary.error {
                return Err(error);
            }
            max_load = max_load.max(summary.max_load);
            total_bits += summary.bits;
            messages += summary.messages;
        }

        // Pass 2 — delivery through the transport, strictly in ascending
        // sender order. The ledger was fully computed in pass 1, so the
        // backend cannot affect the accounting; the default in-memory
        // backend moves payloads and Arc-shares broadcasts (one allocation
        // per broadcast, a pointer clone per receiver).
        let mut inboxes: Vec<PhaseInbox> = (0..n).map(|_| PhaseInbox::empty(n)).collect();
        for (i, out) in outs.into_iter().enumerate() {
            self.transport
                .deliver_phase(&self.config, NodeId::new(i), out, &mut inboxes)
                .map_err(|fault| fault.at_round(self.metrics.rounds))?;
        }

        let rounds = max_load.div_ceil(b);
        self.metrics.record_phase(PhaseRecord {
            label: label.to_owned().into(),
            rounds,
            bits: total_bits,
            messages,
            max_link_bits_per_round: max_load.min(b),
            strict_rounds: false,
        });
        Ok(inboxes)
    }

    /// Convenience wrapper for a pure broadcast phase: node `i` broadcasts
    /// `messages[i]`. Returns the per-node inboxes.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::exchange`].
    ///
    /// # Panics
    ///
    /// Panics if `messages.len() != config.n`.
    pub fn broadcast_all(
        &mut self,
        label: &str,
        messages: &[BitString],
    ) -> Result<Vec<PhaseInbox>, SimError> {
        let outs = messages
            .iter()
            .map(|m| {
                let mut out = PhaseOutbox::new();
                if !m.is_empty() {
                    // Copy into an arena buffer instead of `m.clone()`, so
                    // recycled backings (see `recycle_inboxes`) are reused.
                    let mut payload = self.arena.acquire();
                    payload.extend_from(m);
                    out.broadcast(payload);
                }
                out
            })
            .collect();
        self.exchange(label, outs)
    }

    /// Takes an empty payload buffer from the engine's arena, reusing the
    /// backing storage of a previously recycled message when one is pooled.
    /// Purely an allocation optimisation: a payload built in an arena
    /// buffer is indistinguishable from a freshly allocated one, so
    /// transcripts never depend on whether callers opt in.
    pub fn acquire_payload(&mut self) -> BitString {
        self.arena.acquire()
    }

    /// Returns the backing storage of fully consumed inboxes to the
    /// engine's arena, to be reused by [`Self::acquire_payload`] and
    /// [`Self::broadcast_all`]. Call this once a phase's inboxes have been
    /// read out and are no longer needed.
    pub fn recycle_inboxes(&mut self, mut inboxes: Vec<PhaseInbox>) {
        for inbox in &mut inboxes {
            inbox.recycle_into(&mut self.arena);
        }
    }

    /// Reuse counters of the engine's payload arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Charges additional rounds without moving data, e.g. to account for a
    /// black-box subroutine whose round cost is known analytically.
    pub fn charge_rounds(&mut self, label: &str, rounds: u64) {
        self.metrics.record_phase(PhaseRecord {
            label: label.to_owned().into(),
            rounds,
            bits: 0,
            messages: 0,
            max_link_bits_per_round: 0,
            strict_rounds: false,
        });
    }

    /// Merges the metrics of a nested execution into this engine.
    pub fn absorb_metrics(&mut self, other: &Metrics) {
        self.metrics.absorb(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broadcast_out(value: u64, width: usize) -> PhaseOutbox {
        let mut out = PhaseOutbox::new();
        out.broadcast(BitString::from_bits(value, width));
        out
    }

    #[test]
    fn broadcast_phase_round_accounting() {
        let mut engine = PhaseEngine::new(CliqueConfig::broadcast(3, 4));
        let outs = vec![
            broadcast_out(1, 10),
            broadcast_out(2, 3),
            PhaseOutbox::new(),
        ];
        let inboxes = engine.exchange("test", outs).unwrap();
        // Longest blackboard message is 10 bits, bandwidth 4 => 3 rounds.
        assert_eq!(engine.rounds(), 3);
        // Blackboard bits: 10 + 3.
        assert_eq!(engine.total_bits(), 13);
        assert_eq!(
            inboxes[2]
                .broadcast_from(NodeId::new(0))
                .unwrap()
                .reader()
                .read_bits(10),
            Some(1)
        );
        assert!(inboxes[0].broadcast_from(NodeId::new(2)).is_none());
        // A node does not receive its own broadcast.
        assert!(inboxes[0].broadcast_from(NodeId::new(0)).is_none());
    }

    #[test]
    fn silent_phase_costs_nothing() {
        let mut engine = PhaseEngine::new(CliqueConfig::broadcast(2, 1));
        let outs = vec![PhaseOutbox::new(), PhaseOutbox::new()];
        engine.exchange("silent", outs).unwrap();
        assert_eq!(engine.rounds(), 0);
        assert_eq!(engine.total_bits(), 0);
    }

    #[test]
    fn unicast_phase_aggregates_per_destination() {
        let mut engine = PhaseEngine::new(CliqueConfig::unicast(4, 2));
        let mut out0 = PhaseOutbox::new();
        out0.send(NodeId::new(1), BitString::from_bits(0b11, 2));
        out0.send(NodeId::new(1), BitString::from_bits(0b01, 2));
        out0.send(NodeId::new(2), BitString::from_bits(0b1, 1));
        let outs = vec![
            out0,
            PhaseOutbox::new(),
            PhaseOutbox::new(),
            PhaseOutbox::new(),
        ];
        let inboxes = engine.exchange("route", outs).unwrap();
        // Link 0->1 carries 4 bits, bandwidth 2 => 2 rounds.
        assert_eq!(engine.rounds(), 2);
        assert_eq!(engine.total_bits(), 5);
        let agg = inboxes[1].unicast_from(NodeId::new(0)).unwrap();
        assert_eq!(agg.len(), 4);
        let mut r = agg.reader();
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.read_bits(2), Some(0b01));
    }

    #[test]
    fn unicast_broadcast_counts_every_link() {
        let mut engine = PhaseEngine::new(CliqueConfig::unicast(5, 3));
        let outs = vec![
            broadcast_out(0b101, 3),
            PhaseOutbox::new(),
            PhaseOutbox::new(),
            PhaseOutbox::new(),
            PhaseOutbox::new(),
        ];
        engine.exchange("bcast-as-unicast", outs).unwrap();
        assert_eq!(engine.rounds(), 1);
        assert_eq!(engine.total_bits(), 3 * 4);
    }

    #[test]
    fn unicast_rejected_in_broadcast_model() {
        let mut engine = PhaseEngine::new(CliqueConfig::broadcast(3, 2));
        let mut out = PhaseOutbox::new();
        out.send(NodeId::new(1), BitString::from_bits(1, 1));
        let outs = vec![out, PhaseOutbox::new(), PhaseOutbox::new()];
        assert!(matches!(
            engine.exchange("bad", outs),
            Err(SimError::UnicastInBroadcastModel { .. })
        ));
    }

    #[test]
    fn congest_topology_enforced() {
        use crate::model::AdjacencyTopology;
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let mut engine = PhaseEngine::new(CliqueConfig::congest(3, 2, adj));
        let mut out = PhaseOutbox::new();
        out.send(NodeId::new(2), BitString::from_bits(1, 1));
        let outs = vec![out, PhaseOutbox::new(), PhaseOutbox::new()];
        assert!(matches!(
            engine.exchange("bad edge", outs),
            Err(SimError::NotAnEdge { .. })
        ));
    }

    #[test]
    fn congest_broadcast_reaches_only_neighbors() {
        use crate::model::AdjacencyTopology;
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let mut engine = PhaseEngine::new(CliqueConfig::congest(3, 8, adj));
        let outs = vec![broadcast_out(5, 3), PhaseOutbox::new(), PhaseOutbox::new()];
        let inboxes = engine.exchange("local bcast", outs).unwrap();
        assert!(inboxes[1].broadcast_from(NodeId::new(0)).is_some());
        assert!(inboxes[2].broadcast_from(NodeId::new(0)).is_none());
    }

    #[test]
    fn broadcast_all_and_charge_rounds() {
        let mut engine = PhaseEngine::new(CliqueConfig::broadcast(3, 1));
        let msgs = vec![
            BitString::from_bits(1, 1),
            BitString::new(),
            BitString::from_bits(0, 2),
        ];
        let inboxes = engine.broadcast_all("announce", &msgs).unwrap();
        assert_eq!(engine.rounds(), 2);
        assert!(inboxes[0].broadcast_from(NodeId::new(1)).is_none());
        engine.charge_rounds("black box", 7);
        assert_eq!(engine.rounds(), 9);
        assert_eq!(engine.metrics().phases.len(), 2);
    }

    #[test]
    fn received_bits_counts_everything() {
        let mut engine = PhaseEngine::new(CliqueConfig::unicast(3, 4));
        let mut out0 = PhaseOutbox::new();
        out0.broadcast(BitString::from_bits(1, 2));
        out0.send(NodeId::new(1), BitString::from_bits(3, 3));
        let outs = vec![out0, PhaseOutbox::new(), PhaseOutbox::new()];
        let inboxes = engine.exchange("mixed", outs).unwrap();
        assert_eq!(inboxes[1].received_bits(), 5);
        assert_eq!(inboxes[2].received_bits(), 2);
        assert_eq!(inboxes[1].unicasts().count(), 1);
        assert_eq!(inboxes[1].broadcasts().count(), 1);
    }

    #[test]
    #[should_panic(expected = "expected 3 outboxes")]
    fn wrong_outbox_count_panics() {
        let mut engine = PhaseEngine::new(CliqueConfig::broadcast(3, 1));
        let _ = engine.exchange("bad", vec![PhaseOutbox::new()]);
    }

    #[test]
    fn arena_recycling_reuses_buffers_and_never_changes_the_ledger() {
        let n = 3;
        let msgs: Vec<BitString> = (0..n)
            .map(|i| BitString::from_bits(i as u64 + 1, 9))
            .collect();
        let digest = |inboxes: &[PhaseInbox]| -> Vec<Vec<(usize, Vec<bool>)>> {
            inboxes
                .iter()
                .map(|inbox| {
                    inbox
                        .broadcasts()
                        .map(|(s, m)| (s.index(), m.to_bools()))
                        .collect()
                })
                .collect()
        };
        // Baseline: two phases, inboxes simply dropped.
        let mut plain = PhaseEngine::new(CliqueConfig::broadcast(n, 2));
        let first = digest(&plain.broadcast_all("p1", &msgs).unwrap());
        let second = digest(&plain.broadcast_all("p2", &msgs).unwrap());
        // Recycling path: inboxes handed back between phases.
        let mut recycled = PhaseEngine::new(CliqueConfig::broadcast(n, 2));
        let inboxes = recycled.broadcast_all("p1", &msgs).unwrap();
        assert_eq!(digest(&inboxes), first);
        recycled.recycle_inboxes(inboxes);
        let inboxes = recycled.broadcast_all("p2", &msgs).unwrap();
        assert_eq!(digest(&inboxes), second);
        assert_eq!(plain.metrics(), recycled.metrics());
        assert!(
            recycled.arena_stats().served_reused > 0,
            "expected recycled payload buffers, got {:?}",
            recycled.arena_stats()
        );
    }

    #[test]
    fn worker_count_never_changes_the_ledger() {
        let n = 9;
        let run = |threads: usize| {
            let mut engine = PhaseEngine::new(CliqueConfig::unicast(n, 2));
            engine.set_threads(Some(threads));
            let outs: Vec<PhaseOutbox> = (0..n)
                .map(|i| {
                    let mut out = PhaseOutbox::new();
                    out.broadcast(BitString::from_bits(i as u64, 4));
                    out.send(NodeId::new((i + 1) % n), BitString::from_bits(1, 3));
                    out.send(NodeId::new((i + 1) % n), BitString::from_bits(2, 2));
                    out
                })
                .collect();
            let inboxes = engine.exchange("mixed", outs).unwrap();
            let digest: Vec<(usize, usize)> = inboxes
                .iter()
                .map(|inbox| (inbox.received_bits(), inbox.unicasts().count()))
                .collect();
            (engine.metrics().clone(), digest)
        };
        let baseline = run(1);
        for threads in [2, 4, 16] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn worker_count_never_changes_error_selection() {
        // Sender 1 has a self-message *after* a valid unicast; sender 4 has
        // an invalid node. Serial order reports sender 1's error first.
        let build = || {
            let mut outs: Vec<PhaseOutbox> = (0..6).map(|_| PhaseOutbox::new()).collect();
            outs[1].send(NodeId::new(0), BitString::from_bits(1, 1));
            outs[1].send(NodeId::new(1), BitString::from_bits(1, 1));
            outs[4].send(NodeId::new(17), BitString::from_bits(1, 1));
            outs
        };
        for threads in [1usize, 2, 8] {
            let mut engine = PhaseEngine::new(CliqueConfig::unicast(6, 2));
            engine.set_threads(Some(threads));
            let err = engine.exchange("bad", build()).unwrap_err();
            assert_eq!(
                err,
                SimError::SelfMessage {
                    node: NodeId::new(1)
                },
                "threads={threads}"
            );
        }
    }
}
