//! The low-level, bit-strict round engine.
//!
//! [`RoundEngine`] runs one [`NodeAlgorithm`]
//! instance per player in synchronous rounds, enforcing the model rules
//! exactly: in each round a player may put at most `b` bits on each of its
//! links (unicast) or write a single message of at most `b` bits on the
//! blackboard (broadcast). It is the engine of record for round complexity
//! claims; the more convenient [`PhaseEngine`](crate::phase::PhaseEngine)
//! charges rounds with the same accounting but lets algorithms hand over
//! arbitrarily long logical messages.

use crate::arena::{ArenaStats, BufferArena};
use crate::metrics::{Metrics, RunReport};
use crate::model::{CliqueConfig, SimError};
use crate::node::{validate_outbox, Inbox, NodeAlgorithm, NodeCtx, NodeId, Outbox};
use crate::par;
use crate::transport::Transport;

/// Synchronous round-by-round executor for a homogeneous set of players.
///
/// # Examples
///
/// ```
/// use clique_sim::prelude::*;
///
/// /// Every node broadcasts its input bit; afterwards every node knows the OR.
/// struct OrNode {
///     input: bool,
///     result: Option<bool>,
/// }
///
/// impl NodeAlgorithm for OrNode {
///     fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &Inbox, outbox: &mut Outbox) {
///         if ctx.round == 0 {
///             outbox.broadcast(BitString::from_bits(self.input as u64, 1));
///         } else {
///             let mut any = self.input;
///             for (_, msg) in inbox.iter() {
///                 any |= msg.bit(0);
///             }
///             self.result = Some(any);
///         }
///     }
///     fn halted(&self) -> bool {
///         self.result.is_some()
///     }
/// }
///
/// # fn main() -> Result<(), clique_sim::model::SimError> {
/// let cfg = CliqueConfig::broadcast(4, 1);
/// let nodes = vec![false, true, false, false]
///     .into_iter()
///     .map(|input| OrNode { input, result: None })
///     .collect();
/// let mut engine = RoundEngine::new(cfg, nodes);
/// let report = engine.run(10)?;
/// assert!(report.completed);
/// assert!(engine.nodes().iter().all(|n| n.result == Some(true)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RoundEngine<A> {
    config: CliqueConfig,
    nodes: Vec<A>,
    metrics: Metrics,
    round: u64,
    started: bool,
    /// Messages delivered at the start of the next round, indexed by receiver.
    next_inboxes: Vec<Inbox>,
    /// Double buffer for `next_inboxes`: last round's (consumed) inboxes,
    /// cleared and reused instead of reallocating `n` inboxes per round.
    prev_inboxes: Vec<Inbox>,
    /// Per-node outbox scratch, cleared and reused every round.
    outboxes: Vec<Outbox>,
    /// Scratch for [`validate_outbox`]'s duplicate-destination check.
    seen: Vec<bool>,
    /// Backing storage reclaimed from consumed inbox payloads, redistributed
    /// to the per-node outbox pools between rounds (see [`Outbox::payload`]).
    arena: BufferArena,
    /// Per-engine worker-count override; `None` uses the default
    /// resolution (see [`par::workers`]).
    threads: Option<usize>,
    /// The message-delivery backend; accounting happens before delivery,
    /// so the ledger is identical under every backend.
    transport: Box<dyn Transport>,
}

impl<A: NodeAlgorithm> RoundEngine<A> {
    /// Creates an engine over `nodes`, one per player.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != config.n`.
    pub fn new(config: CliqueConfig, nodes: Vec<A>) -> Self {
        assert_eq!(
            nodes.len(),
            config.n,
            "expected {} node algorithms, got {}",
            config.n,
            nodes.len()
        );
        let n = config.n;
        Self {
            config,
            nodes,
            metrics: Metrics::new(),
            round: 0,
            started: false,
            next_inboxes: vec![Inbox::empty(n); n],
            prev_inboxes: vec![Inbox::empty(n); n],
            outboxes: vec![Outbox::new(); n],
            seen: Vec::with_capacity(n),
            arena: BufferArena::new(),
            threads: None,
            transport: crate::transport::default_transport(),
        }
    }

    /// Replaces the message-delivery backend. Transports never change
    /// transcripts (see [`transport`](crate::transport)); the knob only
    /// swaps delivery mechanics.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.transport = transport;
    }

    /// The message-delivery backend in use.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// The model configuration.
    pub fn config(&self) -> &CliqueConfig {
        &self.config
    }

    /// Overrides the worker count used to step node algorithms in parallel
    /// (`None` restores the default resolution). Transcripts, metrics and
    /// validation are identical at every worker count; the knob only
    /// trades wall-clock time.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// The worker count the next round will use: an explicit override
    /// (per-engine, else [`par::set_threads`]) is honored as given; the
    /// ambient default engages only from [`par::AMBIENT_MIN_ITEMS`]
    /// players up, so small simulations skip the per-round spawn overhead.
    pub fn threads(&self) -> usize {
        par::workers(self.threads, self.config.n, par::AMBIENT_MIN_ITEMS)
    }

    /// Read access to the node algorithms (e.g. to extract outputs).
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Mutable access to the node algorithms.
    pub fn nodes_mut(&mut self) -> &mut [A] {
        &mut self.nodes
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the engine, returning the node algorithms.
    pub fn into_nodes(self) -> Vec<A> {
        self.nodes
    }

    /// Executes a single round.
    ///
    /// Returns `true` if every node reports [`NodeAlgorithm::halted`] after
    /// the round and no messages remain in flight.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if any node violates the model rules
    /// (bandwidth, duplicate messages, topology, …). The engine state is not
    /// rolled back on error.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let n = self.config.n;
        let workers = self.threads();
        if !self.started {
            self.started = true;
            let config = &self.config;
            par::for_each_mut(&mut self.nodes, workers, |i, node| {
                let ctx = NodeCtx {
                    id: NodeId::new(i),
                    round: 0,
                    config,
                };
                node.begin(&ctx);
            });
        }

        // Double-buffer swap: `prev_inboxes` now holds this round's
        // deliveries; the buffer consumed last round is cleared in place and
        // becomes the delivery target, so no inbox vector is reallocated —
        // and a silent round touches nothing at all. Clearing also reclaims
        // the consumed payloads' backing storage into the engine arena,
        // which is then redistributed (serially, in fixed order) to the
        // per-node outbox pools so nodes can build this round's payloads
        // in recycled buffers via [`Outbox::payload`].
        std::mem::swap(&mut self.next_inboxes, &mut self.prev_inboxes);
        for inbox in &mut self.next_inboxes {
            inbox.recycle_into(&mut self.arena);
        }
        let mut next_pool = 0usize;
        while let Some(backing) = self.arena.take_backing() {
            self.outboxes[next_pool % n].stash_backing(backing);
            next_pool += 1;
        }

        // Collect outboxes into the per-node scratch. Each player's round is
        // independent of every other player's (it reads only its own inbox),
        // so the calls run on the worker pool; everything order-sensitive
        // below — validation, delivery, metrics — is merged in ascending
        // NodeId order afterwards, keeping transcripts bit-identical at any
        // worker count.
        {
            let config = &self.config;
            let round = self.round;
            let inboxes = &self.prev_inboxes;
            par::for_each_zip_mut(
                &mut self.nodes,
                &mut self.outboxes,
                workers,
                |i, node, outbox| {
                    let ctx = NodeCtx {
                        id: NodeId::new(i),
                        round,
                        config,
                    };
                    outbox.clear();
                    node.round(&ctx, &inboxes[i], outbox);
                },
            );
        }

        // Validate, account and deliver, strictly in ascending sender
        // order. The ledger is computed from the outbox *before* the
        // transport sees it, so no delivery backend can change what the
        // round charges.
        let mut bits = 0u64;
        let mut messages = 0u64;
        let mut max_link = 0u64;
        for i in 0..n {
            let sender = NodeId::new(i);
            let outbox = &mut self.outboxes[i];
            let sent = validate_outbox(sender, outbox, &self.config, true, &mut self.seen)?;
            bits += sent;
            for (_, msg) in &outbox.unicasts {
                max_link = max_link.max(msg.len() as u64);
                messages += 1;
            }
            if let Some(msg) = &outbox.broadcast {
                max_link = max_link.max(msg.len() as u64);
                messages += self.config.topology.degree(sender, n) as u64;
            }
            self.transport
                .deliver_round(&self.config, sender, outbox, &mut self.next_inboxes)
                .map_err(|fault| fault.at_round(self.round))?;
        }

        self.metrics.record_round(bits, messages, max_link);
        self.round += 1;

        Ok(self.nodes.iter().all(NodeAlgorithm::halted) && self.in_flight_empty())
    }

    /// Runs rounds until every node halts or `max_rounds` is reached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol does not
    /// terminate in time, or any model violation produced by [`Self::step`].
    pub fn run(&mut self, max_rounds: u64) -> Result<RunReport, SimError> {
        if self.nodes.iter().all(NodeAlgorithm::halted) && self.in_flight_empty() {
            return Ok(RunReport {
                metrics: self.metrics.clone(),
                completed: true,
            });
        }
        for _ in 0..max_rounds {
            if self.step()? {
                return Ok(RunReport {
                    metrics: self.metrics.clone(),
                    completed: true,
                });
            }
        }
        Err(SimError::RoundLimitExceeded { limit: max_rounds })
    }

    fn in_flight_empty(&self) -> bool {
        self.next_inboxes.iter().all(Inbox::is_empty)
    }

    /// Aggregated reuse counters of the per-node payload pools: how many
    /// [`Outbox::payload`] acquisitions were served from recycled backings
    /// versus fresh allocations.
    pub fn arena_stats(&self) -> ArenaStats {
        let mut total = self.arena.stats();
        for outbox in &self.outboxes {
            let s = outbox.arena_stats();
            total.served_fresh += s.served_fresh;
            total.served_reused += s.served_reused;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;

    /// Node that broadcasts its 1-bit input in round 0 and computes the parity
    /// of all inputs in round 1.
    struct ParityNode {
        input: bool,
        result: Option<bool>,
    }

    impl NodeAlgorithm for ParityNode {
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &Inbox, outbox: &mut Outbox) {
            match ctx.round {
                0 => outbox.broadcast(BitString::from_bits(u64::from(self.input), 1)),
                _ => {
                    let mut parity = self.input;
                    for (_, msg) in inbox.iter() {
                        parity ^= msg.bit(0);
                    }
                    self.result = Some(parity);
                }
            }
        }

        fn halted(&self) -> bool {
            self.result.is_some()
        }
    }

    #[test]
    fn broadcast_parity_two_rounds() {
        let inputs = [true, false, true, true, false];
        let cfg = CliqueConfig::broadcast(inputs.len(), 1);
        let nodes = inputs
            .iter()
            .map(|&input| ParityNode {
                input,
                result: None,
            })
            .collect();
        let mut engine = RoundEngine::new(cfg, nodes);
        let report = engine.run(5).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds(), 2);
        let expected = inputs.iter().filter(|&&b| b).count() % 2 == 1;
        for node in engine.nodes() {
            assert_eq!(node.result, Some(expected));
        }
        assert!(report.total_bits() >= inputs.len() as u64 - 1);
    }

    /// Node that tries to send more than the bandwidth.
    struct Greedy;

    impl NodeAlgorithm for Greedy {
        fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &Inbox, outbox: &mut Outbox) {
            if ctx.id.index() == 0 {
                outbox.send(NodeId::new(1), BitString::from_bits(0xFF, 8));
            }
        }
    }

    #[test]
    fn bandwidth_violation_detected() {
        let cfg = CliqueConfig::unicast(3, 4);
        let mut engine = RoundEngine::new(cfg, vec![Greedy, Greedy, Greedy]);
        let err = engine.step().unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
    }

    /// Node that never halts.
    struct Chatterbox;

    impl NodeAlgorithm for Chatterbox {
        fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &Inbox, outbox: &mut Outbox) {
            outbox.broadcast(BitString::from_bits(1, 1));
        }
    }

    #[test]
    fn round_limit_enforced() {
        let cfg = CliqueConfig::broadcast(2, 1);
        let mut engine = RoundEngine::new(cfg, vec![Chatterbox, Chatterbox]);
        let err = engine.run(3).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 3 });
        assert_eq!(engine.metrics().rounds, 3);
    }

    /// Relay along a path topology: node 0 forwards a token to node 1, which
    /// forwards it to node 2.
    struct Relay {
        token: Option<u64>,
        done: bool,
    }

    impl NodeAlgorithm for Relay {
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &Inbox, outbox: &mut Outbox) {
            let me = ctx.id.index();
            if me == 0 && ctx.round == 0 {
                outbox.send(NodeId::new(1), BitString::from_bits(self.token.unwrap(), 4));
                self.done = true;
                return;
            }
            if let Some(msg) = inbox.iter().next().map(|(_, m)| m.clone()) {
                let value = msg.reader().read_bits(4).unwrap();
                self.token = Some(value);
                if me + 1 < ctx.n() {
                    outbox.send(NodeId::new(me + 1), msg);
                }
                self.done = true;
            }
            if ctx.round >= 3 {
                self.done = true;
            }
        }

        fn halted(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn congest_topology_relay() {
        use crate::model::AdjacencyTopology;
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = CliqueConfig::congest(3, 4, adj);
        let nodes = vec![
            Relay {
                token: Some(9),
                done: false,
            },
            Relay {
                token: None,
                done: false,
            },
            Relay {
                token: None,
                done: false,
            },
        ];
        let mut engine = RoundEngine::new(cfg, nodes);
        let report = engine.run(10).unwrap();
        assert!(report.completed);
        assert_eq!(engine.nodes()[2].token, Some(9));
    }

    /// Nodes that are halted from the very beginning.
    struct Idle;

    impl NodeAlgorithm for Idle {
        fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &Inbox, _outbox: &mut Outbox) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn already_halted_protocol_uses_zero_rounds() {
        let cfg = CliqueConfig::unicast(2, 1);
        let mut engine = RoundEngine::new(cfg, vec![Idle, Idle]);
        let report = engine.run(5).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "expected 3 node algorithms")]
    fn node_count_mismatch_panics() {
        let cfg = CliqueConfig::broadcast(3, 1);
        let _ = RoundEngine::new(cfg, vec![Chatterbox, Chatterbox]);
    }

    /// Two nodes ping-pong a counter, building payloads either from the
    /// outbox arena or from fresh allocations.
    struct PingPong {
        use_arena: bool,
        remaining: u64,
    }

    impl NodeAlgorithm for PingPong {
        fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &Inbox, outbox: &mut Outbox) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let peer = NodeId::new(1 - ctx.id.index());
            let mut msg = if self.use_arena {
                outbox.payload()
            } else {
                BitString::new()
            };
            msg.push_bits(self.remaining, 8);
            outbox.send(peer, msg);
        }

        fn halted(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn arena_payloads_are_reused_and_never_change_the_transcript() {
        let run = |use_arena: bool| {
            let cfg = CliqueConfig::unicast(2, 8);
            let nodes = vec![
                PingPong {
                    use_arena,
                    remaining: 6,
                },
                PingPong {
                    use_arena,
                    remaining: 6,
                },
            ];
            let mut engine = RoundEngine::new(cfg, nodes);
            let report = engine.run(20).unwrap();
            (report, engine.metrics().clone(), engine.arena_stats())
        };
        let (fresh_report, fresh_metrics, fresh_stats) = run(false);
        let (arena_report, arena_metrics, arena_stats) = run(true);
        assert_eq!(fresh_report, arena_report);
        assert_eq!(fresh_metrics, arena_metrics);
        // Nodes that never opt in never touch the pools...
        assert_eq!(fresh_stats.total(), 0);
        // ...and opted-in payloads are served from recycled backings once
        // the first round's messages have been consumed.
        assert!(
            arena_stats.served_reused > 0,
            "expected recycled payload buffers, got {arena_stats:?}"
        );
    }

    #[test]
    fn worker_count_never_changes_the_transcript() {
        let inputs: Vec<bool> = (0..13).map(|i| i % 3 == 0).collect();
        let run = |threads: usize| {
            let cfg = CliqueConfig::broadcast(inputs.len(), 1);
            let nodes = inputs
                .iter()
                .map(|&input| ParityNode {
                    input,
                    result: None,
                })
                .collect();
            let mut engine = RoundEngine::new(cfg, nodes);
            engine.set_threads(Some(threads));
            assert_eq!(engine.threads(), threads);
            let report = engine.run(5).unwrap();
            let results: Vec<Option<bool>> = engine.nodes().iter().map(|n| n.result).collect();
            (report, engine.metrics().clone(), results)
        };
        let baseline = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }
}
