//! Round and bit accounting shared by the round engine and the phase engine.

use std::borrow::Cow;
use std::fmt;

/// Label given to the aggregated record under which
/// [`Metrics::record_round`] collects consecutive round-engine rounds (a
/// static string, so per-round recording allocates nothing). The
/// aggregation itself is keyed on [`PhaseRecord::strict_rounds`], not on
/// this label, so user phases may reuse the string freely.
pub const ROUNDS_LABEL: &str = "rounds";

/// Cumulative communication metrics of a protocol execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds elapsed so far.
    pub rounds: u64,
    /// Total payload bits placed on the network (a broadcast of `m` bits to
    /// `k` receivers counts as `m` blackboard bits in a broadcast model and
    /// `m·k` link bits in a unicast model).
    pub total_bits: u64,
    /// Total number of messages placed on the network.
    pub messages: u64,
    /// Maximum number of bits carried by a single link in a single round.
    pub max_link_bits_per_round: u64,
    /// Per-phase breakdown: one record per named bulk-synchronous phase,
    /// plus one aggregated [`ROUNDS_LABEL`] record (with
    /// [`PhaseRecord::strict_rounds`] set) per run of consecutive strict
    /// engine rounds.
    pub phases: Vec<PhaseRecord>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed phase.
    pub fn record_phase(&mut self, record: PhaseRecord) {
        self.rounds += record.rounds;
        self.total_bits += record.bits;
        self.messages += record.messages;
        self.max_link_bits_per_round = self
            .max_link_bits_per_round
            .max(record.max_link_bits_per_round);
        self.phases.push(record);
    }

    /// Records one strict engine round, merging it into a trailing
    /// [`ROUNDS_LABEL`] record so that long round-by-round executions keep a
    /// single aggregated phase entry instead of one allocation per round.
    pub fn record_round(&mut self, bits: u64, messages: u64, max_link_bits: u64) {
        self.rounds += 1;
        self.total_bits += bits;
        self.messages += messages;
        self.max_link_bits_per_round = self.max_link_bits_per_round.max(max_link_bits);
        if let Some(last) = self.phases.last_mut() {
            if last.strict_rounds {
                last.rounds += 1;
                last.bits += bits;
                last.messages += messages;
                last.max_link_bits_per_round = last.max_link_bits_per_round.max(max_link_bits);
                return;
            }
        }
        self.phases.push(PhaseRecord {
            label: Cow::Borrowed(ROUNDS_LABEL),
            rounds: 1,
            bits,
            messages,
            max_link_bits_per_round: max_link_bits,
            strict_rounds: true,
        });
    }

    /// Merges metrics from a sub-execution (e.g. a nested protocol).
    pub fn absorb(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.total_bits += other.total_bits;
        self.messages += other.messages;
        self.max_link_bits_per_round = self
            .max_link_bits_per_round
            .max(other.max_link_bits_per_round);
        self.phases.extend(other.phases.iter().cloned());
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} bits, {} messages",
            self.rounds, self.total_bits, self.messages
        )
    }
}

/// Communication accounting for a single named phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Human-readable phase label (e.g. `"layer 3: heavy gates"`). A
    /// [`Cow`] so that static labels (such as [`ROUNDS_LABEL`]) cost no
    /// allocation.
    pub label: Cow<'static, str>,
    /// Rounds charged to this phase.
    pub rounds: u64,
    /// Payload bits placed on the network during this phase.
    pub bits: u64,
    /// Messages placed on the network during this phase.
    pub messages: u64,
    /// Maximum bits on one link in one round within this phase.
    pub max_link_bits_per_round: u64,
    /// True when this record aggregates consecutive strict engine rounds
    /// (each a one-round step); false for named bulk-synchronous phases.
    pub strict_rounds: bool,
}

/// Summary of a completed protocol execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Final communication metrics.
    pub metrics: Metrics,
    /// Whether all nodes halted before the round limit.
    pub completed: bool,
}

impl RunReport {
    /// Rounds used by the execution.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Total bits placed on the network.
    pub fn total_bits(&self) -> u64 {
        self.metrics.total_bits
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({})",
            self.metrics,
            if self.completed {
                "completed"
            } else {
                "cut off"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_phase_accumulates() {
        let mut m = Metrics::new();
        m.record_phase(PhaseRecord {
            label: "a".into(),
            rounds: 2,
            bits: 10,
            messages: 3,
            max_link_bits_per_round: 4,
            strict_rounds: false,
        });
        m.record_phase(PhaseRecord {
            label: "b".into(),
            rounds: 1,
            bits: 5,
            messages: 1,
            max_link_bits_per_round: 6,
            strict_rounds: false,
        });
        assert_eq!(m.rounds, 3);
        assert_eq!(m.total_bits, 15);
        assert_eq!(m.messages, 4);
        assert_eq!(m.max_link_bits_per_round, 6);
        assert_eq!(m.phases.len(), 2);
    }

    #[test]
    fn record_round_aggregates_consecutive_rounds() {
        let mut m = Metrics::new();
        m.record_round(4, 2, 2);
        m.record_round(0, 0, 0);
        m.record_round(6, 1, 3);
        assert_eq!(m.rounds, 3);
        assert_eq!(m.total_bits, 10);
        assert_eq!(m.messages, 3);
        assert_eq!(m.max_link_bits_per_round, 3);
        // All three rounds share one aggregated record with a static label.
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].label, ROUNDS_LABEL);
        assert!(m.phases[0].strict_rounds);
        assert_eq!(m.phases[0].rounds, 3);
        // A named phase in between starts a fresh aggregation run — even
        // one that reuses the "rounds" label (aggregation keys on the
        // strict_rounds flag, not the string).
        m.record_phase(PhaseRecord {
            label: ROUNDS_LABEL.into(),
            rounds: 1,
            ..PhaseRecord::default()
        });
        m.record_round(1, 1, 1);
        assert_eq!(m.phases.len(), 3);
        assert!(!m.phases[1].strict_rounds);
        assert!(m.phases[2].strict_rounds);
        assert_eq!(m.rounds, 5);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Metrics::new();
        a.record_phase(PhaseRecord {
            label: "a".into(),
            rounds: 1,
            bits: 1,
            messages: 1,
            max_link_bits_per_round: 1,
            strict_rounds: false,
        });
        let mut b = Metrics::new();
        b.record_phase(PhaseRecord {
            label: "b".into(),
            rounds: 2,
            bits: 2,
            messages: 2,
            max_link_bits_per_round: 2,
            strict_rounds: false,
        });
        a.absorb(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.phases.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let report = RunReport {
            metrics: Metrics {
                rounds: 4,
                total_bits: 9,
                messages: 2,
                ..Metrics::default()
            },
            completed: true,
        };
        let s = report.to_string();
        assert!(s.contains("4 rounds"));
        assert!(s.contains("completed"));
        assert_eq!(report.rounds(), 4);
        assert_eq!(report.total_bits(), 9);
    }
}
