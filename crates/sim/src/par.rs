//! Deterministic thread-parallel execution helpers.
//!
//! Everything in the simulator that is embarrassingly parallel — the `n`
//! independent [`NodeAlgorithm::round`](crate::node::NodeAlgorithm::round)
//! calls of a round, the independent grid points of a
//! [`Runner::sweep_par`](crate::protocol::Runner::sweep_par), the output
//! rows of a [`linalg`](crate::linalg) matrix product — runs through this
//! module. It is a *scoped* pool: each parallel region spawns up to
//! [`threads()`] OS threads via [`std::thread::scope`], which lets workers
//! borrow the caller's data directly (no `'static` bounds, no unsafe, no
//! vendored dependencies) at the cost of a spawn per region.
//!
//! # The worker-count knob
//!
//! The effective worker count is resolved, in order, from
//!
//! 1. the process-wide override set with [`set_threads`] (the `--threads N`
//!    flag of the `experiments` and `kernels` binaries lands here),
//! 2. the `CLIQUE_THREADS` environment variable (CI runs the whole test
//!    suite under `CLIQUE_THREADS=1` and again under the default),
//! 3. [`std::thread::available_parallelism`].
//!
//! Engines additionally accept a per-instance override (e.g.
//! [`RoundEngine::set_threads`](crate::engine::RoundEngine::set_threads)),
//! which takes precedence over all of the above for that instance and keeps
//! tests comparing thread counts free of global state.
//!
//! # The determinism contract
//!
//! Parallelism must never change what a protocol computes or what the
//! ledger records: work is split into *contiguous index chunks*, every
//! result is written to the slot its index owns, and anything order
//! sensitive (message delivery, metrics, error selection) is merged by the
//! caller in ascending index order afterwards. Running with 1, 2 or 64
//! workers therefore produces bit-identical transcripts — the property
//! pinned by the `parallel_*` proptests in `tests/properties.rs`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide worker-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide worker-count override.
/// A `Some(0)` is treated as `Some(1)`.
pub fn set_threads(threads: Option<usize>) {
    OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::Relaxed);
}

/// The process-wide override currently in force, if any.
pub fn threads_override() -> Option<usize> {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        t => Some(t),
    }
}

/// The default worker count when no override is set: `CLIQUE_THREADS` if it
/// parses to a positive integer, otherwise the machine's available
/// parallelism. Cached after the first call.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(value) = std::env::var("CLIQUE_THREADS") {
            if let Ok(t) = value.trim().parse::<usize>() {
                if t >= 1 {
                    return t;
                }
            }
            // An unparsable CLIQUE_THREADS falls through to the hardware
            // default rather than aborting library users; the CLI flags
            // reject bad values loudly instead.
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    })
}

/// The worker count parallel regions use right now:
/// [`threads_override`] if set, else [`default_threads`].
pub fn threads() -> usize {
    threads_override().unwrap_or_else(default_threads)
}

/// Items per contiguous chunk when `len` items are split across at most
/// `threads` workers — the single source of truth for every splitter in
/// this module.
fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.clamp(1, len.max(1))).max(1)
}

/// Splits `len` items into at most `threads` contiguous ranges of
/// near-equal length (empty ranges are not produced).
fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    let per = chunk_len(len, threads);
    (0..len)
        .step_by(per)
        .map(|start| start..(start + per).min(len))
        .collect()
}

/// Work-item count from which the engines' *ambient* parallelism (no
/// explicit override anywhere) engages; below it, spawn overhead dominates
/// the per-item work of typical rounds/phases. Explicit overrides —
/// per-instance `set_threads` or the process-wide [`set_threads`] — are
/// always honored regardless of size.
pub const AMBIENT_MIN_ITEMS: usize = 32;

/// Resolves the worker count for a region of `items` independent work
/// items: an explicit override (`per_instance`, else the process-wide
/// [`set_threads`]) is honored as given (capped at one worker per item);
/// the ambient default ([`default_threads`]) engages only from `min_items`
/// items up, so small regions skip the spawn overhead entirely.
pub fn workers(per_instance: Option<usize>, items: usize, min_items: usize) -> usize {
    match per_instance.or_else(threads_override) {
        Some(t) => t.min(items.max(1)),
        None if items >= min_items => default_threads().min(items),
        None => 1,
    }
}

/// Runs `f(index)` for every index in `0..len` and collects the results in
/// index order, splitting the index space into contiguous chunks across up
/// to `threads` scoped workers. With `threads <= 1` (or one item) this is a
/// plain serial loop on the calling thread.
///
/// A panic in `f` propagates to the caller.
pub fn map<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_with(len, threads, || (), |i, ()| f(i))
}

/// [`map`] with per-worker scratch state: `init` runs once on each worker
/// (and once on the calling thread in the serial case), and `f` receives
/// `&mut` access to its worker's scratch — so a reusable buffer is
/// allocated per *worker*, not per item.
///
/// A panic in `f` propagates to the caller.
pub fn map_with<T, S, I, F>(len: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    if threads <= 1 || len <= 1 {
        let mut scratch = init();
        return (0..len).map(|i| f(i, &mut scratch)).collect();
    }
    let ranges = chunk_ranges(len, threads);
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let (init, f) = (&init, &f);
                s.spawn(move || {
                    let mut scratch = init();
                    range.map(|i| f(i, &mut scratch)).collect::<Vec<T>>()
                })
            })
            .collect();
        // Joining in spawn order keeps the concatenation in index order
        // regardless of which worker finishes first.
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// Runs `f(index, &mut item)` for every item of the slice, splitting the
/// slice into contiguous chunks across up to `threads` scoped workers. The
/// disjointness of the chunks is what makes this safe without locks; with
/// `threads <= 1` it is a plain serial loop.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = chunk_len(items.len(), threads);
    std::thread::scope(|s| {
        for (ci, chunk) in items.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, item) in chunk.iter_mut().enumerate() {
                    f(ci * per + j, item);
                }
            });
        }
    });
}

/// Runs `f(index, &mut a[index], &mut b[index])` over two equally long
/// slices, chunked like [`for_each_mut`]. The round engine uses this to
/// step each player's algorithm and fill its outbox concurrently.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn for_each_zip_mut<A, B, F>(a: &mut [A], b: &mut [B], threads: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut A, &mut B) + Sync,
{
    assert_eq!(a.len(), b.len(), "zip over unequal lengths");
    if threads <= 1 || a.len() <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let per = chunk_len(a.len(), threads);
    std::thread::scope(|s| {
        for (ci, (ca, cb)) in a.chunks_mut(per).zip(b.chunks_mut(per)).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    f(ci * per + j, x, y);
                }
            });
        }
    });
}

/// Splits `items` into contiguous chunks whose lengths are multiples of
/// `granule` (one granule = one logical row) and runs
/// `f(start_item_index, chunk)` on up to `threads` scoped workers. The
/// linalg kernels use this to hand each worker a block of output rows.
///
/// With `threads <= 1`, a single call `f(0, items)` runs on the calling
/// thread.
///
/// # Panics
///
/// Panics if `granule == 0` while `items` is non-empty, or if `items.len()`
/// is not a multiple of `granule`.
pub fn for_each_chunk_mut<T, F>(items: &mut [T], granule: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    assert!(granule > 0, "granule must be positive for non-empty input");
    assert_eq!(
        items.len() % granule,
        0,
        "length must be a granule multiple"
    );
    let rows = items.len() / granule;
    if threads <= 1 || rows <= 1 {
        f(0, items);
        return;
    }
    let per = chunk_len(rows, threads) * granule;
    std::thread::scope(|s| {
        for (ci, chunk) in items.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || f(ci * per, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (len, t) in [
            (0usize, 4usize),
            (1, 4),
            (5, 2),
            (7, 3),
            (8, 8),
            (9, 16),
            (100, 7),
        ] {
            let ranges = chunk_ranges(len, t);
            let mut covered = Vec::new();
            for r in &ranges {
                assert!(!r.is_empty(), "empty chunk for len={len}, t={t}");
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len={len}, t={t}");
            assert!(ranges.len() <= t.max(1));
        }
    }

    #[test]
    fn map_preserves_index_order_at_any_thread_count() {
        for t in [1usize, 2, 3, 8, 64] {
            let got = map(37, t, |i| i * i);
            let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, expected, "threads={t}");
        }
        assert!(map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn for_each_mut_touches_every_slot_once() {
        for t in [1usize, 3, 5, 32] {
            let mut items = vec![0usize; 23];
            for_each_mut(&mut items, t, |i, slot| *slot += i + 1);
            let expected: Vec<usize> = (1..=23).collect();
            assert_eq!(items, expected, "threads={t}");
        }
    }

    #[test]
    fn for_each_zip_mut_pairs_slots_by_index() {
        for t in [1usize, 2, 7] {
            let mut a = vec![0usize; 11];
            let mut b: Vec<usize> = (0..11).collect();
            for_each_zip_mut(&mut a, &mut b, t, |i, x, y| {
                *x = i + *y;
                *y = 0;
            });
            assert_eq!(a, (0..11).map(|i| 2 * i).collect::<Vec<_>>());
            assert!(b.iter().all(|&y| y == 0));
        }
    }

    #[test]
    fn for_each_chunk_mut_respects_granules() {
        for t in [1usize, 2, 4, 9] {
            let granule = 3;
            let mut items = vec![0usize; 7 * granule];
            for_each_chunk_mut(&mut items, granule, t, |start, chunk| {
                assert_eq!(start % granule, 0);
                assert_eq!(chunk.len() % granule, 0);
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = start + j;
                }
            });
            assert_eq!(items, (0..7 * granule).collect::<Vec<_>>());
        }
        // Empty input is a no-op even with granule 0.
        for_each_chunk_mut::<u8, _>(&mut [], 0, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn map_with_reuses_scratch_per_worker() {
        for t in [1usize, 2, 4] {
            let got = map_with(20, t, Vec::new, |i, scratch: &mut Vec<usize>| {
                scratch.push(i);
                // Scratch is worker-local and grows monotonically, so its
                // last element is always the current index.
                (*scratch.last().unwrap(), scratch.len())
            });
            for (i, &(idx, len)) in got.iter().enumerate() {
                assert_eq!(idx, i, "threads={t}");
                assert!(len >= 1 && len <= i + 1, "threads={t}");
            }
        }
    }

    /// The single test that touches the process-wide `OVERRIDE` atomic —
    /// kept as one `#[test]` on purpose: cargo runs tests of a binary
    /// concurrently, so two tests mutating the global would race.
    #[test]
    fn global_override_and_workers_resolution() {
        // Explicit per-instance override: honored (capped per item), at
        // any size, regardless of the global.
        assert_eq!(workers(Some(8), 3, AMBIENT_MIN_ITEMS), 3);
        assert_eq!(workers(Some(2), 100, AMBIENT_MIN_ITEMS), 2);
        assert_eq!(workers(Some(4), 0, AMBIENT_MIN_ITEMS), 1);

        let saved = threads_override();
        // Round trip and clamping of the global override.
        set_threads(Some(3));
        assert_eq!(threads_override(), Some(3));
        assert_eq!(threads(), 3);
        set_threads(Some(0));
        assert_eq!(threads_override(), Some(1), "0 clamps to 1");
        // Process-wide override: honored by `workers` at any size.
        set_threads(Some(5));
        assert_eq!(workers(None, 6, AMBIENT_MIN_ITEMS), 5);
        // Ambient default: gated below min_items.
        set_threads(None);
        assert_eq!(threads_override(), None);
        assert!(threads() >= 1);
        assert_eq!(workers(None, AMBIENT_MIN_ITEMS - 1, AMBIENT_MIN_ITEMS), 1);
        assert!(workers(None, AMBIENT_MIN_ITEMS, AMBIENT_MIN_ITEMS) >= 1);
        set_threads(saved);
    }
}
