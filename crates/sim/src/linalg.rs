//! Word-parallel Boolean/`F₂` linear algebra.
//!
//! The Theorem 2 transfer makes `F₂` matrix multiplication the workhorse
//! primitive of the reproduction (Section 2.1 and the algebraic-methods
//! follow-ups), so the host-side representation matters: [`BitMatrix`] packs
//! each row into `u64` words and multiplies with word operations — 64 field
//! elements per machine instruction — instead of one `bool` at a time.
//!
//! Two multiplication kernels are provided:
//!
//! * [`BitMatrix::mul_f2_word`] — for every set bit `A[i][k]`, XOR row `k`
//!   of `B` into the accumulator row, one word at a time;
//! * [`BitMatrix::mul_f2_four_russians`] — the Method of Four Russians:
//!   group the rows of `B` in blocks of 8, precompute all 256 XOR
//!   combinations per block, then handle 8 columns of `A` per table lookup.
//!
//! [`BitMatrix::mul_f2`] dispatches between them (Four Russians from
//! dimension 256 up). Packing is a *host-side* optimisation only: protocols
//! built on these kernels exchange exactly the same transcripts as the
//! `Vec<Vec<bool>>` code they replaced (pinned by `tests/protocol_regression.rs`).

use std::fmt;

use crate::bits::BitString;

/// Row count from which [`BitMatrix::mul_f2`] switches to the Method of
/// Four Russians.
pub const FOUR_RUSSIANS_MIN_DIM: usize = 256;

/// Rows-of-`B` block width of the Four-Russians kernel (8 bits → 256-entry
/// tables).
const M4R_BLOCK: usize = 8;

/// A dense Boolean matrix with rows packed into little-endian `u64` words
/// (column `j` of row `i` is bit `j % 64` of word `j / 64`).
///
/// Bits past `cols` in the last word of each row are always zero; every
/// mutating method maintains this invariant, which the multiplication
/// kernels rely on.
///
/// # Examples
///
/// ```
/// use clique_sim::linalg::BitMatrix;
///
/// let a = BitMatrix::from_rows(&[vec![true, false], vec![true, true]]);
/// let id = BitMatrix::identity(2);
/// assert_eq!(a.mul_f2(&id), a);
/// assert!(a.get(1, 1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            data: vec![0u64; rows * words_per_row],
        }
    }

    /// The `d × d` identity matrix.
    pub fn identity(d: usize) -> Self {
        let mut m = Self::zeros(d, d);
        for i in 0..d {
            m.set(i, i, true);
        }
        m
    }

    /// Packs a rectangular `Vec<Vec<bool>>` row by row.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has length {}", row.len());
            let words = m.row_words_mut(i);
            for (j, &bit) in row.iter().enumerate() {
                words[j / 64] |= u64::from(bit) << (j % 64);
            }
        }
        m
    }

    /// Packs a flat row-major bit slice into a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, bits: &[bool]) -> Self {
        assert_eq!(bits.len(), rows * cols, "expected {} bits", rows * cols);
        let mut m = Self::zeros(rows, cols);
        for (i, row) in bits.chunks(cols.max(1)).enumerate().take(rows) {
            let words = m.row_words_mut(i);
            for (j, &bit) in row.iter().enumerate() {
                words[j / 64] |= u64::from(bit) << (j % 64);
            }
        }
        m
    }

    /// Unpacks into a `Vec<Vec<bool>>` (the inverse of [`Self::from_rows`]).
    pub fn to_rows(&self) -> Vec<Vec<bool>> {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j)).collect())
            .collect()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        (self.data[i * self.words_per_row + j / 64] >> (j % 64)) & 1 == 1
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        let word = &mut self.data[i * self.words_per_row + j / 64];
        if value {
            *word |= 1u64 << (j % 64);
        } else {
            *word &= !(1u64 << (j % 64));
        }
    }

    /// The packed words of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_words(&self, i: usize) -> &[u64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Mutable access to the packed words of row `i`. Callers must keep the
    /// bits past `cols()` in the last word zero.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        assert!(i < self.rows, "row {i} out of range");
        &mut self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Row `i` as a [`BitString`] of `cols()` bits, ready to ship as a
    /// message payload.
    pub fn row_bits(&self, i: usize) -> BitString {
        BitString::from_words(self.row_words(i), self.cols)
    }

    /// Overwrites row `i` with the low `cols()` bits of `words` (extra high
    /// bits of the last word are masked off).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `words` holds fewer than `cols()`
    /// bits.
    pub fn set_row_words(&mut self, i: usize, words: &[u64]) {
        assert!(
            words.len() * 64 >= self.cols,
            "{} words cannot hold {} columns",
            words.len(),
            self.cols
        );
        let cols = self.cols;
        let row = self.row_words_mut(i);
        row.copy_from_slice(&words[..row.len()]);
        let rem = cols % 64;
        if rem > 0 {
            if let Some(last) = row.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of set entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The matrix with column `j` zeroed wherever `mask[j]` is `false`
    /// (each row is AND-ed with the packed mask, one word at a time).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != cols()`.
    pub fn mask_columns(&self, mask: &[bool]) -> BitMatrix {
        assert_eq!(mask.len(), self.cols, "mask length must equal cols");
        let mut packed = vec![0u64; self.words_per_row];
        for (j, &keep) in mask.iter().enumerate() {
            packed[j / 64] |= u64::from(keep) << (j % 64);
        }
        let mut out = self.clone();
        for row in out.data.chunks_mut(self.words_per_row.max(1)) {
            for (word, &m) in row.iter_mut().zip(&packed) {
                *word &= m;
            }
        }
        out
    }

    /// Elementwise XOR (addition over `F₂`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn xor(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch"
        );
        let mut out = self.clone();
        for (w, &o) in out.data.iter_mut().zip(&other.data) {
            *w ^= o;
        }
        out
    }

    /// The matrix product over `F₂`, dispatching to the Four-Russians kernel
    /// for inner dimensions of [`FOUR_RUSSIANS_MIN_DIM`] and up and to the
    /// plain word kernel below that.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2(&self, rhs: &BitMatrix) -> BitMatrix {
        if Self::dispatches_to_four_russians(self.cols) {
            self.mul_f2_four_russians(rhs)
        } else {
            self.mul_f2_word(rhs)
        }
    }

    /// Whether [`mul_f2`](Self::mul_f2) routes an inner dimension to the
    /// Four-Russians kernel instead of the plain word kernel.
    fn dispatches_to_four_russians(inner_dim: usize) -> bool {
        inner_dim >= FOUR_RUSSIANS_MIN_DIM
    }

    /// The word-level product: for every set bit `A[i][k]`, XOR row `k` of
    /// `B` into output row `i` (64 columns per word operation).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_word(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let w = rhs.words_per_row;
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let (a_row, out_row) = (
                &self.data[i * self.words_per_row..(i + 1) * self.words_per_row],
                &mut out.data[i * w..(i + 1) * w],
            );
            for (wi, &word) in a_row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let k = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let b_row = &rhs.data[k * w..(k + 1) * w];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o ^= b;
                    }
                }
            }
        }
        out
    }

    /// The Method-of-Four-Russians product: rows of `B` are processed in
    /// blocks of 8; per block all 256 XOR combinations are tabulated
    /// incrementally (one row XOR per entry), then every row of `A` consumes
    /// 8 of its columns with a single table lookup.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_four_russians(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let w = rhs.words_per_row;
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 || rhs.rows == 0 || w == 0 {
            return out;
        }
        let mut table = vec![0u64; (1 << M4R_BLOCK) * w];
        for block in 0..rhs.rows.div_ceil(M4R_BLOCK) {
            let base = block * M4R_BLOCK;
            let size = M4R_BLOCK.min(rhs.rows - base);
            // table[idx] = XOR of the rows of B selected by the bits of idx;
            // built incrementally: idx = rest | lowest bit, one XOR each.
            for idx in 1usize..1 << size {
                let low = idx.trailing_zeros() as usize;
                let rest = idx & (idx - 1);
                let b_row = (base + low) * w;
                for wi in 0..w {
                    table[idx * w + wi] = table[rest * w + wi] ^ rhs.data[b_row + wi];
                }
            }
            for i in 0..self.rows {
                let idx = self.extract_row_bits(i, base, size) as usize;
                if idx != 0 {
                    let out_row = &mut out.data[i * w..(i + 1) * w];
                    for (o, &t) in out_row.iter_mut().zip(&table[idx * w..(idx + 1) * w]) {
                        *o ^= t;
                    }
                }
            }
            // No table reset between blocks: the build loop overwrites every
            // entry in 1..1<<size by plain assignment, table[0] is never
            // written, and lookups are masked to `size` bits.
        }
        out
    }

    /// Extracts `len ≤ 8` bits of row `i` starting at column `start`
    /// (straddling at most two words).
    fn extract_row_bits(&self, i: usize, start: usize, len: usize) -> u64 {
        debug_assert!(len <= M4R_BLOCK && start + len <= self.cols);
        let row = i * self.words_per_row;
        let word_idx = start / 64;
        let bit_idx = start % 64;
        let mut value = self.data[row + word_idx] >> bit_idx;
        if bit_idx + len > 64 {
            value |= self.data[row + word_idx + 1] << (64 - bit_idx);
        }
        value & ((1u64 << len) - 1)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMatrix({}×{}, {} ones)",
            self.rows,
            self.cols,
            self.count_ones()
        )
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{}", u8::from(self.get(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bool-at-a-time product the packed kernels must agree with.
    fn scalar_product(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        let mut out = BitMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = false;
                for k in 0..a.cols() {
                    acc ^= a.get(i, k) & b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(i, j, state >> 62 & 1 == 1);
            }
        }
        m
    }

    #[test]
    fn round_trips_between_representations() {
        let rows = vec![
            vec![true, false, true],
            vec![false, false, false],
            vec![true, true, true],
        ];
        let m = BitMatrix::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
        assert_eq!((m.rows(), m.cols()), (3, 3));
        assert_eq!(m.count_ones(), 5);
        let flat: Vec<bool> = rows.iter().flatten().copied().collect();
        assert_eq!(BitMatrix::from_row_major(3, 3, &flat), m);
        assert_eq!(m.row_bits(0).to_bools(), rows[0]);
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let mut m = BitMatrix::zeros(2, 130);
        m.set(0, 0, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        m.set(1, 129, true);
        assert!(m.get(0, 0) && m.get(0, 63) && m.get(0, 64) && m.get(1, 129));
        assert_eq!(m.count_ones(), 4);
        m.set(0, 64, false);
        assert!(!m.get(0, 64));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn both_kernels_match_the_scalar_product() {
        for (ra, c, cb, seed) in [
            (1usize, 1usize, 1usize, 1u64),
            (3, 5, 4, 2),
            (17, 64, 9, 3),
            (8, 65, 70, 4),
            (20, 130, 20, 5),
        ] {
            let a = pseudo_random(ra, c, seed);
            let b = pseudo_random(c, cb, seed + 100);
            let expected = scalar_product(&a, &b);
            assert_eq!(a.mul_f2_word(&b), expected, "word kernel {ra}x{c}x{cb}");
            assert_eq!(
                a.mul_f2_four_russians(&b),
                expected,
                "four russians {ra}x{c}x{cb}"
            );
            assert_eq!(a.mul_f2(&b), expected, "dispatch {ra}x{c}x{cb}");
        }
    }

    #[test]
    fn dispatch_threshold_selects_the_expected_kernel() {
        assert!(!BitMatrix::dispatches_to_four_russians(0));
        assert!(!BitMatrix::dispatches_to_four_russians(
            FOUR_RUSSIANS_MIN_DIM - 1
        ));
        assert!(BitMatrix::dispatches_to_four_russians(
            FOUR_RUSSIANS_MIN_DIM
        ));
        // And the routed kernel agrees with the other path at the threshold.
        let d = FOUR_RUSSIANS_MIN_DIM;
        let a = pseudo_random(4, d, 7);
        let b = pseudo_random(d, 4, 8);
        assert_eq!(a.mul_f2(&b), a.mul_f2_word(&b));
    }

    #[test]
    fn identity_is_neutral() {
        let m = pseudo_random(9, 9, 11);
        let id = BitMatrix::identity(9);
        assert_eq!(m.mul_f2(&id), m);
        assert_eq!(id.mul_f2(&m), m);
    }

    #[test]
    fn mask_columns_zeroes_unselected_columns() {
        let m = pseudo_random(5, 70, 13);
        let mask: Vec<bool> = (0..70).map(|j| j % 3 != 0).collect();
        let masked = m.mask_columns(&mask);
        for i in 0..5 {
            for (j, &keep) in mask.iter().enumerate() {
                assert_eq!(masked.get(i, j), m.get(i, j) && keep);
            }
        }
    }

    #[test]
    fn xor_is_elementwise() {
        let a = pseudo_random(4, 66, 17);
        let b = pseudo_random(4, 66, 19);
        let c = a.xor(&b);
        for i in 0..4 {
            for j in 0..66 {
                assert_eq!(c.get(i, j), a.get(i, j) ^ b.get(i, j));
            }
        }
        assert!(a.xor(&a).count_ones() == 0);
    }

    #[test]
    fn set_row_words_masks_padding() {
        let mut m = BitMatrix::zeros(2, 70);
        m.set_row_words(1, &[u64::MAX, u64::MAX]);
        assert_eq!(m.count_ones(), 70);
        assert_eq!(m.row_words(1)[1] >> 6, 0, "padding bits must stay zero");
    }

    #[test]
    fn empty_matrices_multiply() {
        let a = BitMatrix::zeros(0, 5);
        let b = BitMatrix::zeros(5, 3);
        assert_eq!(a.mul_f2(&b).rows(), 0);
        let a = BitMatrix::zeros(3, 0);
        let b = BitMatrix::zeros(0, 4);
        let c = a.mul_f2(&b);
        assert_eq!((c.rows(), c.cols()), (3, 4));
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dimensions_panic() {
        let a = BitMatrix::zeros(2, 3);
        let b = BitMatrix::zeros(4, 2);
        let _ = a.mul_f2(&b);
    }

    #[test]
    fn debug_and_display_are_informative() {
        let m = BitMatrix::identity(2);
        assert_eq!(format!("{m:?}"), "BitMatrix(2×2, 2 ones)");
        assert_eq!(m.to_string(), "10\n01\n");
    }
}
