//! Word-parallel Boolean/`F₂` linear algebra.
//!
//! The Theorem 2 transfer makes `F₂` matrix multiplication the workhorse
//! primitive of the reproduction (Section 2.1 and the algebraic-methods
//! follow-ups), so the host-side representation matters: [`BitMatrix`] packs
//! each row into machine-word lanes ([`Word`], default [`DefaultLane`]) and
//! multiplies with word operations — `W::BITS` field elements per machine
//! instruction — instead of one `bool` at a time.
//!
//! Two multiplication kernels are provided:
//!
//! * [`BitMatrix::mul_f2_word`] — for every set bit `A[i][k]`, XOR row `k`
//!   of `B` into the accumulator row, one word at a time;
//! * [`BitMatrix::mul_f2_four_russians`] — the Method of Four Russians:
//!   group the rows of `B` in blocks of 8, precompute all 256 XOR
//!   combinations per block, then handle 8 columns of `A` per table lookup.
//!   The tables are built in *tiles* of several blocks
//!   ([`M4R_TILE_BYTES`]) so each output row is loaded and stored once per
//!   tile instead of once per block — the unblocked single-table walk is
//!   kept as [`BitMatrix::mul_f2_four_russians_unblocked`] for comparison
//!   (the `kernels` bench bin reports the ratio).
//!
//! [`BitMatrix::mul_f2`] dispatches between them (Four Russians from
//! dimension 256 up). On top of the dispatcher sits
//! [`BitMatrix::mul_f2_strassen`]: Strassen's recursion over `F₂`
//! (subtraction *is* XOR, so no entry widths grow), splitting from
//! [`STRASSEN_MIN_DIM`] with the padded dimension decided once by
//! [`strassen_padded_dim`] — the same block-split seam the distributed
//! `FastMatMul` schedule and the explicit circuit family pad with.
//! [`BitMatrix::mul_bool`] (OR/AND) and
//! [`BitMatrix::popcount_product`] (AND+popcount counting product) serve the
//! Boolean and counting semirings of the algebraic protocols, and
//! [`IntMatrix`] carries the small-integer `(+, ×)` and `(min, +)` semiring
//! operands with block extraction and transpose helpers for 3D-partitioned
//! distributed products.
//!
//! From [`PAR_MIN_ROWS`] output rows the product dispatchers additionally
//! split the output rows across the [`par`] worker pool (knob:
//! [`par::set_threads`] / `CLIQUE_THREADS`; the `*_with_threads` variants
//! take an explicit budget). Threading sits behind the same dispatcher seam
//! as the Four-Russians threshold: it selects an execution strategy, never a
//! different result. Packing, lane width and threading are *host-side*
//! optimisations only: protocols built on these kernels exchange exactly the
//! same transcripts as the `Vec<Vec<bool>>` code they replaced (pinned by
//! `tests/protocol_regression.rs` and the cross-width proptests).

use std::fmt;

use crate::bits::BitString;
use crate::lane::{DefaultLane, Word};
use crate::par;

/// Row count from which [`BitMatrix::mul_f2`] switches to the Method of
/// Four Russians.
pub const FOUR_RUSSIANS_MIN_DIM: usize = 256;

/// Output-row count from which the multiplication dispatchers engage the
/// row-blocked threaded paths (below it, spawn overhead dominates). The
/// same dispatcher seam as [`FOUR_RUSSIANS_MIN_DIM`]: both pick an
/// implementation, never a different result.
pub const PAR_MIN_ROWS: usize = 64;

/// Dimension from which [`BitMatrix::mul_f2_strassen`] keeps splitting;
/// below it the recursion bottoms out in the [`BitMatrix::mul_f2`]
/// dispatcher (Four Russians from [`FOUR_RUSSIANS_MIN_DIM`] up). Strassen
/// trades one eighth of the block products for a constant number of
/// `O(d²)` XOR passes, but the Four-Russians kernel also gets *more*
/// efficient per output bit as `d` grows (its tables amortise over longer
/// rows), so splitting only pays once the leaves are themselves large:
/// measured best-of-3 on this container, a forced depth-1 split runs at
/// 0.70×/0.75× (u64/u128) Four Russians at `d = 2048`, ties at `d = 3072`
/// (1.06×/1.03×) and clearly wins at `d = 4096` (1.65×/1.38×). The
/// `kernels` bench bin reports both kernels side by side around the
/// threshold; like the other dispatch constants it selects an execution
/// schedule, never a different result.
pub const STRASSEN_MIN_DIM: usize = 3072;

/// Rows-of-`B` block width of the Four-Russians kernel (8 bits → 256-entry
/// tables).
const M4R_BLOCK: usize = 8;

/// Combination-table bytes the blocked Four-Russians kernel keeps hot per
/// tile. Several 8-row tables are built side by side up to this budget and
/// applied to every output row in one pass, so the output matrix is
/// streamed once per *tile* instead of once per *block*, bounding the hot
/// working set independent of the matrix dimension. 64 KiB is the tested
/// constant: the `probe_tile_sizes` ignored test sweeps tile sizes against
/// the unblocked walk, and on this single-core container every size from
/// 16 KiB to 256 KiB measures within noise of the unblocked kernel up to
/// `d = 2048` (hardware prefetch covers the streaming output passes), while
/// ≥ 512 KiB tiles measure clearly slower; 64 KiB keeps the tables inside
/// a typical per-core L2 on wider hosts. The constant only selects an
/// execution schedule, never a different result.
pub const M4R_TILE_BYTES: usize = 64 * 1024;

/// Output-row bytes the blocked Four-Russians kernel keeps L1-resident
/// while it applies the tables of one tile (the inner level of the
/// two-level tiling in `mul_f2_m4r_tiled_range`).
const M4R_ROW_TILE_BYTES: usize = 32 * 1024;

/// Number of 8-row blocks whose tables fit one tile (at least 1).
fn m4r_tile_blocks(words_per_row: usize, bytes_per_word: usize) -> usize {
    let table_bytes = (1usize << M4R_BLOCK) * words_per_row * bytes_per_word;
    (M4R_TILE_BYTES / table_bytes.max(1)).max(1)
}

/// Worker count for a product with `rows` output rows under a `threads`
/// budget: 1 below [`PAR_MIN_ROWS`], else at most one worker per row.
fn row_workers(rows: usize, threads: usize) -> usize {
    if rows >= PAR_MIN_ROWS {
        threads.min(rows)
    } else {
        1
    }
}

/// Number of recursive halvings [`BitMatrix::mul_f2_strassen`] applies to a
/// `d`-dimensional product before bottoming out in the [`BitMatrix::mul_f2`]
/// dispatcher: halve while the dimension is at least [`STRASSEN_MIN_DIM`].
pub fn strassen_levels(d: usize) -> u32 {
    let mut levels = 0;
    let mut dim = d;
    while dim >= STRASSEN_MIN_DIM {
        dim = dim.div_ceil(2);
        levels += 1;
    }
    levels
}

/// The recursion depth that splits a `d`-dimensional product all the way to
/// `1 × 1` blocks — the depth of the explicit Strassen *circuit* family
/// (`clique-circuits`), whose padded dimension is therefore
/// `strassen_padded_dim(d, strassen_full_levels(d)) = d.next_power_of_two()`.
pub fn strassen_full_levels(d: usize) -> u32 {
    d.max(1).next_power_of_two().trailing_zeros()
}

/// The dimension a Strassen-partitioned product pads its operands to before
/// splitting: the smallest dimension `≥ d` divisible by `2^levels`, so
/// `levels` exact halvings need no re-padding along the way.
///
/// This is the *single* place block-split padding is decided — the
/// `padded_dim` rule of the circuit path (`MatMulStrategy` in
/// `clique-core`, which uses the full-recursion depth
/// [`strassen_full_levels`] and therefore rounds to the next power of two)
/// extended to the bounded-depth block splits of the local
/// [`BitMatrix::mul_f2_strassen`] kernel and the distributed `FastMatMul`
/// schedule. Callers pad once at the top with this dimension and split
/// exactly thereafter; no path re-pads.
pub fn strassen_padded_dim(d: usize, levels: u32) -> usize {
    let unit = 1usize << levels;
    d.div_ceil(unit) * unit
}

/// A dense Boolean matrix with rows packed into little-endian words
/// (column `j` of row `i` is bit `j % W::BITS` of word `j / W::BITS`).
///
/// Bits past `cols` in the last word of each row are always zero; every
/// mutating method maintains this invariant, which the multiplication
/// kernels rely on.
///
/// # Examples
///
/// ```
/// use clique_sim::linalg::BitMatrix;
///
/// let a: BitMatrix = BitMatrix::from_rows(&[vec![true, false], vec![true, true]]);
/// let id = BitMatrix::identity(2);
/// assert_eq!(a.mul_f2(&id), a);
/// assert!(a.get(1, 1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix<W: Word = DefaultLane> {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<W>,
}

impl<W: Word> BitMatrix<W> {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(W::BITS);
        Self {
            rows,
            cols,
            words_per_row,
            data: vec![W::ZERO; rows * words_per_row],
        }
    }

    /// The `d × d` identity matrix.
    pub fn identity(d: usize) -> Self {
        let mut m = Self::zeros(d, d);
        for i in 0..d {
            m.set(i, i, true);
        }
        m
    }

    /// Packs a rectangular `Vec<Vec<bool>>` row by row.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has length {}", row.len());
            let words = m.row_words_mut(i);
            for (j, &bit) in row.iter().enumerate() {
                if bit {
                    words[j / W::BITS] |= W::bit(j % W::BITS);
                }
            }
        }
        m
    }

    /// Packs a flat row-major bit slice into a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, bits: &[bool]) -> Self {
        assert_eq!(bits.len(), rows * cols, "expected {} bits", rows * cols);
        let mut m = Self::zeros(rows, cols);
        for (i, row) in bits.chunks(cols.max(1)).enumerate().take(rows) {
            let words = m.row_words_mut(i);
            for (j, &bit) in row.iter().enumerate() {
                if bit {
                    words[j / W::BITS] |= W::bit(j % W::BITS);
                }
            }
        }
        m
    }

    /// Unpacks into a `Vec<Vec<bool>>` (the inverse of [`Self::from_rows`]).
    pub fn to_rows(&self) -> Vec<Vec<bool>> {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j)).collect())
            .collect()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        (self.data[i * self.words_per_row + j / W::BITS] >> (j % W::BITS)) & W::ONE == W::ONE
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        let word = &mut self.data[i * self.words_per_row + j / W::BITS];
        if value {
            *word |= W::bit(j % W::BITS);
        } else {
            *word &= !W::bit(j % W::BITS);
        }
    }

    /// The packed words of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_words(&self, i: usize) -> &[W] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Mutable access to the packed words of row `i`. Callers must keep the
    /// bits past `cols()` in the last word zero.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_words_mut(&mut self, i: usize) -> &mut [W] {
        assert!(i < self.rows, "row {i} out of range");
        &mut self.data[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Row `i` as a [`BitString`] of `cols()` bits, ready to ship as a
    /// message payload.
    pub fn row_bits(&self, i: usize) -> BitString<W> {
        BitString::from_words(self.row_words(i), self.cols)
    }

    /// Overwrites row `i` with the low `cols()` bits of `words` (extra high
    /// bits of the last word are masked off).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `words` holds fewer than `cols()`
    /// bits.
    pub fn set_row_words(&mut self, i: usize, words: &[W]) {
        assert!(
            words.len() * W::BITS >= self.cols,
            "{} words cannot hold {} columns",
            words.len(),
            self.cols
        );
        let cols = self.cols;
        let row = self.row_words_mut(i);
        row.copy_from_slice(&words[..row.len()]);
        let rem = cols % W::BITS;
        if rem > 0 {
            if let Some(last) = row.last_mut() {
                *last &= W::mask_low(rem);
            }
        }
    }

    /// Number of set entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The matrix with column `j` zeroed wherever `mask[j]` is `false`
    /// (each row is AND-ed with the packed mask, one word at a time).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != cols()`.
    pub fn mask_columns(&self, mask: &[bool]) -> BitMatrix<W> {
        assert_eq!(mask.len(), self.cols, "mask length must equal cols");
        let mut packed = vec![W::ZERO; self.words_per_row];
        for (j, &keep) in mask.iter().enumerate() {
            if keep {
                packed[j / W::BITS] |= W::bit(j % W::BITS);
            }
        }
        let mut out = self.clone();
        for row in out.data.chunks_mut(self.words_per_row.max(1)) {
            for (word, &m) in row.iter_mut().zip(&packed) {
                *word &= m;
            }
        }
        out
    }

    /// Elementwise XOR (addition over `F₂`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn xor(&self, other: &BitMatrix<W>) -> BitMatrix<W> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch"
        );
        let mut out = self.clone();
        for (w, &o) in out.data.iter_mut().zip(&other.data) {
            *w ^= o;
        }
        out
    }

    /// The matrix product over `F₂`, dispatching to the (cache-blocked)
    /// Four-Russians kernel for inner dimensions of
    /// [`FOUR_RUSSIANS_MIN_DIM`] and up and to the plain word kernel below
    /// that, and — from [`PAR_MIN_ROWS`] output rows — splitting the output
    /// rows across the [`par::threads`] worker pool. Every path computes
    /// bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2(&self, rhs: &BitMatrix<W>) -> BitMatrix<W> {
        self.mul_f2_with_threads(rhs, par::threads())
    }

    /// [`Self::mul_f2`] with an explicit worker budget (1 forces the serial
    /// path; the result is identical at every worker count).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_with_threads(&self, rhs: &BitMatrix<W>, threads: usize) -> BitMatrix<W> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let w = rhs.words_per_row;
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        if out.data.is_empty() {
            return out;
        }
        let four_russians = Self::dispatches_to_four_russians(self.cols);
        let workers = row_workers(self.rows, threads);
        par::for_each_chunk_mut(&mut out.data, w, workers, |start, chunk| {
            let row0 = start / w;
            if four_russians {
                self.mul_f2_m4r_blocked_range(rhs, row0, chunk);
            } else {
                self.mul_f2_word_range(rhs, row0, chunk);
            }
        });
        out
    }

    /// Whether [`mul_f2`](Self::mul_f2) routes an inner dimension to the
    /// Four-Russians kernel instead of the plain word kernel.
    fn dispatches_to_four_russians(inner_dim: usize) -> bool {
        inner_dim >= FOUR_RUSSIANS_MIN_DIM
    }

    /// The word-level product: for every set bit `A[i][k]`, XOR row `k` of
    /// `B` into output row `i` (`W::BITS` columns per word operation).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_word(&self, rhs: &BitMatrix<W>) -> BitMatrix<W> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        if !out.data.is_empty() {
            self.mul_f2_word_range(rhs, 0, &mut out.data);
        }
        out
    }

    /// The word kernel restricted to output rows `row0..`, writing into the
    /// caller's (zeroed) chunk of `out.data` — the unit the threaded
    /// dispatcher hands to each worker.
    fn mul_f2_word_range(&self, rhs: &BitMatrix<W>, row0: usize, out_chunk: &mut [W]) {
        let w = rhs.words_per_row;
        for (r, out_row) in out_chunk.chunks_mut(w).enumerate() {
            let i = row0 + r;
            let a_row = &self.data[i * self.words_per_row..(i + 1) * self.words_per_row];
            for (wi, &word) in a_row.iter().enumerate() {
                let mut bits = word;
                while bits != W::ZERO {
                    let k = wi * W::BITS + bits.trailing_zeros() as usize;
                    bits = bits.clear_lowest_set_bit();
                    let b_row = &rhs.data[k * w..(k + 1) * w];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o ^= b;
                    }
                }
            }
        }
    }

    /// The Method-of-Four-Russians product: rows of `B` are processed in
    /// blocks of 8; per block all 256 XOR combinations are tabulated
    /// incrementally (one row XOR per entry), then every row of `A` consumes
    /// 8 of its columns with a single table lookup. Blocks are grouped into
    /// cache-sized tiles ([`M4R_TILE_BYTES`]) so each output row is loaded
    /// and stored once per tile instead of once per block.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_four_russians(&self, rhs: &BitMatrix<W>) -> BitMatrix<W> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 || rhs.rows == 0 || rhs.words_per_row == 0 {
            return out;
        }
        self.mul_f2_m4r_blocked_range(rhs, 0, &mut out.data);
        out
    }

    /// The pre-tiling Four-Russians walk (one table at a time, streaming
    /// the whole output matrix per block). Kept as the baseline the
    /// `kernels` bench bin compares the blocked kernel against; results are
    /// bit-identical to [`Self::mul_f2_four_russians`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_four_russians_unblocked(&self, rhs: &BitMatrix<W>) -> BitMatrix<W> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 || rhs.rows == 0 || rhs.words_per_row == 0 {
            return out;
        }
        self.mul_f2_m4r_range(rhs, 0, &mut out.data);
        out
    }

    /// Builds the 256-entry XOR-combination table of the `M4R_BLOCK` rows
    /// of `rhs` starting at row `base` into `table` (`256 * w` words).
    /// Entries are built incrementally — `table[idx] = table[idx without
    /// its lowest bit] ^ row(lowest bit)` — so every entry in
    /// `1..1 << size` is overwritten by plain assignment, `table[0]` is
    /// never written, and no reset between calls is needed (lookups are
    /// masked to `size` bits).
    fn m4r_build_table(rhs: &BitMatrix<W>, base: usize, size: usize, table: &mut [W]) {
        let w = rhs.words_per_row;
        for idx in 1usize..1 << size {
            let low = idx.trailing_zeros() as usize;
            let rest = idx & (idx - 1);
            let b_row = (base + low) * w;
            for wi in 0..w {
                table[idx * w + wi] = table[rest * w + wi] ^ rhs.data[b_row + wi];
            }
        }
    }

    /// The unblocked Four-Russians kernel restricted to output rows
    /// `row0..`: one table at a time, every output row touched per block.
    fn mul_f2_m4r_range(&self, rhs: &BitMatrix<W>, row0: usize, out_chunk: &mut [W]) {
        let w = rhs.words_per_row;
        let chunk_rows = out_chunk.len() / w;
        let mut table = vec![W::ZERO; (1 << M4R_BLOCK) * w];
        for block in 0..rhs.rows.div_ceil(M4R_BLOCK) {
            let base = block * M4R_BLOCK;
            let size = M4R_BLOCK.min(rhs.rows - base);
            Self::m4r_build_table(rhs, base, size, &mut table);
            for r in 0..chunk_rows {
                let idx = self.extract_row_bits(row0 + r, base, size);
                if idx != 0 {
                    let out_row = &mut out_chunk[r * w..(r + 1) * w];
                    for (o, &t) in out_row.iter_mut().zip(&table[idx * w..(idx + 1) * w]) {
                        *o ^= t;
                    }
                }
            }
        }
    }

    /// The cache-blocked Four-Russians kernel restricted to output rows
    /// `row0..` — the unit the threaded dispatcher hands to each worker
    /// (each worker builds its own tile of tables, so workers share nothing
    /// mutable). Blocks are grouped into tiles of [`M4R_TILE_BYTES`] of
    /// tables; per tile, every output row of the chunk is loaded once,
    /// combined with one lookup per block in the tile, and stored once.
    fn mul_f2_m4r_blocked_range(&self, rhs: &BitMatrix<W>, row0: usize, out_chunk: &mut [W]) {
        let tile = m4r_tile_blocks(rhs.words_per_row, W::BYTES);
        self.mul_f2_m4r_tiled_range(rhs, row0, out_chunk, tile);
    }

    /// [`Self::mul_f2_m4r_blocked_range`] with an explicit tile size in
    /// blocks (the tuning axis behind [`M4R_TILE_BYTES`]).
    fn mul_f2_m4r_tiled_range(
        &self,
        rhs: &BitMatrix<W>,
        row0: usize,
        out_chunk: &mut [W],
        tile: usize,
    ) {
        let w = rhs.words_per_row;
        let chunk_rows = out_chunk.len() / w;
        let table_words = (1usize << M4R_BLOCK) * w;
        let blocks = rhs.rows.div_ceil(M4R_BLOCK);
        let tile = tile.clamp(1, blocks);
        // Output rows are swept in chunks sized to stay L1-resident across
        // every table of the tile, so each table pass is a tight sequential
        // sweep (the same inner-loop shape as the unblocked kernel) while
        // the output chunk is loaded from cache, not memory, per table.
        let row_tile = (M4R_ROW_TILE_BYTES / (w * W::BYTES).max(1)).max(1);
        let mut tables = vec![W::ZERO; tile * table_words];
        let mut b0 = 0usize;
        while b0 < blocks {
            let in_tile = tile.min(blocks - b0);
            for (t, table) in tables.chunks_mut(table_words).take(in_tile).enumerate() {
                let base = (b0 + t) * M4R_BLOCK;
                let size = M4R_BLOCK.min(rhs.rows - base);
                Self::m4r_build_table(rhs, base, size, table);
            }
            let mut r0 = 0usize;
            while r0 < chunk_rows {
                let rows_here = row_tile.min(chunk_rows - r0);
                for (t, table) in tables.chunks_exact(table_words).take(in_tile).enumerate() {
                    let base = (b0 + t) * M4R_BLOCK;
                    let size = M4R_BLOCK.min(rhs.rows - base);
                    for r in r0..r0 + rows_here {
                        let idx = self.extract_row_bits(row0 + r, base, size);
                        if idx != 0 {
                            let out_row = &mut out_chunk[r * w..(r + 1) * w];
                            for (o, &v) in out_row.iter_mut().zip(&table[idx * w..idx * w + w]) {
                                *o ^= v;
                            }
                        }
                    }
                }
                r0 += rows_here;
            }
            b0 += in_tile;
        }
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> BitMatrix<W> {
        let mut out = BitMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for (wi, &word) in self.row_words(i).iter().enumerate() {
                let mut bits = word;
                while bits != W::ZERO {
                    let j = wi * W::BITS + bits.trailing_zeros() as usize;
                    bits = bits.clear_lowest_set_bit();
                    out.data[j * out.words_per_row + i / W::BITS] |= W::bit(i % W::BITS);
                }
            }
        }
        out
    }

    /// The `rows × cols` block starting at `(row0, col0)`, extracted with
    /// word shifts (`W::BITS` columns per operation).
    ///
    /// # Panics
    ///
    /// Panics if the block reaches past the matrix.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> BitMatrix<W> {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "block {rows}×{cols} at ({row0},{col0}) exceeds {}×{}",
            self.rows,
            self.cols
        );
        let mut out = BitMatrix::zeros(rows, cols);
        if cols == 0 {
            return out;
        }
        let word_off = col0 / W::BITS;
        let bit_off = col0 % W::BITS;
        for i in 0..rows {
            let src = self.row_words(row0 + i);
            let dst = &mut out.data[i * out.words_per_row..(i + 1) * out.words_per_row];
            for (wi, d) in dst.iter_mut().enumerate() {
                let lo = src.get(word_off + wi).copied().unwrap_or(W::ZERO) >> bit_off;
                let hi = if bit_off > 0 {
                    src.get(word_off + wi + 1).copied().unwrap_or(W::ZERO) << (W::BITS - bit_off)
                } else {
                    W::ZERO
                };
                *d = lo | hi;
            }
            let rem = cols % W::BITS;
            if rem > 0 {
                if let Some(last) = dst.last_mut() {
                    *last &= W::mask_low(rem);
                }
            }
        }
        out
    }

    /// The matrix zero-extended to `rows × cols` (entries keep their
    /// positions; new cells are zero).
    ///
    /// # Panics
    ///
    /// Panics if either dimension shrinks.
    pub fn padded(&self, rows: usize, cols: usize) -> BitMatrix<W> {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "cannot pad {}×{} down to {rows}×{cols}",
            self.rows,
            self.cols
        );
        let mut out = BitMatrix::zeros(rows, cols);
        for i in 0..self.rows {
            out.data[i * out.words_per_row..i * out.words_per_row + self.words_per_row]
                .copy_from_slice(self.row_words(i));
        }
        out
    }

    /// Overwrites the block at `(row0, col0)` with `block` (the inverse of
    /// [`Self::submatrix`]). Word-aligned column offsets copy whole words;
    /// unaligned offsets fall back to per-bit writes.
    ///
    /// # Panics
    ///
    /// Panics if the block reaches past the matrix.
    pub fn paste(&mut self, row0: usize, col0: usize, block: &BitMatrix<W>) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "block {}×{} at ({row0},{col0}) exceeds {}×{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        if block.is_empty() {
            return;
        }
        if col0.is_multiple_of(W::BITS) {
            let word0 = col0 / W::BITS;
            let rem = block.cols % W::BITS;
            for i in 0..block.rows {
                let src = block.row_words(i);
                let dst = &mut self.row_words_mut(row0 + i)[word0..word0 + src.len()];
                if rem == 0 {
                    dst.copy_from_slice(src);
                } else {
                    let (full, last) = src.split_at(src.len() - 1);
                    dst[..full.len()].copy_from_slice(full);
                    let mask = W::mask_low(rem);
                    dst[full.len()] = (dst[full.len()] & !mask) | (last[0] & mask);
                }
            }
        } else {
            for i in 0..block.rows {
                for j in 0..block.cols {
                    self.set(row0 + i, col0 + j, block.get(i, j));
                }
            }
        }
    }

    /// The matrix product over `F₂` by Strassen's recursion: operands are
    /// padded once to [`strassen_padded_dim`] at depth [`strassen_levels`],
    /// each level trades one of the eight block products for a constant
    /// number of word-parallel XOR passes (subtraction *is* addition over
    /// `F₂`, so no widths grow), and the leaves bottom out in the
    /// [`Self::mul_f2`] dispatcher. Below [`STRASSEN_MIN_DIM`] this *is*
    /// [`Self::mul_f2`]; results are bit-identical on every path.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_strassen(&self, rhs: &BitMatrix<W>) -> BitMatrix<W> {
        self.mul_f2_strassen_with_threads(rhs, par::threads())
    }

    /// [`Self::mul_f2_strassen`] with an explicit worker budget for the leaf
    /// products (1 forces the serial path; the result is identical at every
    /// worker count).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_strassen_with_threads(&self, rhs: &BitMatrix<W>, threads: usize) -> BitMatrix<W> {
        let d = self.rows.max(self.cols).max(rhs.cols);
        self.mul_f2_strassen_with_levels(rhs, strassen_levels(d), threads)
    }

    /// [`Self::mul_f2_strassen`] at an explicit recursion depth — the
    /// dispatch seam behind [`strassen_levels`], public so tests and the
    /// `kernels` bench bin can force recursion on dimensions below the
    /// crossover and compare depths.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_f2_strassen_with_levels(
        &self,
        rhs: &BitMatrix<W>,
        levels: u32,
        threads: usize,
    ) -> BitMatrix<W> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        if levels == 0 {
            return self.mul_f2_with_threads(rhs, threads);
        }
        let d = self.rows.max(self.cols).max(rhs.cols);
        let p = strassen_padded_dim(d, levels);
        let a = self.padded(p, p);
        let b = rhs.padded(p, p);
        let c = Self::strassen_split(&a, &b, levels, threads);
        c.submatrix(0, 0, self.rows, rhs.cols)
    }

    /// One Strassen level on square power-aligned operands: seven recursive
    /// half-dimension products combined with XOR passes.
    fn strassen_split(a: &BitMatrix<W>, b: &BitMatrix<W>, levels: u32, threads: usize) -> Self {
        if levels == 0 {
            return a.mul_f2_with_threads(b, threads);
        }
        let h = a.rows / 2;
        let a11 = a.submatrix(0, 0, h, h);
        let a12 = a.submatrix(0, h, h, h);
        let a21 = a.submatrix(h, 0, h, h);
        let a22 = a.submatrix(h, h, h, h);
        let b11 = b.submatrix(0, 0, h, h);
        let b12 = b.submatrix(0, h, h, h);
        let b21 = b.submatrix(h, 0, h, h);
        let b22 = b.submatrix(h, h, h, h);
        let rec = |x: &Self, y: &Self| Self::strassen_split(x, y, levels - 1, threads);
        let m1 = rec(&a11.xor(&a22), &b11.xor(&b22));
        let m2 = rec(&a21.xor(&a22), &b11);
        let m3 = rec(&a11, &b12.xor(&b22));
        let m4 = rec(&a22, &b21.xor(&b11));
        let m5 = rec(&a11.xor(&a12), &b22);
        let m6 = rec(&a21.xor(&a11), &b11.xor(&b12));
        let m7 = rec(&a12.xor(&a22), &b21.xor(&b22));
        let mut out = BitMatrix::zeros(2 * h, 2 * h);
        out.paste(0, 0, &m1.xor(&m4).xor(&m5).xor(&m7));
        out.paste(0, h, &m3.xor(&m5));
        out.paste(h, 0, &m2.xor(&m4));
        out.paste(h, h, &m1.xor(&m2).xor(&m3).xor(&m6));
        out
    }

    /// The matrix product over the Boolean semiring `(∨, ∧)`: for every set
    /// bit `A[i][k]`, OR row `k` of `B` into output row `i` (`W::BITS`
    /// columns per word operation). From [`PAR_MIN_ROWS`] output rows the
    /// rows are split across the [`par::threads`] worker pool; results are
    /// identical at every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_bool(&self, rhs: &BitMatrix<W>) -> BitMatrix<W> {
        self.mul_bool_with_threads(rhs, par::threads())
    }

    /// [`Self::mul_bool`] with an explicit worker budget (1 forces the
    /// serial path).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_bool_with_threads(&self, rhs: &BitMatrix<W>, threads: usize) -> BitMatrix<W> {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let w = rhs.words_per_row;
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        if out.data.is_empty() {
            return out;
        }
        let workers = row_workers(self.rows, threads);
        par::for_each_chunk_mut(&mut out.data, w, workers, |start, chunk| {
            self.mul_bool_range(rhs, start / w, chunk);
        });
        out
    }

    /// The Boolean-semiring kernel restricted to output rows `row0..`.
    fn mul_bool_range(&self, rhs: &BitMatrix<W>, row0: usize, out_chunk: &mut [W]) {
        let w = rhs.words_per_row;
        for (r, out_row) in out_chunk.chunks_mut(w).enumerate() {
            let i = row0 + r;
            let a_row = &self.data[i * self.words_per_row..(i + 1) * self.words_per_row];
            for (wi, &word) in a_row.iter().enumerate() {
                let mut bits = word;
                while bits != W::ZERO {
                    let k = wi * W::BITS + bits.trailing_zeros() as usize;
                    bits = bits.clear_lowest_set_bit();
                    let b_row = &rhs.data[k * w..(k + 1) * w];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o |= b;
                    }
                }
            }
        }
    }

    /// The matrix product over the counting semiring `(+, ×)` of two 0/1
    /// matrices: `C[i][j] = |{k : A[i][k] ∧ B[k][j]}|`, computed as the
    /// popcount of `row_i(A) ∧ row_j(Bᵀ)` — `W::BITS` multiply-adds per
    /// AND+popcount pair.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn popcount_product(&self, rhs: &BitMatrix<W>) -> IntMatrix {
        self.popcount_product_with_threads(rhs, par::threads())
    }

    /// [`Self::popcount_product`] with an explicit worker budget (1 forces
    /// the serial path). The transpose of `rhs` is computed once and shared
    /// read-only by all workers.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn popcount_product_with_threads(&self, rhs: &BitMatrix<W>, threads: usize) -> IntMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let rhs_t = rhs.transpose();
        let mut out = IntMatrix::zeros(self.rows, rhs.cols);
        if out.data.is_empty() {
            return out;
        }
        let cols = rhs.cols;
        let workers = row_workers(self.rows, threads);
        par::for_each_chunk_mut(&mut out.data, cols, workers, |start, chunk| {
            let row0 = start / cols;
            for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                let a_row = self.row_words(row0 + r);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_col = rhs_t.row_words(j);
                    *o = a_row
                        .iter()
                        .zip(b_col)
                        .map(|(&a, &b)| u64::from((a & b).count_ones()))
                        .sum();
                }
            }
        });
        out
    }

    /// Extracts `len ≤ 8` bits of row `i` starting at column `start`
    /// (straddling at most two words).
    fn extract_row_bits(&self, i: usize, start: usize, len: usize) -> usize {
        debug_assert!(len <= M4R_BLOCK && start + len <= self.cols);
        let row = i * self.words_per_row;
        let word_idx = start / W::BITS;
        let bit_idx = start % W::BITS;
        let mut value = self.data[row + word_idx] >> bit_idx;
        if bit_idx + len > W::BITS {
            value |= self.data[row + word_idx + 1] << (W::BITS - bit_idx);
        }
        (value.low_u64() & ((1u64 << len) - 1)) as usize
    }
}

impl<W: Word> fmt::Debug for BitMatrix<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMatrix({}×{}, {} ones)",
            self.rows,
            self.cols,
            self.count_ones()
        )
    }
}

impl<W: Word> fmt::Display for BitMatrix<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{}", u8::from(self.get(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A dense matrix of small non-negative integers (row-major `u64` entries),
/// the operand type of the counting and `(min, +)` semirings used by the
/// algebraic clique protocols.
///
/// Entries are integer *values*, not lanes, so [`IntMatrix`] is not generic
/// over [`Word`]; its packed conversions go through the default-lane
/// [`BitMatrix`].
///
/// [`IntMatrix::INFINITY`] (`u64::MAX`) is the reserved "no path" value of
/// the `(min, +)` semiring; all arithmetic saturates below it, so finite
/// entries never collide with the sentinel.
///
/// # Examples
///
/// ```
/// use clique_sim::linalg::IntMatrix;
///
/// let a = IntMatrix::from_rows(&[vec![1, 0], vec![1, 1]]);
/// let c = a.mul_counting(&a);
/// assert_eq!(c.get(1, 0), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl IntMatrix {
    /// The reserved "unreachable" entry of the `(min, +)` semiring.
    pub const INFINITY: u64 = u64::MAX;

    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0u64; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: u64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Packs a rectangular `Vec<Vec<u64>>` row by row.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<u64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has length {}", row.len());
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize, value: u64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j] = value;
    }

    /// The entries of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable access to the entries of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        assert!(i < self.rows, "row {i} out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The largest entry strictly below [`Self::INFINITY`] (0 if there is
    /// none).
    pub fn max_finite(&self) -> u64 {
        self.data
            .iter()
            .copied()
            .filter(|&v| v != Self::INFINITY)
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if every entry is 0 or 1 (the fast-kernel precondition
    /// of [`Self::mul_counting`]).
    pub fn is_binary(&self) -> bool {
        self.data.iter().all(|&v| v <= 1)
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> IntMatrix {
        let mut out = IntMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// The `rows × cols` block starting at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block reaches past the matrix.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> IntMatrix {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "block {rows}×{cols} at ({row0},{col0}) exceeds {}×{}",
            self.rows,
            self.cols
        );
        let mut out = IntMatrix::zeros(rows, cols);
        for i in 0..rows {
            let src =
                &self.data[(row0 + i) * self.cols + col0..(row0 + i) * self.cols + col0 + cols];
            out.data[i * cols..(i + 1) * cols].copy_from_slice(src);
        }
        out
    }

    /// Packs a 0/1 matrix into a [`BitMatrix`].
    ///
    /// # Panics
    ///
    /// Panics if an entry exceeds 1.
    pub fn to_bitmatrix(&self) -> BitMatrix {
        assert!(self.is_binary(), "entries must be 0/1 to pack into bits");
        let mut m = BitMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            let words = m.row_words_mut(i);
            for (j, &v) in row.iter().enumerate() {
                if v == 1 {
                    words[j / <DefaultLane as Word>::BITS] |=
                        DefaultLane::bit(j % <DefaultLane as Word>::BITS);
                }
            }
        }
        m
    }

    /// Unpacks a [`BitMatrix`] into 0/1 integer entries.
    pub fn from_bitmatrix(m: &BitMatrix) -> IntMatrix {
        let mut out = IntMatrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            for (wi, &word) in m.row_words(i).iter().enumerate() {
                let mut bits = word;
                while bits != DefaultLane::ZERO {
                    let j = wi * <DefaultLane as Word>::BITS + bits.trailing_zeros() as usize;
                    bits = bits.clear_lowest_set_bit();
                    out.data[i * out.cols + j] = 1;
                }
            }
        }
        out
    }

    /// The matrix product over the counting semiring `(+, ×)`, saturating
    /// just below [`Self::INFINITY`]. 0/1 operands dispatch to the
    /// word-parallel AND+popcount kernel
    /// ([`BitMatrix::popcount_product`]); general entries use the schoolbook
    /// triple loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_counting(&self, rhs: &IntMatrix) -> IntMatrix {
        self.mul_counting_with_threads(rhs, par::threads())
    }

    /// [`Self::mul_counting`] with an explicit worker budget (1 forces the
    /// serial path; output rows are split across workers from
    /// [`PAR_MIN_ROWS`] rows up, with identical results at every count).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_counting_with_threads(&self, rhs: &IntMatrix, threads: usize) -> IntMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        if self.is_binary() && rhs.is_binary() {
            return self
                .to_bitmatrix()
                .popcount_product_with_threads(&rhs.to_bitmatrix(), threads);
        }
        let mut out = IntMatrix::zeros(self.rows, rhs.cols);
        if out.data.is_empty() {
            return out;
        }
        let cols = rhs.cols;
        let workers = row_workers(self.rows, threads);
        par::for_each_chunk_mut(&mut out.data, cols, workers, |start, chunk| {
            let row0 = start / cols;
            for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                for (k, &a) in self.row(row0 + r).iter().enumerate() {
                    if a == 0 {
                        continue;
                    }
                    for (o, &b) in out_row.iter_mut().zip(rhs.row(k)) {
                        *o = saturating_counting_add(*o, a.saturating_mul(b));
                    }
                }
            }
        });
        out
    }

    /// The matrix product over the tropical `(min, +)` semiring:
    /// `C[i][j] = min_k (A[i][k] + B[k][j])`, with [`Self::INFINITY`]
    /// absorbing addition and neutral for `min`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_min_plus(&self, rhs: &IntMatrix) -> IntMatrix {
        self.mul_min_plus_with_threads(rhs, par::threads())
    }

    /// [`Self::mul_min_plus`] with an explicit worker budget (1 forces the
    /// serial path; output rows are split across workers from
    /// [`PAR_MIN_ROWS`] rows up, with identical results at every count).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_min_plus_with_threads(&self, rhs: &IntMatrix, threads: usize) -> IntMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = IntMatrix::filled(self.rows, rhs.cols, Self::INFINITY);
        if out.data.is_empty() {
            return out;
        }
        let cols = rhs.cols;
        let workers = row_workers(self.rows, threads);
        par::for_each_chunk_mut(&mut out.data, cols, workers, |start, chunk| {
            let row0 = start / cols;
            for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                for (k, &a) in self.row(row0 + r).iter().enumerate() {
                    if a == Self::INFINITY {
                        continue;
                    }
                    for (o, &b) in out_row.iter_mut().zip(rhs.row(k)) {
                        *o = (*o).min(min_plus_add(a, b));
                    }
                }
            }
        });
        out
    }

    /// The matrix product over `ℤ/2⁶⁴` (wrapping multiply-accumulate):
    /// entries are treated as two's-complement integers, so the result is
    /// the exact integer product whenever the true values fit `i64` — the
    /// local leaf kernel of the distributed Strassen schedule, whose
    /// intermediate block combinations are signed even though the semiring
    /// operands are not.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_wrapping(&self, rhs: &IntMatrix) -> IntMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions differ: {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = IntMatrix::zeros(self.rows, rhs.cols);
        for (r, out_row) in out.data.chunks_mut(rhs.cols.max(1)).enumerate() {
            for (k, &a) in self.row(r).iter().enumerate() {
                if a == 0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(rhs.row(k)) {
                    *o = o.wrapping_add(a.wrapping_mul(b));
                }
            }
        }
        out
    }

    /// The matrix extended to `rows × cols` with every new cell set to
    /// `fill` (entries keep their positions).
    ///
    /// # Panics
    ///
    /// Panics if either dimension shrinks.
    pub fn padded(&self, rows: usize, cols: usize, fill: u64) -> IntMatrix {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "cannot pad {}×{} down to {rows}×{cols}",
            self.rows,
            self.cols
        );
        let mut out = IntMatrix::filled(rows, cols, fill);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
        }
        out
    }
}

/// Counting-semiring addition saturating strictly below
/// [`IntMatrix::INFINITY`], so sums never collide with the `(min, +)`
/// sentinel.
pub fn saturating_counting_add(a: u64, b: u64) -> u64 {
    a.saturating_add(b).min(IntMatrix::INFINITY - 1)
}

/// `(min, +)` addition: [`IntMatrix::INFINITY`] absorbs, finite sums
/// saturate strictly below it.
pub fn min_plus_add(a: u64, b: u64) -> u64 {
    if a == IntMatrix::INFINITY || b == IntMatrix::INFINITY {
        IntMatrix::INFINITY
    } else {
        saturating_counting_add(a, b)
    }
}

impl fmt::Debug for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IntMatrix({}×{}, max finite {})",
            self.rows,
            self.cols,
            self.max_finite()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perf probe behind `--ignored`: times the tiled Four-Russians walk at
    /// several tile sizes so [`M4R_TILE_BYTES`] can be re-tuned per host.
    #[test]
    #[ignore = "perf probe; run with --ignored --nocapture on a quiet host"]
    fn probe_tile_sizes() {
        for d in [512usize, 1024, 2048] {
            let a = pseudo_random::<u64>(d, d, 0xA5);
            let b = pseudo_random::<u64>(d, d, 0x5A);
            let w = b.words_per_row;
            let mut out = vec![0u64; d * w];
            let reps = (64 * 1024 * 1024 / (d * d / 8)).clamp(3, 50);
            // Interleave the contenders across many short passes so slow
            // drift on a noisy host biases every variant equally.
            let variants: &[Option<usize>] = &[None, Some(1), Some(2), Some(4), Some(8), Some(16)];
            let mut totals = vec![0f64; variants.len()];
            for _ in 0..reps {
                for (v, variant) in variants.iter().enumerate() {
                    out.iter_mut().for_each(|o| *o = 0);
                    let start = std::time::Instant::now();
                    match variant {
                        None => a.mul_f2_m4r_range(&b, 0, &mut out),
                        Some(tile) => a.mul_f2_m4r_tiled_range(&b, 0, &mut out, *tile),
                    }
                    totals[v] += start.elapsed().as_nanos() as f64;
                    std::hint::black_box(&out);
                }
            }
            for (v, variant) in variants.iter().enumerate() {
                let label = match variant {
                    None => "unblocked".to_owned(),
                    Some(tile) => {
                        format!(
                            "tile={tile} ({} KiB)",
                            tile * (1 << M4R_BLOCK) * w * 8 / 1024
                        )
                    }
                };
                println!(
                    "d={d} {label}: {:.0} ns",
                    totals[v] / f64::from(reps as u32)
                );
            }
        }
    }

    /// The bool-at-a-time product the packed kernels must agree with.
    fn scalar_product<W: Word>(a: &BitMatrix<W>, b: &BitMatrix<W>) -> BitMatrix<W> {
        let mut out = BitMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = false;
                for k in 0..a.cols() {
                    acc ^= a.get(i, k) & b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn pseudo_random<W: Word>(rows: usize, cols: usize, seed: u64) -> BitMatrix<W> {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(i, j, state >> 62 & 1 == 1);
            }
        }
        m
    }

    #[test]
    fn round_trips_between_representations() {
        let rows = vec![
            vec![true, false, true],
            vec![false, false, false],
            vec![true, true, true],
        ];
        let m = BitMatrix::<DefaultLane>::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
        assert_eq!((m.rows(), m.cols()), (3, 3));
        assert_eq!(m.count_ones(), 5);
        let flat: Vec<bool> = rows.iter().flatten().copied().collect();
        assert_eq!(BitMatrix::from_row_major(3, 3, &flat), m);
        assert_eq!(m.row_bits(0).to_bools(), rows[0]);
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let mut m = BitMatrix::<DefaultLane>::zeros(2, 130);
        m.set(0, 0, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        m.set(1, 129, true);
        assert!(m.get(0, 0) && m.get(0, 63) && m.get(0, 64) && m.get(1, 129));
        assert_eq!(m.count_ones(), 4);
        m.set(0, 64, false);
        assert!(!m.get(0, 64));
        assert_eq!(m.count_ones(), 3);
    }

    fn kernels_match_scalar_for<W: Word>() {
        for (ra, c, cb, seed) in [
            (1usize, 1usize, 1usize, 1u64),
            (3, 5, 4, 2),
            (17, 64, 9, 3),
            (8, 65, 70, 4),
            (20, 130, 20, 5),
        ] {
            let a = pseudo_random::<W>(ra, c, seed);
            let b = pseudo_random::<W>(c, cb, seed + 100);
            let expected = scalar_product(&a, &b);
            assert_eq!(a.mul_f2_word(&b), expected, "word kernel {ra}x{c}x{cb}");
            assert_eq!(
                a.mul_f2_four_russians(&b),
                expected,
                "four russians {ra}x{c}x{cb}"
            );
            assert_eq!(
                a.mul_f2_four_russians_unblocked(&b),
                expected,
                "unblocked four russians {ra}x{c}x{cb}"
            );
            assert_eq!(a.mul_f2(&b), expected, "dispatch {ra}x{c}x{cb}");
        }
    }

    #[test]
    fn both_kernels_match_the_scalar_product() {
        kernels_match_scalar_for::<u64>();
        kernels_match_scalar_for::<u128>();
    }

    #[test]
    fn blocked_four_russians_matches_unblocked_above_threshold() {
        // Above FOUR_RUSSIANS_MIN_DIM several tiles are in play; rectangular
        // shapes exercise partial last blocks and partial last tiles.
        for (ra, c, cb, seed) in [
            (FOUR_RUSSIANS_MIN_DIM, FOUR_RUSSIANS_MIN_DIM, 60usize, 71u64),
            (40, 300, 333, 72),
        ] {
            let a = pseudo_random::<u64>(ra, c, seed);
            let b = pseudo_random::<u64>(c, cb, seed + 100);
            assert_eq!(
                a.mul_f2_four_russians(&b),
                a.mul_f2_four_russians_unblocked(&b),
                "{ra}x{c}x{cb}"
            );
        }
    }

    #[test]
    fn dispatch_threshold_selects_the_expected_kernel() {
        assert!(!BitMatrix::<u64>::dispatches_to_four_russians(0));
        assert!(!BitMatrix::<u64>::dispatches_to_four_russians(
            FOUR_RUSSIANS_MIN_DIM - 1
        ));
        assert!(BitMatrix::<u64>::dispatches_to_four_russians(
            FOUR_RUSSIANS_MIN_DIM
        ));
        // And the routed kernel agrees with the other path at the threshold.
        let d = FOUR_RUSSIANS_MIN_DIM;
        let a = pseudo_random::<DefaultLane>(4, d, 7);
        let b = pseudo_random(d, 4, 8);
        assert_eq!(a.mul_f2(&b), a.mul_f2_word(&b));
    }

    #[test]
    fn identity_is_neutral() {
        let m = pseudo_random::<DefaultLane>(9, 9, 11);
        let id = BitMatrix::identity(9);
        assert_eq!(m.mul_f2(&id), m);
        assert_eq!(id.mul_f2(&m), m);
    }

    #[test]
    fn mask_columns_zeroes_unselected_columns() {
        let m = pseudo_random::<DefaultLane>(5, 70, 13);
        let mask: Vec<bool> = (0..70).map(|j| j % 3 != 0).collect();
        let masked = m.mask_columns(&mask);
        for i in 0..5 {
            for (j, &keep) in mask.iter().enumerate() {
                assert_eq!(masked.get(i, j), m.get(i, j) && keep);
            }
        }
    }

    #[test]
    fn xor_is_elementwise() {
        let a = pseudo_random::<DefaultLane>(4, 66, 17);
        let b = pseudo_random(4, 66, 19);
        let c = a.xor(&b);
        for i in 0..4 {
            for j in 0..66 {
                assert_eq!(c.get(i, j), a.get(i, j) ^ b.get(i, j));
            }
        }
        assert!(a.xor(&a).count_ones() == 0);
    }

    fn set_row_words_masks_padding_for<W: Word>() {
        let mut m = BitMatrix::<W>::zeros(2, 70);
        let words = vec![W::ONES; 70usize.div_ceil(W::BITS)];
        m.set_row_words(1, &words);
        assert_eq!(m.count_ones(), 70);
        let rem = 70 % W::BITS;
        assert_eq!(
            *m.row_words(1).last().unwrap() & !W::mask_low(rem),
            W::ZERO,
            "padding bits must stay zero"
        );
    }

    #[test]
    fn set_row_words_masks_padding() {
        set_row_words_masks_padding_for::<u64>();
        set_row_words_masks_padding_for::<u128>();
    }

    #[test]
    fn empty_matrices_multiply() {
        let a = BitMatrix::<DefaultLane>::zeros(0, 5);
        let b = BitMatrix::zeros(5, 3);
        assert_eq!(a.mul_f2(&b).rows(), 0);
        let a = BitMatrix::<DefaultLane>::zeros(3, 0);
        let b = BitMatrix::zeros(0, 4);
        let c = a.mul_f2(&b);
        assert_eq!((c.rows(), c.cols()), (3, 4));
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dimensions_panic() {
        let a = BitMatrix::<DefaultLane>::zeros(2, 3);
        let b = BitMatrix::zeros(4, 2);
        let _ = a.mul_f2(&b);
    }

    #[test]
    fn debug_and_display_are_informative() {
        let m = BitMatrix::<DefaultLane>::identity(2);
        assert_eq!(format!("{m:?}"), "BitMatrix(2×2, 2 ones)");
        assert_eq!(m.to_string(), "10\n01\n");
    }

    #[test]
    fn transpose_round_trips_and_flips_entries() {
        let m = pseudo_random::<DefaultLane>(7, 130, 23);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (130, 7));
        for i in 0..7 {
            for j in 0..130 {
                assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    fn submatrix_blocks_for<W: Word>() {
        let m = pseudo_random::<W>(10, 200, 29);
        for (r0, c0, rows, cols) in [
            (0, 0, 10, 200),
            (3, 60, 4, 70),
            (2, 129, 5, 9),
            (0, 5, 0, 3),
        ] {
            let s = m.submatrix(r0, c0, rows, cols);
            assert_eq!((s.rows(), s.cols()), (rows, cols));
            for i in 0..rows {
                for j in 0..cols {
                    assert_eq!(s.get(i, j), m.get(r0 + i, c0 + j), "({i},{j})");
                }
            }
            // The BitMatrix invariant: no bits past `cols`.
            let rem = cols % W::BITS;
            if rem > 0 {
                for i in 0..rows {
                    assert_eq!(*s.row_words(i).last().unwrap() & !W::mask_low(rem), W::ZERO);
                }
            }
        }
    }

    #[test]
    fn submatrix_extracts_blocks_across_word_boundaries() {
        submatrix_blocks_for::<u64>();
        submatrix_blocks_for::<u128>();
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn submatrix_rejects_out_of_range_blocks() {
        let _ = BitMatrix::<DefaultLane>::zeros(3, 3).submatrix(1, 1, 3, 2);
    }

    fn paste_round_trips_for<W: Word>() {
        let m = pseudo_random::<W>(12, 300, 131);
        // Aligned and unaligned column offsets, straddling word boundaries.
        for (r0, c0, rows, cols) in [
            (0usize, 0usize, 12usize, 300usize),
            (2, W::BITS, 5, W::BITS),
            (3, W::BITS, 4, W::BITS + 7),
            (1, 37, 6, 91),
            (4, 129, 3, 70),
        ] {
            let block = m.submatrix(r0, c0, rows, cols);
            let mut target = pseudo_random::<W>(12, 300, 132);
            let before = target.clone();
            target.paste(r0, c0, &block);
            for i in 0..12 {
                for j in 0..300 {
                    let inside = (r0..r0 + rows).contains(&i) && (c0..c0 + cols).contains(&j);
                    let expected = if inside {
                        m.get(i, j)
                    } else {
                        before.get(i, j)
                    };
                    assert_eq!(target.get(i, j), expected, "({i},{j}) block at ({r0},{c0})");
                }
            }
        }
    }

    #[test]
    fn paste_writes_blocks_and_preserves_surroundings() {
        paste_round_trips_for::<u64>();
        paste_round_trips_for::<u128>();
    }

    #[test]
    fn padded_zero_extends() {
        let m = pseudo_random::<DefaultLane>(5, 70, 141);
        let p = m.padded(9, 133);
        assert_eq!((p.rows(), p.cols()), (9, 133));
        assert_eq!(p.submatrix(0, 0, 5, 70), m);
        assert_eq!(p.count_ones(), m.count_ones());
    }

    #[test]
    fn strassen_levels_and_padding_follow_the_single_seam() {
        // The crossover: no split below STRASSEN_MIN_DIM, one per halving
        // above it.
        assert_eq!(strassen_levels(0), 0);
        assert_eq!(strassen_levels(STRASSEN_MIN_DIM - 1), 0);
        assert_eq!(strassen_levels(STRASSEN_MIN_DIM), 1);
        assert_eq!(strassen_levels(2 * STRASSEN_MIN_DIM - 1), 2);
        // Bounded-depth padding rounds to a multiple of 2^levels; the
        // full-recursion depth reproduces the circuit path's
        // next-power-of-two rule exactly.
        assert_eq!(strassen_padded_dim(13, 0), 13);
        assert_eq!(strassen_padded_dim(13, 2), 16);
        assert_eq!(strassen_padded_dim(16, 2), 16);
        for d in 1..=70usize {
            assert_eq!(
                strassen_padded_dim(d, strassen_full_levels(d)),
                d.next_power_of_two(),
                "d = {d}"
            );
        }
    }

    fn strassen_matches_dispatch_for<W: Word>() {
        // Forced recursion on sizes far below the crossover keeps the test
        // cheap while exercising padding (non-power-of-two dims),
        // rectangularity and multi-level splits.
        for (ra, c, cb, levels, seed) in [
            (1usize, 1usize, 1usize, 1u32, 151u64),
            (37, 37, 37, 1, 152),
            (64, 64, 64, 2, 153),
            (45, 90, 33, 2, 154),
            (100, 70, 129, 3, 155),
        ] {
            let a = pseudo_random::<W>(ra, c, seed);
            let b = pseudo_random::<W>(c, cb, seed + 50);
            assert_eq!(
                a.mul_f2_strassen_with_levels(&b, levels, 1),
                a.mul_f2(&b),
                "strassen {ra}x{c}x{cb} levels={levels}"
            );
        }
    }

    #[test]
    fn strassen_product_matches_the_dispatcher_at_every_depth() {
        strassen_matches_dispatch_for::<u64>();
        strassen_matches_dispatch_for::<u128>();
    }

    #[test]
    fn strassen_dispatch_below_crossover_is_the_plain_dispatcher() {
        // Below STRASSEN_MIN_DIM the public entry point must not pad or
        // split at all — identical to mul_f2 by construction.
        let d = 90;
        let a = pseudo_random::<DefaultLane>(d, d, 161);
        let b = pseudo_random(d, d, 162);
        assert_eq!(strassen_levels(d), 0);
        assert_eq!(a.mul_f2_strassen(&b), a.mul_f2(&b));
    }

    #[test]
    fn boolean_product_matches_scalar_or_and() {
        for (ra, c, cb, seed) in [
            (1usize, 1usize, 1usize, 31u64),
            (5, 70, 6, 32),
            (9, 130, 9, 33),
        ] {
            let a = pseudo_random::<DefaultLane>(ra, c, seed);
            let b = pseudo_random(c, cb, seed + 50);
            let got = a.mul_bool(&b);
            for i in 0..ra {
                for j in 0..cb {
                    let expected = (0..c).any(|k| a.get(i, k) && b.get(k, j));
                    assert_eq!(got.get(i, j), expected, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn popcount_product_counts_witnesses() {
        for (ra, c, cb, seed) in [
            (1usize, 1usize, 1usize, 41u64),
            (6, 65, 7, 42),
            (8, 128, 8, 43),
        ] {
            let a = pseudo_random::<DefaultLane>(ra, c, seed);
            let b = pseudo_random(c, cb, seed + 50);
            let got = a.popcount_product(&b);
            for i in 0..ra {
                for j in 0..cb {
                    let expected = (0..c).filter(|&k| a.get(i, k) && b.get(k, j)).count() as u64;
                    assert_eq!(got.get(i, j), expected, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn lane_widths_agree_on_every_kernel() {
        // The lanes-never-change-results invariant at the kernel level: the
        // same logical matrices multiplied at u64 and u128 lanes.
        for (ra, c, cb, seed) in [(9usize, 70usize, 13usize, 97u64), (20, 300, 20, 98)] {
            let a64 = pseudo_random::<u64>(ra, c, seed);
            let b64 = pseudo_random::<u64>(c, cb, seed + 1);
            let a128 = pseudo_random::<u128>(ra, c, seed);
            let b128 = pseudo_random::<u128>(c, cb, seed + 1);
            assert_eq!(a64.to_rows(), a128.to_rows(), "inputs must agree");
            assert_eq!(
                a64.mul_f2(&b64).to_rows(),
                a128.mul_f2(&b128).to_rows(),
                "mul_f2 {ra}x{c}x{cb}"
            );
            assert_eq!(
                a64.mul_bool(&b64).to_rows(),
                a128.mul_bool(&b128).to_rows(),
                "mul_bool {ra}x{c}x{cb}"
            );
            assert_eq!(
                a64.popcount_product(&b64),
                a128.popcount_product(&b128),
                "popcount {ra}x{c}x{cb}"
            );
            assert_eq!(
                a64.transpose().to_rows(),
                a128.transpose().to_rows(),
                "transpose"
            );
            assert_eq!(
                a64.submatrix(1, 3, 5, 60).to_rows(),
                a128.submatrix(1, 3, 5, 60).to_rows(),
                "submatrix"
            );
        }
    }

    fn pseudo_random_ints(rows: usize, cols: usize, max: u64, seed: u64) -> IntMatrix {
        let mut m = IntMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m.set(i, j, (state >> 33) % (max + 1));
            }
        }
        m
    }

    #[test]
    fn int_matrix_round_trips_and_blocks() {
        let rows = vec![vec![3u64, 0, 7], vec![1, 2, 5]];
        let m = IntMatrix::from_rows(&rows);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.row(0), &[3, 0, 7]);
        assert_eq!(m.max_finite(), 7);
        assert!(!m.is_binary());
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 0), 7);
        let s = m.submatrix(0, 1, 2, 2);
        assert_eq!(s, IntMatrix::from_rows(&[vec![0, 7], vec![2, 5]]));
        assert_eq!(format!("{m:?}"), "IntMatrix(2×3, max finite 7)");
    }

    #[test]
    fn binary_int_matrices_round_trip_through_bits() {
        let m = pseudo_random_ints(5, 70, 1, 51);
        assert!(m.is_binary());
        let packed = m.to_bitmatrix();
        assert_eq!(IntMatrix::from_bitmatrix(&packed), m);
    }

    #[test]
    fn counting_product_popcount_path_matches_triple_loop() {
        // 0/1 operands dispatch to the AND+popcount kernel; force the
        // schoolbook path via a non-binary clone and compare.
        let a = pseudo_random_ints(6, 67, 1, 61);
        let b = pseudo_random_ints(67, 5, 1, 62);
        let fast = a.mul_counting(&b);
        let mut a_slow = a.clone();
        a_slow.set(0, 0, a.get(0, 0) + 2); // breaks is_binary
        let mut slow = a_slow.mul_counting(&b);
        // Undo the perturbation's effect on row 0.
        for j in 0..5 {
            let delta = 2 * b.get(0, j);
            let v = slow.get(0, j) - delta;
            slow.set(0, j, v);
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn counting_product_saturates_below_infinity() {
        let a = IntMatrix::filled(1, 2, u64::MAX - 1);
        let b = IntMatrix::filled(2, 1, u64::MAX - 1);
        let c = a.mul_counting(&b);
        assert_eq!(c.get(0, 0), IntMatrix::INFINITY - 1);
    }

    #[test]
    fn min_plus_product_matches_shortest_two_hop_paths() {
        let inf = IntMatrix::INFINITY;
        let a = IntMatrix::from_rows(&[vec![0, 1, inf], vec![1, 0, 4], vec![inf, 4, 0]]);
        let sq = a.mul_min_plus(&a);
        assert_eq!(
            sq,
            IntMatrix::from_rows(&[vec![0, 1, 5], vec![1, 0, 4], vec![5, 4, 0]])
        );
        // INFINITY absorbs addition and is neutral for min.
        assert_eq!(min_plus_add(inf, 3), inf);
        assert_eq!(min_plus_add(7, 8), 15);
        assert_eq!(saturating_counting_add(u64::MAX - 3, 10), inf - 1);
    }

    #[test]
    fn min_plus_on_all_infinite_matrices_stays_infinite() {
        let a = IntMatrix::filled(3, 3, IntMatrix::INFINITY);
        assert_eq!(a.mul_min_plus(&a), a);
        assert_eq!(a.max_finite(), 0);
    }

    #[test]
    fn wrapping_product_is_exact_integer_arithmetic_with_signs() {
        // Non-negative operands agree with the counting product (no
        // saturation in range)...
        let a = pseudo_random_ints(7, 9, 6, 171);
        let b = pseudo_random_ints(9, 5, 6, 172);
        assert_eq!(a.mul_wrapping(&b), a.mul_counting(&b));
        // ...and two's-complement entries multiply as signed integers: with
        // A = [2, -3] and B = [[5], [1]], C = 2·5 − 3·1 = 7.
        let a = IntMatrix::from_rows(&[vec![2, (-3i64) as u64]]);
        let b = IntMatrix::from_rows(&[vec![5], vec![1]]);
        assert_eq!(a.mul_wrapping(&b).get(0, 0), 7);
        // A negative result round-trips through the representation:
        // 1·5 − 6·1 = −1.
        let a = IntMatrix::from_rows(&[vec![1, (-6i64) as u64]]);
        assert_eq!(a.mul_wrapping(&b).get(0, 0) as i64, -1);
    }

    #[test]
    fn int_padding_fills_new_cells() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let p = m.padded(3, 4, 9);
        assert_eq!(p.submatrix(0, 0, 2, 2), m);
        assert_eq!(p.get(2, 3), 9);
        assert_eq!(p.get(0, 2), 9);
    }

    #[test]
    fn threaded_bit_products_match_serial_at_any_worker_count() {
        // Above the PAR_MIN_ROWS seam and (for the dispatcher) on both
        // sides of the Four-Russians threshold.
        for d in [PAR_MIN_ROWS + 5, FOUR_RUSSIANS_MIN_DIM] {
            let a = pseudo_random::<DefaultLane>(d, d, 81);
            let b = pseudo_random(d, d, 82);
            let f2 = a.mul_f2_with_threads(&b, 1);
            let or = a.mul_bool_with_threads(&b, 1);
            let pop = a.popcount_product_with_threads(&b, 1);
            for t in [2usize, 3, 8] {
                assert_eq!(a.mul_f2_with_threads(&b, t), f2, "f2 d={d} t={t}");
                assert_eq!(a.mul_bool_with_threads(&b, t), or, "bool d={d} t={t}");
                assert_eq!(
                    a.popcount_product_with_threads(&b, t),
                    pop,
                    "popcount d={d} t={t}"
                );
            }
        }
    }

    #[test]
    fn threaded_int_products_match_serial_at_any_worker_count() {
        let d = PAR_MIN_ROWS + 3;
        // Non-binary entries force the schoolbook counting path; the hop
        // matrix shape (0 diagonal / finite / INFINITY) covers (min, +).
        let a = pseudo_random_ints(d, d, 5, 91);
        let b = pseudo_random_ints(d, d, 5, 92);
        let mut hops = pseudo_random_ints(d, d, 2, 93);
        for i in 0..d {
            for j in 0..d {
                if hops.get(i, j) == 2 {
                    hops.set(i, j, IntMatrix::INFINITY);
                }
            }
        }
        let counting = a.mul_counting_with_threads(&b, 1);
        let binary = pseudo_random_ints(d, d, 1, 94);
        let counting_binary = binary.mul_counting_with_threads(&binary, 1);
        let tropical = hops.mul_min_plus_with_threads(&hops, 1);
        for t in [2usize, 5, 8] {
            assert_eq!(a.mul_counting_with_threads(&b, t), counting, "t={t}");
            assert_eq!(
                binary.mul_counting_with_threads(&binary, t),
                counting_binary,
                "binary t={t}"
            );
            assert_eq!(hops.mul_min_plus_with_threads(&hops, t), tropical, "t={t}");
        }
    }
}
