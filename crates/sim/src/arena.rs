//! Reusable backing storage for message [`BitString`]s.
//!
//! The engines build and tear down one outbox payload per node per round;
//! at scale that is millions of short-lived `Vec` allocations whose sizes
//! repeat every round. [`BufferArena`] keeps the word backings of consumed
//! messages in a small pool so the next round's payloads start from
//! already-sized allocations ([`BitString::from_recycled`] /
//! [`BitString::into_backing`]).
//!
//! The arena is a *host-side allocation strategy only*: an acquired buffer
//! is always logically empty (length 0 bits), so transcripts, ledgers and
//! checksums are identical with or without recycling — the same invariant
//! the lane width obeys (see [`lane`](crate::lane)).

use std::fmt;

use crate::bits::BitString;
use crate::lane::{DefaultLane, Word};

/// Default maximum number of pooled backings per arena. Round-engine
/// traffic peaks at one payload per (sender, receiver) pair in flight, so
/// a few hundred buffers cover the `n ≤ 256` experiment grid without
/// holding unbounded memory.
pub const DEFAULT_POOL_BUFFERS: usize = 256;

/// A pool of recycled word backings for message [`BitString`]s.
///
/// Buffers enter through [`recycle`](Self::recycle) (or
/// [`recycle_backing`](Self::recycle_backing)) and leave through
/// [`acquire`](Self::acquire); the pool never exceeds its configured
/// capacity, dropping excess buffers instead. [`stats`](Self::stats)
/// reports how often an acquire was served from the pool.
///
/// Cloning an arena yields a fresh, empty pool with the same capacity:
/// pooled memory is an engine-local cache, not state worth duplicating
/// (the engines derive `Clone` for snapshotting configuration, not
/// buffers).
pub struct BufferArena<W: Word = DefaultLane> {
    pool: Vec<Vec<W>>,
    capacity: usize,
    served_fresh: u64,
    served_reused: u64,
}

/// Reuse counters of a [`BufferArena`] (see [`BufferArena::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Acquires served by a fresh allocation (pool was empty).
    pub served_fresh: u64,
    /// Acquires served from the pool.
    pub served_reused: u64,
}

impl ArenaStats {
    /// Total number of acquires.
    pub fn total(&self) -> u64 {
        self.served_fresh + self.served_reused
    }
}

impl<W: Word> BufferArena<W> {
    /// Creates an empty arena with the default pool capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_POOL_BUFFERS)
    }

    /// Creates an empty arena holding at most `capacity` pooled backings.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            pool: Vec::new(),
            capacity,
            served_fresh: 0,
            served_reused: 0,
        }
    }

    /// Takes an empty [`BitString`], reusing a pooled backing when one is
    /// available.
    pub fn acquire(&mut self) -> BitString<W> {
        match self.pool.pop() {
            Some(backing) => {
                self.served_reused += 1;
                BitString::from_recycled(backing)
            }
            None => {
                self.served_fresh += 1;
                BitString::new()
            }
        }
    }

    /// Returns a consumed message's backing to the pool (dropped if the
    /// pool is at capacity).
    pub fn recycle(&mut self, message: BitString<W>) {
        self.recycle_backing(message.into_backing());
    }

    /// Returns a raw word backing to the pool (dropped if the pool is at
    /// capacity or the backing holds no allocation worth keeping).
    pub fn recycle_backing(&mut self, backing: Vec<W>) {
        if self.pool.len() < self.capacity && backing.capacity() > 0 {
            self.pool.push(backing);
        }
    }

    /// Removes and returns one pooled backing, if any. The engines use this
    /// to move pooled memory from a central arena into per-node arenas
    /// before a parallel pass, so workers never contend on a shared pool.
    pub fn take_backing(&mut self) -> Option<Vec<W>> {
        self.pool.pop()
    }

    /// Number of backings currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Maximum number of pooled backings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reuse counters since construction.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            served_fresh: self.served_fresh,
            served_reused: self.served_reused,
        }
    }
}

impl<W: Word> Default for BufferArena<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: Word> Clone for BufferArena<W> {
    fn clone(&self) -> Self {
        Self::with_capacity(self.capacity)
    }
}

impl<W: Word> fmt::Debug for BufferArena<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferArena")
            .field("pooled", &self.pool.len())
            .field("capacity", &self.capacity)
            .field("served_fresh", &self.served_fresh)
            .field("served_reused", &self.served_reused)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_recycled_backings() {
        let mut arena = BufferArena::<u64>::new();
        let mut s = arena.acquire();
        s.push_bits(0xAB, 12);
        arena.recycle(s);
        assert_eq!(arena.pooled(), 1);
        let s = arena.acquire();
        assert!(s.is_empty(), "recycled buffers must come back empty");
        assert_eq!(arena.pooled(), 0);
        let stats = arena.stats();
        assert_eq!((stats.served_fresh, stats.served_reused), (1, 1));
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn pool_respects_capacity_and_skips_empty_backings() {
        let mut arena = BufferArena::<u64>::with_capacity(2);
        // Unallocated backings are not worth pooling.
        arena.recycle(BitString::new());
        assert_eq!(arena.pooled(), 0);
        for i in 0..4u64 {
            let mut s = BitString::new();
            s.push_bits(i, 8);
            arena.recycle(s);
        }
        assert_eq!(arena.pooled(), 2, "pool must stop at its capacity");
    }

    #[test]
    fn recycling_never_changes_contents() {
        let mut arena = BufferArena::<u64>::new();
        let mut fresh = BitString::new();
        fresh.push_bits(0b1011, 4);
        let mut s = arena.acquire();
        s.push_bits(u64::MAX, 40);
        arena.recycle(s);
        let mut reused = arena.acquire();
        reused.push_bits(0b1011, 4);
        assert_eq!(reused, fresh);
        assert_eq!(reused.to_le_bytes(), fresh.to_le_bytes());
    }

    #[test]
    fn clone_starts_cold() {
        let mut arena = BufferArena::<u64>::with_capacity(8);
        let mut s = arena.acquire();
        s.push_bits(1, 1);
        arena.recycle(s);
        let clone = arena.clone();
        assert_eq!(clone.pooled(), 0);
        assert_eq!(clone.capacity(), 8);
        assert_eq!(clone.stats().total(), 0);
    }
}
