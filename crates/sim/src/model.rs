//! Model definitions: which machines exist, who may talk to whom, and how
//! many bits fit on a link per round.
//!
//! The paper studies three models:
//!
//! * `CLIQUE-UCAST(n, b)` — [`CommMode::Unicast`] over [`Topology::Clique`]:
//!   every ordered pair of players is connected and each player may send a
//!   *different* `b`-bit message on each of its links per round.
//! * `CLIQUE-BCAST(n, b)` — [`CommMode::Broadcast`] over [`Topology::Clique`]:
//!   each player writes a single `b`-bit message per round, seen by everyone
//!   (the shared-blackboard / number-in-hand multiparty model).
//! * `CONGEST-UCAST(n, b)` — [`CommMode::Unicast`] over a
//!   [`Topology::Graph`]: unicast, but only along the edges of the input
//!   graph.

use std::fmt;

use crate::node::NodeId;

/// How a player's outgoing bandwidth may be used within one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommMode {
    /// A different `b`-bit message may be sent on every outgoing link.
    Unicast,
    /// A single `b`-bit message is written per round and delivered to all
    /// neighbours (the shared blackboard).
    Broadcast,
}

impl fmt::Display for CommMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommMode::Unicast => write!(f, "unicast"),
            CommMode::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// The communication topology: who is directly connected to whom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// The complete graph on `n` players (the congested clique).
    Clique,
    /// An arbitrary undirected topology given by adjacency lists
    /// (the CONGEST setting, where the communication network equals the
    /// input graph).
    Graph(AdjacencyTopology),
}

impl Topology {
    /// Returns `true` if player `u` may send directly to player `v`.
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        match self {
            Topology::Clique => true,
            Topology::Graph(adj) => adj.has_edge(u, v),
        }
    }

    /// The number of neighbours of `u` among `n` players (`u` must be a
    /// valid player), without materializing the neighbour list.
    pub fn degree(&self, u: NodeId, n: usize) -> usize {
        match self {
            Topology::Clique => n.saturating_sub(1),
            Topology::Graph(adj) => adj.degree(u),
        }
    }

    /// The neighbours of `u` among `n` players.
    pub fn neighbors(&self, u: NodeId, n: usize) -> Vec<NodeId> {
        match self {
            Topology::Clique => (0..n)
                .filter(|&v| v != u.index())
                .map(NodeId::new)
                .collect(),
            Topology::Graph(adj) => adj.neighbors(u),
        }
    }
}

/// An explicit adjacency-list topology for CONGEST-style simulations.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AdjacencyTopology {
    adjacency: Vec<Vec<usize>>,
}

impl AdjacencyTopology {
    /// Builds a topology on `n` nodes from an undirected edge list.
    ///
    /// Self-loops are ignored; duplicate edges are stored once.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            if u == v {
                continue;
            }
            if !adjacency[u].contains(&v) {
                adjacency[u].push(v);
                adjacency[v].push(u);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Self { adjacency }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .is_some_and(|list| list.binary_search(&v.index()).is_ok())
    }

    /// The neighbours of `u`.
    pub fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(u.index())
            .map(|list| list.iter().copied().map(NodeId::new).collect())
            .unwrap_or_default()
    }

    /// The degree of `u` (0 for out-of-range nodes).
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency.get(u.index()).map_or(0, Vec::len)
    }
}

/// Full configuration of a simulated model instance.
///
/// # Examples
///
/// ```
/// use clique_sim::model::{CliqueConfig, CommMode};
///
/// // CLIQUE-BCAST(64, log n) as used throughout Section 3 of the paper.
/// let cfg = CliqueConfig::broadcast(64, 6);
/// assert_eq!(cfg.n, 64);
/// assert_eq!(cfg.bandwidth, 6);
/// assert_eq!(cfg.mode, CommMode::Broadcast);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueConfig {
    /// Number of players.
    pub n: usize,
    /// Link bandwidth `b` in bits per round.
    pub bandwidth: usize,
    /// Unicast or broadcast use of the bandwidth.
    pub mode: CommMode,
    /// Communication topology (clique unless simulating CONGEST).
    pub topology: Topology,
}

impl CliqueConfig {
    /// Starts a [`CliqueConfigBuilder`] — the composable way to describe a
    /// model instance (and the only constructor the algorithm crates use).
    ///
    /// Defaults: unicast mode, clique topology, `⌈log₂ n⌉` bandwidth.
    ///
    /// # Examples
    ///
    /// ```
    /// use clique_sim::model::{CliqueConfig, CommMode};
    ///
    /// let cfg = CliqueConfig::builder().nodes(64).bandwidth(6).broadcast().build();
    /// assert_eq!(cfg, CliqueConfig::broadcast(64, 6));
    ///
    /// // Omitting the bandwidth picks the O(log n) regime of [8, 28].
    /// let cfg = CliqueConfig::builder().nodes(1024).unicast().build();
    /// assert_eq!(cfg.bandwidth, 10);
    /// ```
    pub fn builder() -> CliqueConfigBuilder {
        CliqueConfigBuilder::default()
    }

    /// `CLIQUE-UCAST(n, b)`: unicast congested clique.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bandwidth == 0`.
    pub fn unicast(n: usize, bandwidth: usize) -> Self {
        Self::validated(n, bandwidth, CommMode::Unicast, Topology::Clique)
    }

    /// `CLIQUE-BCAST(n, b)`: broadcast congested clique (shared blackboard).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bandwidth == 0`.
    pub fn broadcast(n: usize, bandwidth: usize) -> Self {
        Self::validated(n, bandwidth, CommMode::Broadcast, Topology::Clique)
    }

    /// `CONGEST-UCAST(n, b)`: unicast over the given topology.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `bandwidth == 0`, or the topology has a different
    /// number of nodes than `n`.
    pub fn congest(n: usize, bandwidth: usize, topology: AdjacencyTopology) -> Self {
        assert_eq!(
            topology.len(),
            n,
            "topology has {} nodes but n = {n}",
            topology.len()
        );
        Self::validated(n, bandwidth, CommMode::Unicast, Topology::Graph(topology))
    }

    /// `CLIQUE-UCAST(n, O(log n))`: the bandwidth regime of [8, 28].
    pub fn unicast_logn(n: usize) -> Self {
        Self::unicast(n, log2_ceil(n).max(1))
    }

    /// `CLIQUE-BCAST(n, O(log n))`.
    pub fn broadcast_logn(n: usize) -> Self {
        Self::broadcast(n, log2_ceil(n).max(1))
    }

    fn validated(n: usize, bandwidth: usize, mode: CommMode, topology: Topology) -> Self {
        assert!(n > 0, "a model needs at least one player");
        assert!(bandwidth > 0, "bandwidth must be at least one bit");
        Self {
            n,
            bandwidth,
            mode,
            topology,
        }
    }

    /// Total number of bits that may cross the network in one round
    /// (`Θ(b·n²)` for unicast, `Θ(b·n)` for broadcast).
    pub fn bits_per_round(&self) -> u64 {
        match self.mode {
            CommMode::Unicast => (self.n as u64) * (self.n as u64 - 1) * self.bandwidth as u64,
            CommMode::Broadcast => (self.n as u64) * self.bandwidth as u64,
        }
    }
}

/// Builder for [`CliqueConfig`], obtained from [`CliqueConfig::builder`].
///
/// The builder doubles as a *prototype* for parameter sweeps: fix the mode
/// and topology once, then [`CliqueConfigBuilder::grid`] stamps out one
/// config per `(n, b)` point.
#[derive(Clone, Debug)]
pub struct CliqueConfigBuilder {
    n: Option<usize>,
    bandwidth: Option<usize>,
    mode: CommMode,
    topology: Topology,
}

impl Default for CliqueConfigBuilder {
    fn default() -> Self {
        Self {
            n: None,
            bandwidth: None,
            mode: CommMode::Unicast,
            topology: Topology::Clique,
        }
    }
}

impl CliqueConfigBuilder {
    /// Sets the number of players.
    #[must_use]
    pub fn nodes(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the link bandwidth in bits per round.
    #[must_use]
    pub fn bandwidth(mut self, bandwidth: usize) -> Self {
        self.bandwidth = Some(bandwidth);
        self
    }

    /// Uses the `O(log n)` bandwidth regime (`⌈log₂ n⌉`, at least 1 bit).
    /// This is also the default when no bandwidth is set.
    #[must_use]
    pub fn log_bandwidth(mut self) -> Self {
        self.bandwidth = None;
        self
    }

    /// Sets the communication mode.
    #[must_use]
    pub fn mode(mut self, mode: CommMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `mode(CommMode::Unicast)`.
    #[must_use]
    pub fn unicast(self) -> Self {
        self.mode(CommMode::Unicast)
    }

    /// Shorthand for `mode(CommMode::Broadcast)`.
    #[must_use]
    pub fn broadcast(self) -> Self {
        self.mode(CommMode::Broadcast)
    }

    /// Restricts communication to the edges of `topology`
    /// (the CONGEST setting); also infers `nodes` when unset.
    #[must_use]
    pub fn topology(mut self, topology: AdjacencyTopology) -> Self {
        if self.n.is_none() {
            self.n = Some(topology.len());
        }
        self.topology = Topology::Graph(topology);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` was never set, if `n == 0` or `bandwidth == 0`, or
    /// if an explicit topology disagrees with `n`.
    pub fn build(self) -> CliqueConfig {
        let n = self.n.expect("CliqueConfigBuilder: nodes(n) must be set");
        let bandwidth = self.bandwidth.unwrap_or_else(|| log2_ceil(n).max(1));
        if let Topology::Graph(adj) = &self.topology {
            assert_eq!(adj.len(), n, "topology has {} nodes but n = {n}", adj.len());
        }
        CliqueConfig::validated(n, bandwidth, self.mode, self.topology)
    }

    /// Stamps out one config per `(n, b)` grid point, using this builder as
    /// the prototype for everything else. An empty `bandwidths` slice uses
    /// the builder's own bandwidth choice (explicit or `⌈log₂ n⌉`) for
    /// every `n`.
    ///
    /// # Panics
    ///
    /// Panics if the prototype carries an explicit [`Topology::Graph`]: a
    /// fixed CONGEST graph has one node count and cannot be resized across
    /// a grid — build such configs individually instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use clique_sim::model::CliqueConfig;
    ///
    /// let grid = CliqueConfig::builder().broadcast().grid(&[16, 32], &[1, 4]);
    /// assert_eq!(grid.len(), 4);
    /// assert_eq!(grid[3], CliqueConfig::broadcast(32, 4));
    ///
    /// let logs = CliqueConfig::builder().unicast().grid(&[256], &[]);
    /// assert_eq!(logs[0].bandwidth, 8);
    /// ```
    pub fn grid(&self, nodes: &[usize], bandwidths: &[usize]) -> Vec<CliqueConfig> {
        assert!(
            matches!(self.topology, Topology::Clique),
            "grid() needs a clique-topology prototype; a fixed CONGEST graph \
             cannot be resized across the grid"
        );
        let mut configs = Vec::new();
        for &n in nodes {
            if bandwidths.is_empty() {
                configs.push(self.clone().nodes(n).build());
            } else {
                for &b in bandwidths {
                    configs.push(self.clone().nodes(n).bandwidth(b).build());
                }
            }
        }
        configs
    }
}

impl fmt::Display for CliqueConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let topo = match &self.topology {
            Topology::Clique => "CLIQUE",
            Topology::Graph(_) => "CONGEST",
        };
        let mode = match self.mode {
            CommMode::Unicast => "UCAST",
            CommMode::Broadcast => "BCAST",
        };
        write!(f, "{topo}-{mode}(n={}, b={})", self.n, self.bandwidth)
    }
}

/// Errors produced by the simulation engines.
///
/// Variant fields name the offending node(s) and, where relevant, the
/// message size and the configured bandwidth.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SimError {
    /// A unicast message was submitted in a broadcast-only model.
    UnicastInBroadcastModel { sender: NodeId },
    /// A message referenced a node id that does not exist.
    InvalidNode { node: NodeId, n: usize },
    /// A node attempted to send to itself.
    SelfMessage { node: NodeId },
    /// Two messages were sent on the same link in the same round.
    DuplicateMessage { sender: NodeId, receiver: NodeId },
    /// A message exceeded the per-round link bandwidth (low-level engine
    /// only; the phase engine chunks long messages automatically).
    BandwidthExceeded {
        sender: NodeId,
        receiver: Option<NodeId>,
        bits: usize,
        bandwidth: usize,
    },
    /// A message was sent along a pair that is not an edge of the topology.
    NotAnEdge { sender: NodeId, receiver: NodeId },
    /// The protocol did not terminate within the allowed number of rounds.
    RoundLimitExceeded { limit: u64 },
    /// A transport backend lost or damaged a delivery — an injected fault
    /// detected through the integrity framing (see
    /// [`transport::FaultyTransport`](crate::transport::FaultyTransport))
    /// or a real backend failure such as a disconnected channel. The run
    /// aborts instead of computing from a damaged transcript. `round`
    /// counts ledger rounds charged before the fault (under the phase
    /// engine: before the faulted phase); `receiver` is `None` for a
    /// broadcast.
    TransportFault {
        round: u64,
        sender: NodeId,
        receiver: Option<NodeId>,
        kind: crate::transport::FaultKind,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnicastInBroadcastModel { sender } => {
                write!(f, "node {sender} attempted unicast in a broadcast model")
            }
            SimError::InvalidNode { node, n } => {
                write!(f, "node id {node} out of range for n = {n}")
            }
            SimError::SelfMessage { node } => write!(f, "node {node} attempted to message itself"),
            SimError::DuplicateMessage { sender, receiver } => {
                write!(f, "duplicate message from {sender} to {receiver} in one round")
            }
            SimError::BandwidthExceeded {
                sender,
                receiver,
                bits,
                bandwidth,
            } => match receiver {
                Some(receiver) => write!(
                    f,
                    "message of {bits} bits from {sender} to {receiver} exceeds bandwidth {bandwidth}"
                ),
                None => write!(
                    f,
                    "broadcast of {bits} bits from {sender} exceeds bandwidth {bandwidth}"
                ),
            },
            SimError::NotAnEdge { sender, receiver } => {
                write!(f, "pair ({sender}, {receiver}) is not an edge of the topology")
            }
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            SimError::TransportFault {
                round,
                sender,
                receiver,
                kind,
            } => match receiver {
                Some(receiver) => write!(
                    f,
                    "transport fault ({kind}) on message from {sender} to {receiver} after {round} rounds"
                ),
                None => write!(
                    f,
                    "transport fault ({kind}) on broadcast from {sender} after {round} rounds"
                ),
            },
        }
    }
}

impl std::error::Error for SimError {}

/// `ceil(log2(x))` for `x >= 1`, and 0 for `x == 0` or `x == 1`.
pub fn log2_ceil(x: usize) -> usize {
    if x <= 1 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let u = CliqueConfig::unicast(8, 3);
        assert_eq!(u.mode, CommMode::Unicast);
        assert_eq!(u.bits_per_round(), 8 * 7 * 3);
        let b = CliqueConfig::broadcast(8, 3);
        assert_eq!(b.mode, CommMode::Broadcast);
        assert_eq!(b.bits_per_round(), 8 * 3);
        assert_eq!(CliqueConfig::unicast_logn(1024).bandwidth, 10);
        assert_eq!(CliqueConfig::broadcast_logn(2).bandwidth, 1);
    }

    #[test]
    fn builder_matches_constructors() {
        assert_eq!(
            CliqueConfig::builder()
                .nodes(8)
                .bandwidth(3)
                .unicast()
                .build(),
            CliqueConfig::unicast(8, 3)
        );
        assert_eq!(
            CliqueConfig::builder()
                .nodes(8)
                .bandwidth(3)
                .broadcast()
                .build(),
            CliqueConfig::broadcast(8, 3)
        );
        assert_eq!(
            CliqueConfig::builder().nodes(1024).log_bandwidth().build(),
            CliqueConfig::unicast_logn(1024)
        );
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        assert_eq!(
            CliqueConfig::builder()
                .bandwidth(2)
                .topology(adj.clone())
                .build(),
            CliqueConfig::congest(3, 2, adj)
        );
    }

    #[test]
    fn builder_grid_stamps_configs() {
        let grid = CliqueConfig::builder()
            .broadcast()
            .grid(&[4, 8], &[1, 2, 3]);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|c| c.mode == CommMode::Broadcast));
        assert_eq!(grid[5], CliqueConfig::broadcast(8, 3));
        // Empty bandwidth grid: one config per n at log bandwidth.
        let logs = CliqueConfig::builder().grid(&[2, 16], &[]);
        assert_eq!(logs[0].bandwidth, 1);
        assert_eq!(logs[1].bandwidth, 4);
    }

    #[test]
    #[should_panic(expected = "clique-topology prototype")]
    fn grid_rejects_fixed_topology_prototypes() {
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let _ = CliqueConfig::builder()
            .bandwidth(2)
            .topology(adj)
            .grid(&[8], &[2]);
    }

    #[test]
    #[should_panic(expected = "nodes(n) must be set")]
    fn builder_without_nodes_panics() {
        let _ = CliqueConfig::builder().bandwidth(2).build();
    }

    #[test]
    #[should_panic(expected = "topology has")]
    fn builder_topology_mismatch_panics() {
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let _ = CliqueConfig::builder()
            .nodes(5)
            .bandwidth(1)
            .topology(adj)
            .build();
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        CliqueConfig::unicast(4, 0);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        CliqueConfig::broadcast(0, 1);
    }

    #[test]
    fn clique_topology_connectivity() {
        let t = Topology::Clique;
        assert!(t.connected(NodeId::new(0), NodeId::new(5)));
        assert!(!t.connected(NodeId::new(3), NodeId::new(3)));
        assert_eq!(t.neighbors(NodeId::new(1), 4).len(), 3);
    }

    #[test]
    fn graph_topology_connectivity() {
        let adj = AdjacencyTopology::from_edges(4, &[(0, 1), (1, 2), (2, 2)]);
        let t = Topology::Graph(adj.clone());
        assert!(t.connected(NodeId::new(0), NodeId::new(1)));
        assert!(t.connected(NodeId::new(2), NodeId::new(1)));
        assert!(!t.connected(NodeId::new(0), NodeId::new(2)));
        assert!(!t.connected(NodeId::new(2), NodeId::new(2)));
        assert_eq!(adj.neighbors(NodeId::new(1)).len(), 2);
        assert_eq!(adj.neighbors(NodeId::new(3)).len(), 0);
        assert_eq!(adj.len(), 4);
    }

    #[test]
    fn congest_config_checks_size() {
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let cfg = CliqueConfig::congest(3, 2, adj);
        assert!(matches!(cfg.topology, Topology::Graph(_)));
    }

    #[test]
    #[should_panic(expected = "topology has")]
    fn congest_config_size_mismatch_panics() {
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let _ = CliqueConfig::congest(4, 2, adj);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            CliqueConfig::unicast(16, 4).to_string(),
            "CLIQUE-UCAST(n=16, b=4)"
        );
        assert_eq!(
            CliqueConfig::broadcast(16, 4).to_string(),
            "CLIQUE-BCAST(n=16, b=4)"
        );
        let adj = AdjacencyTopology::from_edges(2, &[(0, 1)]);
        assert_eq!(
            CliqueConfig::congest(2, 1, adj).to_string(),
            "CONGEST-UCAST(n=2, b=1)"
        );
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(8), 3);
        assert_eq!(log2_ceil(9), 4);
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::BandwidthExceeded {
            sender: NodeId::new(1),
            receiver: Some(NodeId::new(2)),
            bits: 10,
            bandwidth: 4,
        };
        assert!(e.to_string().contains("exceeds bandwidth"));
        let e2 = SimError::RoundLimitExceeded { limit: 7 };
        assert!(e2.to_string().contains("7 rounds"));
    }
}
