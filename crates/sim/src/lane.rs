//! Generic machine-word lanes for the packed kernels.
//!
//! Every packed data path in the workspace — [`BitString`](crate::bits),
//! [`BitMatrix`](crate::linalg), the bit-sliced circuit evaluator in
//! `clique-circuits` — operates on whole machine words, one column (or one
//! assignment) per bit. [`Word`] abstracts the lane type those kernels are
//! generic over, so the word width is chosen in exactly one place
//! ([`DefaultLane`]) instead of being hard-coded as `u64` across five
//! crates.
//!
//! Two lane types are provided out of the box: [`u64`] (the default) and
//! [`u128`] (twice the columns per operation, selected workspace-wide by
//! the `lane128` cargo feature). The trait surface is deliberately small —
//! bitwise operators, shifts, popcount, lowest-set-bit scanning and
//! little-endian byte serialisation — so a `std::simd` vector type can
//! implement it later; the only operations a SIMD impl must emulate are the
//! cross-lane shifts (`<<`/`>>` by a bit count), which the kernels use for
//! bit offsets that straddle word boundaries.
//!
//! # The lanes-never-change-transcripts invariant
//!
//! The lane width is an implementation detail of the *local computation*;
//! it must never be observable in a protocol transcript. Message lengths
//! are counted in bits ([`BitString::len`](crate::bits::BitString::len)),
//! integrity checksums are computed over the canonical little-endian byte
//! serialisation of the bits (not the backing words), and fault plans draw
//! from message coordinates only. The cross-width proptests in
//! `tests/properties.rs` and the `lane128` CI pass pin this invariant.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not, Shl, Shr};

/// A machine-word lane: the unit of bit-parallelism in the packed kernels.
///
/// Implementations must behave like an unsigned integer of [`Self::BITS`]
/// bits under the bitwise operators. Shift amounts are always `<
/// Self::BITS` at the call sites (shifting by the full width is undefined
/// for primitive integers, and the kernels guard for it).
pub trait Word:
    Copy
    + Eq
    + Ord
    + Hash
    + Debug
    + Send
    + Sync
    + 'static
    + BitAnd<Output = Self>
    + BitAndAssign
    + BitOr<Output = Self>
    + BitOrAssign
    + BitXor<Output = Self>
    + BitXorAssign
    + Not<Output = Self>
    + Shl<usize, Output = Self>
    + Shr<usize, Output = Self>
{
    /// Lane width in bits.
    const BITS: usize;
    /// Lane width in bytes (`BITS / 8`).
    const BYTES: usize;
    /// The all-zeros word.
    const ZERO: Self;
    /// The word with only the lowest bit set.
    const ONE: Self;
    /// The all-ones word.
    const ONES: Self;

    /// Number of set bits.
    fn count_ones(self) -> u32;

    /// Number of trailing zero bits ([`Self::BITS`] for [`Self::ZERO`]).
    fn trailing_zeros(self) -> u32;

    /// Clears the lowest set bit (`self & (self - 1)`), the idiom the
    /// set-bit walks in [`linalg`](crate::linalg) iterate with.
    fn clear_lowest_set_bit(self) -> Self;

    /// Zero-extends a `u64` into a lane. Since `BITS >= 64` for all
    /// provided impls this is lossless.
    fn from_u64(value: u64) -> Self;

    /// Truncates the lane to its 64 low-order bits.
    fn low_u64(self) -> u64;

    /// Appends the lane's little-endian byte serialisation to `out` (the
    /// canonical byte order used by checksums and framing).
    fn extend_le_bytes(self, out: &mut Vec<u8>);

    /// The word with only bit `index` set.
    ///
    /// Call sites guarantee `index < Self::BITS`.
    #[inline]
    fn bit(index: usize) -> Self {
        Self::ONE << index
    }

    /// The word whose `bits` low-order bits are set (all of them when
    /// `bits >= Self::BITS`).
    #[inline]
    fn mask_low(bits: usize) -> Self {
        if bits == 0 {
            Self::ZERO
        } else if bits >= Self::BITS {
            Self::ONES
        } else {
            Self::ONES >> (Self::BITS - bits)
        }
    }
}

macro_rules! impl_word {
    ($ty:ty) => {
        impl Word for $ty {
            const BITS: usize = <$ty>::BITS as usize;
            const BYTES: usize = (<$ty>::BITS / 8) as usize;
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const ONES: Self = <$ty>::MAX;

            #[inline]
            fn count_ones(self) -> u32 {
                <$ty>::count_ones(self)
            }

            #[inline]
            fn trailing_zeros(self) -> u32 {
                <$ty>::trailing_zeros(self)
            }

            #[inline]
            fn clear_lowest_set_bit(self) -> Self {
                self & self.wrapping_sub(1)
            }

            #[inline]
            #[allow(clippy::cast_lossless)]
            fn from_u64(value: u64) -> Self {
                value as $ty
            }

            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn low_u64(self) -> u64 {
                self as u64
            }

            #[inline]
            fn extend_le_bytes(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    };
}

impl_word!(u64);
impl_word!(u128);

/// The lane type the whole workspace runs on when none is named
/// explicitly: `u64` by default, `u128` under the `lane128` cargo feature
/// (CI runs the full test suite under both).
#[cfg(not(feature = "lane128"))]
pub type DefaultLane = u64;

/// The lane type the whole workspace runs on when none is named
/// explicitly: `u64` by default, `u128` under the `lane128` cargo feature
/// (CI runs the full test suite under both).
#[cfg(feature = "lane128")]
pub type DefaultLane = u128;

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<W: Word>() {
        assert_eq!(W::BITS, W::BYTES * 8);
        assert_eq!(W::ZERO.count_ones(), 0);
        assert_eq!(W::ONES.count_ones() as usize, W::BITS);
        assert_eq!(W::ONE.trailing_zeros(), 0);
        assert_eq!(W::ZERO.trailing_zeros() as usize, W::BITS);
        assert_eq!(W::bit(3).trailing_zeros(), 3);
        assert_eq!(W::bit(W::BITS - 1).count_ones(), 1);
        assert_eq!(W::mask_low(0), W::ZERO);
        assert_eq!(W::mask_low(W::BITS), W::ONES);
        assert_eq!(W::mask_low(5).count_ones(), 5);
        assert_eq!((W::bit(7) | W::bit(2)).clear_lowest_set_bit(), W::bit(7));
        assert_eq!(W::from_u64(0xDEAD_BEEF).low_u64(), 0xDEAD_BEEF);
        let mut bytes = Vec::new();
        W::from_u64(0x0102_0304).extend_le_bytes(&mut bytes);
        assert_eq!(bytes.len(), W::BYTES);
        assert_eq!(&bytes[..4], &[0x04, 0x03, 0x02, 0x01]);
        assert!(bytes[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn u64_and_u128_lanes_behave_like_words() {
        exercise::<u64>();
        exercise::<u128>();
    }

    #[test]
    fn from_u64_zero_extends() {
        assert_eq!(<u128 as Word>::from_u64(u64::MAX), u128::from(u64::MAX));
        assert_eq!(<u128 as Word>::from_u64(u64::MAX) >> 64, 0);
    }
}
