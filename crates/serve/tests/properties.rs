//! Property tests of the serving layer's canonical encoding: every spec
//! round-trips through its canonical JSON, and distinct specs never
//! collide as cache keys (the injectivity the transcript cache relies on).

use clique_serve::JobSpec;
use proptest::prelude::*;

/// A name alphabet that stresses the escaper: quotes, backslashes,
/// newlines, tabs, raw control characters, and multi-byte UTF-8.
const NAME_CHARS: &[char] = &[
    'a', 'b', 'z', '0', '9', '-', '_', '(', ')', '.', '=', ' ', '"', '\\', '\n', '\r', '\t',
    '\u{1}', '\u{1f}', 'é', 'λ', '🌀',
];

/// Builds a name from alphabet indices (the vendored proptest stub has no
/// `prop_map`, so composite values are assembled inside the test body).
fn name_from(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| NAME_CHARS[i % NAME_CHARS.len()])
        .collect()
}

/// Builds a spec from primitive strategy outputs.
fn spec_from(names: &[Vec<usize>; 2], nums: (u64, u64, u64, u64), threads: usize) -> JobSpec {
    JobSpec {
        protocol: name_from(&names[0]),
        family: name_from(&names[1]),
        n: nums.0 as usize,
        bandwidth: nums.1 as usize,
        max_weight: nums.2,
        seed: nums.3,
        threads,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_json_round_trips(
        protocol in prop::collection::vec(0usize..22, 0..12),
        family in prop::collection::vec(0usize..22, 0..12),
        nums in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        threads in 0usize..9,
    ) {
        // Keep n/bandwidth within usize on every platform.
        let nums = (nums.0 >> 1, nums.1 >> 1, nums.2, nums.3);
        let spec = spec_from(&[protocol, family], nums, threads);
        let encoded = spec.canonical_json();
        let parsed = JobSpec::from_canonical_json(&encoded).unwrap();
        // threads is an execution hint: it is dropped by the encoding.
        prop_assert_eq!(&parsed, &spec.clone().with_threads(0));
        prop_assert_eq!(parsed.canonical_json(), encoded);
    }

    #[test]
    fn cache_keys_collide_exactly_on_equal_specs(
        a_names in (prop::collection::vec(0usize..22, 0..4), prop::collection::vec(0usize..22, 0..4)),
        b_names in (prop::collection::vec(0usize..22, 0..4), prop::collection::vec(0usize..22, 0..4)),
        a_nums in (0u64..3, 0u64..3, 0u64..3, 0u64..3),
        b_nums in (0u64..3, 0u64..3, 0u64..3, 0u64..3),
    ) {
        // Small domains on purpose: equal pairs must actually occur so the
        // "collide" direction of the iff is exercised, not just "differ".
        let a = spec_from(&[a_names.0, a_names.1], a_nums, 0);
        let b = spec_from(&[b_names.0, b_names.1], b_nums, 1);
        let same = a.clone().with_threads(0) == b.clone().with_threads(0);
        prop_assert_eq!(a.canonical_json() == b.canonical_json(), same);
    }

    #[test]
    fn varying_one_field_changes_the_key(
        protocol in prop::collection::vec(0usize..22, 0..12),
        family in prop::collection::vec(0usize..22, 0..12),
        nums in (0u64..1000, 0u64..1000, any::<u64>(), any::<u64>()),
    ) {
        let spec = spec_from(&[protocol, family], nums, 0);
        let key = spec.canonical_json();
        let mut other = spec.clone();
        other.seed = spec.seed.wrapping_add(1);
        prop_assert_ne!(other.canonical_json(), key.clone());
        let mut other = spec.clone();
        other.n = spec.n.wrapping_add(1);
        prop_assert_ne!(other.canonical_json(), key.clone());
        let mut other = spec.clone();
        other.protocol.push('x');
        prop_assert_ne!(other.canonical_json(), key);
    }
}
