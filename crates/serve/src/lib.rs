//! # clique-serve — a sharded, caching simulation job server
//!
//! The serving layer over the [`clique_core`] protocol registry. A
//! [`JobSpec`] names one simulation job — registry protocol id, generated
//! input label, bandwidth, seed — and encodes to canonical JSON
//! ([`JobSpec::canonical_json`]: fixed key order, no whitespace). That
//! encoding is the key of a bounded LRU [`TranscriptCache`], and the whole
//! design leans on one invariant inherited from the simulator stack:
//!
//! > **A job spec fully determines its transcript.** Same spec ⇒
//! > byte-identical output digest and communication ledger, at any worker
//! > count, under any transport.
//!
//! So a cache hit *is* the answer — [`ServerConfig::verify_hits`] lets the
//! server prove it per hit by recomputing and byte-comparing.
//!
//! [`Server::submit_batch`] shards uncached jobs across a worker fleet by
//! an FNV-1a hash of the key and runs them in waves on
//! [`clique_core::sim::par`], each worker draining up to
//! [`ServerConfig::batch_size`] jobs of its shard per spawn.
//!
//! [`Server::submit_jobs`] is the fault-tolerant entry point: one
//! [`JobOutcome`] per spec, panics isolated per job, transient failures
//! (transport faults injected by a [`ServerConfig::chaos`] plan, panics)
//! retried deterministically up to [`ServerConfig::max_retries`] times,
//! retry-exhausted keys quarantined, runaway jobs cut off by
//! [`ServerConfig::max_rounds`] / [`ServerConfig::max_bits`] — every
//! failure is a typed [`ServeError`], never a silently wrong record.
//!
//! # Examples
//!
//! ```
//! use clique_serve::{JobSpec, Server, ServerConfig};
//!
//! # fn main() -> Result<(), clique_serve::ServeError> {
//! let mut server = Server::new(ServerConfig::default());
//! let spec = JobSpec::weighted("mst", "weighted_random_tree", 12, 8, 7, 0x5EED);
//!
//! let cold = server.run_job(&spec)?;
//! let warm = server.run_job(&spec)?;
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.record, warm.record);
//! assert_eq!(cold.record, Server::run_direct(&spec)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The serving layer must degrade through typed errors, never assert its way
// down: no unwrap/expect outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod server;
pub mod spec;

pub use cache::{CacheStats, TranscriptCache};
pub use server::{
    encode_record, fnv64, FaultStats, JobOutcome, JobResult, ServeError, Server, ServerConfig,
    ServerStats,
};
pub use spec::{JobSpec, SpecParseError};
