//! The job server: a sharded, batching worker fleet fronted by the
//! transcript cache, with a recovery layer for faulty executions.
//!
//! [`Server::submit_jobs`] takes a slice of [`JobSpec`]s and returns one
//! [`JobOutcome`] per spec, in submission order — each either a served
//! [`JobResult`] or a typed [`ServeError`]; one poisoned job never takes
//! down its batch. Jobs whose canonical key is cached are answered without
//! running anything; the remaining *unique* keys are sharded across
//! `workers` by an FNV-1a hash of the key and processed in waves — each
//! wave is a single [`par::map`] spawn in which every worker drains up to
//! `batch_size` jobs of its own shard, so small jobs amortize thread-spawn
//! cost instead of paying it per job.
//!
//! The recovery layer (all knobs on [`ServerConfig`]):
//!
//! * **Panic isolation** — every execution attempt runs under
//!   `catch_unwind`; a panicking job becomes [`ServeError::Panic`] for that
//!   job alone instead of unwinding through the wave.
//! * **Bounded deterministic retry** — transient failures (transport
//!   faults, panics) are re-attempted up to [`ServerConfig::max_retries`]
//!   times with an attempt-count-based backoff (`2^attempt` waves, no wall
//!   clock), so a retried schedule replays identically. Under a
//!   [`ServerConfig::chaos`] plan, each `(job, attempt)` pair salts the
//!   plan deterministically, so retries can genuinely clear an injected
//!   fault while the whole history stays a pure function of the submission
//!   sequence.
//! * **Quarantine** — a job that exhausts its retries is quarantined:
//!   later submissions of the same key are answered immediately with
//!   [`ServeError::Quarantined`] (carrying the original cause) until
//!   [`Server::release_quarantined`].
//! * **Budget ceilings** — [`ServerConfig::max_rounds`] /
//!   [`ServerConfig::max_bits`] convert runaway jobs into
//!   [`ServeError::BudgetExceeded`] (deterministic, never retried).
//! * **Cache degradation** — with [`ServerConfig::verify_hits`], a hit
//!   that fails its byte-compare is evicted and the fresh recomputation is
//!   served instead (counted in [`FaultStats::cache_divergences`]), so a
//!   damaged cache degrades to recomputation, never to a wrong answer.
//!
//! [`Server::submit_batch`] keeps the PR 7 all-or-first-error contract on
//! top of [`Server::submit_jobs`]. Correctness never depends on the cache:
//! every record is a deterministic function of its key, and
//! [`ServerConfig::verify_hits`] makes the server prove it per hit by
//! recomputing and byte-comparing.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use clique_core::registry::{self, InputKind, ProtocolRun, RunOptions};
use clique_core::sim::transport::FaultPlan;
use clique_core::sim::{par, Metrics, SimError};

use crate::cache::{CacheStats, TranscriptCache};
use crate::spec::JobSpec;

/// Configuration of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker-fleet size jobs are sharded across.
    pub workers: usize,
    /// Maximum jobs one worker runs per wave (the batching grain).
    pub batch_size: usize,
    /// Transcript-cache capacity bound.
    pub cache_capacity: usize,
    /// When set, every cache hit is re-executed and byte-compared against
    /// the stored record; a divergent entry is evicted and the fresh
    /// recomputation is served (see [`FaultStats::cache_divergences`]).
    pub verify_hits: bool,
    /// Extra attempts granted to a job whose failure is transient (a
    /// transport fault or a panic); `0` quarantines on the first such
    /// failure. Deterministic errors are never retried.
    pub max_retries: u32,
    /// Per-job round ceiling: a run charging more rounds becomes
    /// [`ServeError::BudgetExceeded`].
    pub max_rounds: Option<u64>,
    /// Per-job total-bit ceiling, as [`Self::max_rounds`].
    pub max_bits: Option<u64>,
    /// Deterministic fault-injection plan applied to every execution
    /// attempt, salted per `(job key, attempt)` — the chaos-testing knob.
    pub chaos: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            batch_size: 8,
            cache_capacity: 1024,
            verify_hits: false,
            max_retries: 0,
            max_rounds: None,
            max_bits: None,
            chaos: None,
        }
    }
}

/// Everything that can go wrong serving a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The spec names a protocol id absent from the registry.
    UnknownProtocol(String),
    /// The spec names an input family the protocol's kind does not accept.
    UnknownFamily {
        /// The protocol id of the spec.
        protocol: String,
        /// The rejected family name.
        family: String,
    },
    /// A structurally invalid spec (zero sizes, missing weight bound).
    InvalidSpec {
        /// Canonical key of the offending spec.
        key: String,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The underlying simulation failed — including
    /// [`SimError::TransportFault`] for a delivery lost or damaged in
    /// flight (the transient class the retry layer re-attempts).
    Sim(SimError),
    /// A verified cache hit did not match its recomputation. The server
    /// degrades (evicts the entry and serves the fresh record) rather than
    /// failing the job, so this variant reaches callers only as a
    /// quarantine cause or from external cache consumers.
    CacheDivergence {
        /// Canonical key of the divergent entry.
        key: String,
    },
    /// The job's execution panicked; the panic was caught at the job
    /// boundary and the rest of the wave was unaffected.
    Panic {
        /// Canonical key of the panicking job.
        key: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The run completed but charged more than the configured per-job
    /// ceiling ([`ServerConfig::max_rounds`] / [`ServerConfig::max_bits`]).
    BudgetExceeded {
        /// Canonical key of the runaway job.
        key: String,
        /// Rounds the run charged.
        rounds: u64,
        /// Total bits the run charged.
        bits: u64,
    },
    /// The job's key is quarantined: an earlier submission exhausted its
    /// retries. Nothing was executed for this submission.
    Quarantined {
        /// Canonical key of the quarantined job.
        key: String,
        /// Attempts the quarantining submission consumed.
        attempts: u32,
        /// The failure that exhausted the retries.
        cause: Box<ServeError>,
    },
    /// A server-side bookkeeping invariant broke. Fails the affected job,
    /// not the process.
    Internal {
        /// Which invariant broke.
        context: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownProtocol(id) => write!(f, "unknown protocol id {id:?}"),
            ServeError::UnknownFamily { protocol, family } => {
                write!(
                    f,
                    "protocol {protocol:?} accepts no input family {family:?}"
                )
            }
            ServeError::InvalidSpec { key, reason } => {
                write!(f, "invalid job spec {key}: {reason}")
            }
            ServeError::Sim(err) => write!(f, "simulation failed: {err}"),
            ServeError::CacheDivergence { key } => {
                write!(f, "cache entry for {key} diverged from a fresh run")
            }
            ServeError::Panic { key, message } => {
                write!(f, "job {key} panicked: {message}")
            }
            ServeError::BudgetExceeded { key, rounds, bits } => {
                write!(
                    f,
                    "job {key} exceeded its budget ({rounds} rounds, {bits} bits)"
                )
            }
            ServeError::Quarantined {
                key,
                attempts,
                cause,
            } => {
                write!(
                    f,
                    "job {key} is quarantined after {attempts} attempts: {cause}"
                )
            }
            ServeError::Internal { context } => {
                write!(f, "internal server invariant broke: {context}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(err) => Some(err),
            ServeError::Quarantined { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(err: SimError) -> Self {
        ServeError::Sim(err)
    }
}

/// Transient failures are worth retrying: a salted chaos schedule (or a
/// flaky backend) can clear on the next attempt. Everything else is a
/// deterministic function of the spec and would fail identically.
fn is_transient(err: &ServeError) -> bool {
    matches!(
        err,
        ServeError::Sim(SimError::TransportFault { .. }) | ServeError::Panic { .. }
    )
}

/// One served job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobResult {
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Its canonical cache key.
    pub key: String,
    /// The encoded run record (output digest + full ledger; see
    /// [`Server::run_direct`]).
    pub record: String,
    /// True when the record came from the transcript cache.
    pub cached: bool,
}

/// The per-job return of [`Server::submit_jobs`]: a served record or a
/// typed failure, plus how much work the submission cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Its canonical cache key.
    pub key: String,
    /// Execution attempts this submission consumed (0 for cache hits,
    /// quarantine answers and rejected specs).
    pub attempts: u32,
    /// The served record, or why the job failed.
    pub result: Result<JobResult, ServeError>,
}

/// Fault and recovery counters of a [`Server`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Attempts that failed with a detected transport fault.
    pub faults_detected: u64,
    /// Attempts that panicked and were isolated.
    pub panics: u64,
    /// Jobs whose run exceeded a configured budget ceiling.
    pub budget_exceeded: u64,
    /// Re-executions beyond each job's first attempt.
    pub retries: u64,
    /// Jobs that failed at least once and then succeeded on a retry.
    pub recovered: u64,
    /// Jobs moved to the quarantine list (retries exhausted).
    pub quarantined: u64,
    /// Submissions answered from the quarantine list without running.
    pub quarantine_hits: u64,
    /// Verified cache hits that failed their byte-compare (entry evicted,
    /// fresh record served).
    pub cache_divergences: u64,
}

/// Lifetime counters of a [`Server`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs submitted (including cache hits and duplicates).
    pub jobs: u64,
    /// Jobs actually executed by the fleet.
    pub ran: u64,
    /// Waves dispatched (= `par::map` spawns).
    pub waves: u64,
    /// Transcript-cache counters.
    pub cache: CacheStats,
    /// Fault and recovery counters.
    pub faults: FaultStats,
}

/// A quarantined key: the failure that exhausted its retries.
#[derive(Clone, Debug)]
struct QuarantineEntry {
    cause: ServeError,
    attempts: u32,
}

/// One unique uncached key being executed by the wave loop.
struct PendingJob {
    spec_idx: usize,
    key: String,
    attempts: u32,
    next_wave: u64,
    resolution: Option<Result<String, ServeError>>,
}

/// A sharded, caching simulation job server.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    cache: TranscriptCache,
    quarantine: HashMap<String, QuarantineEntry>,
    jobs: u64,
    ran: u64,
    waves: u64,
    faults: FaultStats,
}

impl Server {
    /// Creates a server.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `batch_size` or `cache_capacity` is zero.
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(config.batch_size > 0, "batch size must be positive");
        Self {
            cache: TranscriptCache::new(config.cache_capacity),
            config,
            quarantine: HashMap::new(),
            jobs: 0,
            ran: 0,
            waves: 0,
            faults: FaultStats::default(),
        }
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            jobs: self.jobs,
            ran: self.ran,
            waves: self.waves,
            cache: self.cache.stats(),
            faults: self.faults,
        }
    }

    /// The quarantined keys with the attempt count that exhausted each, in
    /// sorted key order (deterministic).
    pub fn quarantined(&self) -> Vec<(String, u32)> {
        let mut keys: Vec<(String, u32)> = self
            .quarantine
            .iter()
            .map(|(key, entry)| (key.clone(), entry.attempts))
            .collect();
        keys.sort();
        keys
    }

    /// Releases `spec` from quarantine so the next submission runs again.
    /// Returns whether the key was quarantined.
    pub fn release_quarantined(&mut self, spec: &JobSpec) -> bool {
        self.quarantine.remove(&spec.canonical_json()).is_some()
    }

    /// Chaos-testing seam: plants (or overwrites) a cache record for
    /// `spec` without running anything — how the tests prove
    /// [`ServerConfig::verify_hits`] catches a corrupted entry. Not part
    /// of the serving contract.
    pub fn inject_cache_record(&mut self, spec: &JobSpec, record: String) {
        self.cache.insert(spec.canonical_json(), record);
    }

    /// Serves a single job (a one-element [`Self::submit_batch`]).
    ///
    /// # Errors
    ///
    /// See [`Self::submit_batch`].
    pub fn run_job(&mut self, spec: &JobSpec) -> Result<JobResult, ServeError> {
        let mut results = self.submit_batch(std::slice::from_ref(spec))?;
        results.pop().ok_or(ServeError::Internal {
            context: "one spec yields one result",
        })
    }

    /// Serves a batch of jobs, returning one result per spec in submission
    /// order — the PR 7 all-or-first-error contract on top of
    /// [`Self::submit_jobs`].
    ///
    /// # Errors
    ///
    /// Fails on the first invalid spec (unknown protocol/family, zero
    /// sizes — nothing is counted or executed then), or the first failing
    /// job in submission order. Earlier completed jobs of a failed batch
    /// stay cached.
    pub fn submit_batch(&mut self, specs: &[JobSpec]) -> Result<Vec<JobResult>, ServeError> {
        for spec in specs {
            validate(spec)?;
        }
        let mut results = Vec::with_capacity(specs.len());
        for outcome in self.submit_jobs(specs) {
            results.push(outcome.result?);
        }
        Ok(results)
    }

    /// Serves a batch with per-job fault tolerance: one [`JobOutcome`] per
    /// spec in submission order, failures typed per job instead of failing
    /// the batch. Unique uncached keys are sharded across the fleet and run
    /// in waves; transient failures retry per
    /// [`ServerConfig::max_retries`] with deterministic backoff, exhausted
    /// jobs are quarantined. The whole outcome sequence is a pure function
    /// of the server's configuration and submission history — retries use
    /// attempt counts, never the wall clock.
    pub fn submit_jobs(&mut self, specs: &[JobSpec]) -> Vec<JobOutcome> {
        self.jobs += specs.len() as u64;

        // Pass 1: validation, quarantine answers and cache resolution;
        // unique uncached keys become pending jobs in first-appearance
        // order. `None` slots are filled from the wave loop's resolutions.
        let mut outcomes: Vec<Option<JobOutcome>> = Vec::with_capacity(specs.len());
        let mut pending: Vec<PendingJob> = Vec::new();
        let mut slot_of: HashMap<String, usize> = HashMap::new();
        for (idx, spec) in specs.iter().enumerate() {
            let key = spec.canonical_json();
            if let Err(err) = validate(spec) {
                outcomes.push(Some(JobOutcome {
                    spec: spec.clone(),
                    key,
                    attempts: 0,
                    result: Err(err),
                }));
                continue;
            }
            if let Some(entry) = self.quarantine.get(&key) {
                self.faults.quarantine_hits += 1;
                outcomes.push(Some(JobOutcome {
                    spec: spec.clone(),
                    key: key.clone(),
                    attempts: 0,
                    result: Err(ServeError::Quarantined {
                        key,
                        attempts: entry.attempts,
                        cause: Box::new(entry.cause.clone()),
                    }),
                }));
                continue;
            }
            match self.cache.get(&key) {
                Some(record) => outcomes.push(Some(self.resolve_hit(spec, key, record))),
                None => {
                    if !slot_of.contains_key(&key) {
                        slot_of.insert(key.clone(), pending.len());
                        pending.push(PendingJob {
                            spec_idx: idx,
                            key,
                            attempts: 0,
                            next_wave: 0,
                            resolution: None,
                        });
                    }
                    outcomes.push(None);
                }
            }
        }

        // Pass 2: the wave loop. Eligible pending jobs are sharded by key
        // hash; each wave is one `par::map` spawn in which every worker
        // attempts up to `batch_size` jobs of its own shard (panics caught
        // per job). Retrying jobs wait `2^attempt` waves; when nothing is
        // eligible the wave counter skips ahead — backoff is attempt-count
        // time, not wall-clock time.
        let workers = self.config.workers;
        let batch_size = self.config.batch_size;
        let max_attempts = 1 + self.config.max_retries;
        let config = self.config;
        let mut wave_no: u64 = 0;
        loop {
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); workers];
            let mut scheduled = 0usize;
            let mut next_eligible: Option<u64> = None;
            for (slot, job) in pending.iter().enumerate() {
                if job.resolution.is_some() {
                    continue;
                }
                if job.next_wave > wave_no {
                    next_eligible =
                        Some(next_eligible.map_or(job.next_wave, |w| w.min(job.next_wave)));
                    continue;
                }
                let shard = (fnv64(job.key.as_bytes()) % workers as u64) as usize;
                if shards[shard].len() < batch_size {
                    shards[shard].push(slot);
                    scheduled += 1;
                } else {
                    // Shard full this wave; stays eligible for the next.
                    next_eligible = Some(next_eligible.map_or(wave_no + 1, |w| w.min(wave_no + 1)));
                }
            }
            if scheduled == 0 {
                match next_eligible {
                    Some(wave) => {
                        wave_no = wave.max(wave_no + 1);
                        continue;
                    }
                    None => break,
                }
            }
            let wave_results: Vec<Vec<(usize, Result<String, ServeError>)>> = {
                let pending_view = &pending;
                par::map(workers, workers, |w| {
                    shards[w]
                        .iter()
                        .map(|&slot| {
                            let job = &pending_view[slot];
                            (
                                slot,
                                attempt(&specs[job.spec_idx], &config, &job.key, job.attempts),
                            )
                        })
                        .collect()
                })
            };
            self.waves += 1;
            wave_no += 1;
            for (slot, result) in wave_results.into_iter().flatten() {
                let Some(job) = pending.get_mut(slot) else {
                    continue;
                };
                job.attempts += 1;
                if job.attempts > 1 {
                    self.faults.retries += 1;
                }
                match result {
                    Ok(record) => {
                        if job.attempts > 1 {
                            self.faults.recovered += 1;
                        }
                        job.resolution = Some(Ok(record));
                    }
                    Err(err) => {
                        match &err {
                            ServeError::Sim(SimError::TransportFault { .. }) => {
                                self.faults.faults_detected += 1;
                            }
                            ServeError::Panic { .. } => self.faults.panics += 1,
                            ServeError::BudgetExceeded { .. } => {
                                self.faults.budget_exceeded += 1;
                            }
                            _ => {}
                        }
                        if is_transient(&err) && job.attempts < max_attempts {
                            job.next_wave = wave_no + (1u64 << job.attempts.min(16));
                        } else if is_transient(&err) {
                            self.faults.quarantined += 1;
                            self.quarantine.insert(
                                job.key.clone(),
                                QuarantineEntry {
                                    cause: err.clone(),
                                    attempts: job.attempts,
                                },
                            );
                            job.resolution = Some(Err(ServeError::Quarantined {
                                key: job.key.clone(),
                                attempts: job.attempts,
                                cause: Box::new(err),
                            }));
                        } else {
                            job.resolution = Some(Err(err));
                        }
                    }
                }
            }
        }

        // Pass 3: cache fresh successes (first-appearance order) and fill
        // every remaining submission slot from its pending job.
        for job in &pending {
            if let Some(Ok(record)) = &job.resolution {
                self.cache.insert(job.key.clone(), record.clone());
                self.ran += 1;
            }
        }
        specs
            .iter()
            .zip(outcomes)
            .map(|(spec, outcome)| {
                if let Some(outcome) = outcome {
                    return outcome;
                }
                let key = spec.canonical_json();
                let (attempts, result) = match slot_of.get(&key).map(|&slot| &pending[slot]) {
                    Some(job) => match &job.resolution {
                        Some(Ok(record)) => (
                            job.attempts,
                            Ok(JobResult {
                                spec: spec.clone(),
                                key: key.clone(),
                                record: record.clone(),
                                cached: false,
                            }),
                        ),
                        Some(Err(err)) => (job.attempts, Err(err.clone())),
                        None => (
                            job.attempts,
                            Err(ServeError::Internal {
                                context: "wave loop left a pending job unresolved",
                            }),
                        ),
                    },
                    None => (
                        0,
                        Err(ServeError::Internal {
                            context: "uncached key has no pending slot",
                        }),
                    ),
                };
                JobOutcome {
                    spec: spec.clone(),
                    key,
                    attempts,
                    result,
                }
            })
            .collect()
    }

    /// Resolves one cache hit, optionally verifying it; a divergent entry
    /// is evicted and the fresh recomputation served (cache degradation —
    /// the cache can slow the server down, never make it wrong).
    fn resolve_hit(&mut self, spec: &JobSpec, key: String, record: String) -> JobOutcome {
        if !self.config.verify_hits {
            return JobOutcome {
                spec: spec.clone(),
                key: key.clone(),
                attempts: 0,
                result: Ok(JobResult {
                    spec: spec.clone(),
                    key,
                    record,
                    cached: true,
                }),
            };
        }
        let result = match recompute_plain(spec, &key) {
            Ok(fresh) if fresh == record => Ok(JobResult {
                spec: spec.clone(),
                key: key.clone(),
                record,
                cached: true,
            }),
            Ok(fresh) => {
                self.faults.cache_divergences += 1;
                self.cache.remove(&key);
                self.cache.insert(key.clone(), fresh.clone());
                Ok(JobResult {
                    spec: spec.clone(),
                    key: key.clone(),
                    record: fresh,
                    cached: false,
                })
            }
            Err(err) => Err(err),
        };
        JobOutcome {
            spec: spec.clone(),
            key,
            attempts: 1,
            result,
        }
    }

    /// Runs `spec` directly — no cache, no fleet, no chaos, no recovery.
    /// The reference the differential tests compare served records
    /// against.
    ///
    /// # Errors
    ///
    /// Fails on an invalid spec or any [`SimError`] of the run.
    pub fn run_direct(spec: &JobSpec) -> Result<String, ServeError> {
        validate(spec)?;
        let run = run_registry(spec, None)?;
        Ok(encode_record(&run.output, &run.metrics))
    }
}

/// One isolated execution attempt: the chaos plan (if any) is salted by
/// `(key, attempt)`, panics are caught at the job boundary, and budget
/// ceilings are enforced on the completed run's ledger.
fn attempt(
    spec: &JobSpec,
    config: &ServerConfig,
    key: &str,
    attempt_no: u32,
) -> Result<String, ServeError> {
    let fault = config
        .chaos
        .map(|plan| plan.salted(fnv64(key.as_bytes()) ^ u64::from(attempt_no)));
    let run = match catch_unwind(AssertUnwindSafe(|| run_registry(spec, fault))) {
        Ok(run) => run?,
        Err(payload) => {
            return Err(ServeError::Panic {
                key: key.to_owned(),
                message: panic_message(payload.as_ref()),
            })
        }
    };
    check_budget(config, key, &run.metrics)?;
    Ok(encode_record(&run.output, &run.metrics))
}

/// A chaos-free, panic-isolated recomputation (the `verify_hits` path).
fn recompute_plain(spec: &JobSpec, key: &str) -> Result<String, ServeError> {
    match catch_unwind(AssertUnwindSafe(|| run_registry(spec, None))) {
        Ok(run) => {
            let run = run?;
            Ok(encode_record(&run.output, &run.metrics))
        }
        Err(payload) => Err(ServeError::Panic {
            key: key.to_owned(),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Dispatches a validated spec through the protocol registry.
fn run_registry(spec: &JobSpec, fault: Option<FaultPlan>) -> Result<ProtocolRun, ServeError> {
    let entry = registry::find(&spec.protocol).ok_or(ServeError::Internal {
        context: "validated spec lost its registry entry",
    })?;
    let input =
        registry::generate_input(entry.kind, &spec.family, spec.n, spec.seed, spec.max_weight)
            .ok_or(ServeError::Internal {
                context: "validated spec lost its input family",
            })?;
    let options = RunOptions {
        bandwidth: spec.bandwidth,
        threads: if spec.threads == 0 {
            None
        } else {
            Some(spec.threads)
        },
        fault,
    };
    entry.run(&input, &options).map_err(ServeError::Sim)
}

/// Enforces the per-job budget ceilings on a completed run.
fn check_budget(config: &ServerConfig, key: &str, metrics: &Metrics) -> Result<(), ServeError> {
    let over_rounds = config.max_rounds.is_some_and(|max| metrics.rounds > max);
    let over_bits = config.max_bits.is_some_and(|max| metrics.total_bits > max);
    if over_rounds || over_bits {
        return Err(ServeError::BudgetExceeded {
            key: key.to_owned(),
            rounds: metrics.rounds,
            bits: metrics.total_bits,
        });
    }
    Ok(())
}

/// Renders a caught panic payload (the common `&str` / `String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Rejects structurally invalid specs before any work is scheduled.
fn validate(spec: &JobSpec) -> Result<(), ServeError> {
    let entry = registry::find(&spec.protocol)
        .ok_or_else(|| ServeError::UnknownProtocol(spec.protocol.clone()))?;
    let known = match entry.kind {
        InputKind::Unweighted => registry::UNWEIGHTED_FAMILIES,
        InputKind::Weighted => registry::WEIGHTED_FAMILIES,
    };
    if !known.contains(&spec.family.as_str()) {
        return Err(ServeError::UnknownFamily {
            protocol: spec.protocol.clone(),
            family: spec.family.clone(),
        });
    }
    let invalid = |reason| {
        Err(ServeError::InvalidSpec {
            key: spec.canonical_json(),
            reason,
        })
    };
    if spec.n == 0 {
        return invalid("n must be positive");
    }
    if spec.bandwidth == 0 {
        return invalid("bandwidth must be positive");
    }
    if entry.kind == InputKind::Weighted && spec.max_weight == 0 {
        return invalid("weighted families need max_weight >= 1");
    }
    Ok(())
}

/// Encodes a run as the canonical record stored in the cache: the output
/// digest, the flat ledger, and an FNV-1a digest of the full phase trail
/// (so the record pins every per-phase ledger row without storing it).
pub fn encode_record(output: &str, metrics: &Metrics) -> String {
    let mut trail = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            trail ^= u64::from(b);
            trail = trail.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for phase in &metrics.phases {
        mix(phase.label.as_bytes());
        mix(&phase.rounds.to_le_bytes());
        mix(&phase.bits.to_le_bytes());
        mix(&phase.messages.to_le_bytes());
        mix(&phase.max_link_bits_per_round.to_le_bytes());
        mix(&[u8::from(phase.strict_rounds)]);
    }
    format!(
        "{{\"output\":{},\"rounds\":{},\"total_bits\":{},\"messages\":{},\
         \"max_link_bits_per_round\":{},\"phases\":{},\"phase_digest\":\"{:016x}\"}}",
        output,
        metrics.rounds,
        metrics.total_bits,
        metrics.messages,
        metrics.max_link_bits_per_round,
        metrics.phases.len(),
        trail
    )
}

/// FNV-1a, the shard function: fast, dependency-free and stable across
/// platforms (so a given key always lands on the same worker).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_core::sim::transport::INJECTABLE_FAULTS;

    fn mst_spec(n: usize, seed: u64) -> JobSpec {
        JobSpec::weighted("mst", "weighted_random_tree", n, 8, 7, seed)
    }

    #[test]
    fn cold_then_warm_serves_identical_records() {
        let mut server = Server::new(ServerConfig::default());
        let spec = mst_spec(10, 0x5EED);
        let cold = server.run_job(&spec).unwrap();
        assert!(!cold.cached);
        let warm = server.run_job(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.record, warm.record);
        assert_eq!(cold.record, Server::run_direct(&spec).unwrap());
        let stats = server.stats();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.ran, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.faults, FaultStats::default());
    }

    #[test]
    fn duplicates_in_one_batch_run_once() {
        let mut server = Server::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let spec = mst_spec(8, 1);
        let other = mst_spec(8, 2);
        let results = server
            .submit_batch(&[spec.clone(), other.clone(), spec.clone()])
            .unwrap();
        assert_eq!(server.stats().ran, 2, "duplicate key ran once");
        assert_eq!(results[0].record, results[2].record);
        assert!(
            !results[2].cached,
            "same-batch duplicate is not a cache hit"
        );
        assert_ne!(results[0].record, results[1].record);
    }

    #[test]
    fn sharded_fleet_matches_direct_runs() {
        let mut server = Server::new(ServerConfig {
            workers: 4,
            batch_size: 2,
            ..ServerConfig::default()
        });
        let specs: Vec<JobSpec> = (0..9).map(|i| mst_spec(6 + i % 3, i as u64)).collect();
        let results = server.submit_batch(&specs).unwrap();
        for (spec, result) in specs.iter().zip(&results) {
            assert_eq!(result.record, Server::run_direct(spec).unwrap());
        }
        assert!(server.stats().waves >= 2, "batching forced multiple waves");
    }

    #[test]
    fn verify_hits_accepts_deterministic_entries() {
        let mut server = Server::new(ServerConfig {
            verify_hits: true,
            ..ServerConfig::default()
        });
        let spec = JobSpec::unweighted("triangle-count", "erdos_renyi(p=0.5)", 9, 16, 3);
        let cold = server.run_job(&spec).unwrap();
        let warm = server.run_job(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.record, warm.record);
        assert_eq!(server.stats().faults.cache_divergences, 0);
    }

    #[test]
    fn verify_hits_catches_and_degrades_a_corrupted_cache_entry() {
        let mut server = Server::new(ServerConfig {
            verify_hits: true,
            ..ServerConfig::default()
        });
        let spec = mst_spec(9, 0xBAD);
        server.inject_cache_record(&spec, "{\"output\":\"garbage\"}".to_owned());
        let served = server.run_job(&spec).unwrap();
        assert!(!served.cached, "a divergent hit is not served as cached");
        assert_eq!(served.record, Server::run_direct(&spec).unwrap());
        assert_eq!(server.stats().faults.cache_divergences, 1);
        // The evicted entry was replaced by the fresh record: the next hit
        // verifies cleanly.
        let warm = server.run_job(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(server.stats().faults.cache_divergences, 1);
    }

    #[test]
    fn invalid_specs_are_rejected_up_front() {
        let mut server = Server::new(ServerConfig::default());
        assert!(matches!(
            server.run_job(&JobSpec::unweighted("no-such", "path", 4, 1, 0)),
            Err(ServeError::UnknownProtocol(_))
        ));
        assert!(matches!(
            server.run_job(&JobSpec::unweighted("apsp", "weighted_path", 4, 1, 0)),
            Err(ServeError::UnknownFamily { .. })
        ));
        assert!(matches!(
            server.run_job(&JobSpec::unweighted("apsp", "path", 0, 1, 0)),
            Err(ServeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            server.run_job(&JobSpec::weighted("mst", "weighted_path", 4, 8, 0, 0)),
            Err(ServeError::InvalidSpec { .. })
        ));
        assert_eq!(server.stats().jobs, 0, "rejected batches count no jobs");
    }

    #[test]
    fn submit_jobs_types_invalid_specs_per_job() {
        let mut server = Server::new(ServerConfig::default());
        let outcomes = server.submit_jobs(&[
            mst_spec(8, 1),
            JobSpec::unweighted("no-such", "path", 4, 1, 0),
            mst_spec(8, 2),
        ]);
        assert!(outcomes[0].result.is_ok());
        assert!(matches!(
            outcomes[1].result,
            Err(ServeError::UnknownProtocol(_))
        ));
        assert!(outcomes[2].result.is_ok(), "a bad spec fails only itself");
        assert_eq!(server.stats().ran, 2);
    }

    #[test]
    fn thread_hint_does_not_change_records_or_keys() {
        let spec = mst_spec(9, 0xAB);
        let hinted = spec.clone().with_threads(4);
        assert_eq!(spec.canonical_json(), hinted.canonical_json());
        assert_eq!(
            Server::run_direct(&spec).unwrap(),
            Server::run_direct(&hinted).unwrap()
        );
    }

    #[test]
    fn panicking_job_is_isolated_and_quarantined() {
        let mut server = Server::new(ServerConfig {
            workers: 2,
            max_retries: 2,
            ..ServerConfig::default()
        });
        // chaos-probe panics deterministically on odd n; its wave-mates
        // must come through unharmed.
        let probe = JobSpec::unweighted("chaos-probe", "path", 5, 4, 0);
        let good = mst_spec(8, 3);
        let outcomes = server.submit_jobs(&[probe.clone(), good.clone()]);
        match &outcomes[0].result {
            Err(ServeError::Quarantined {
                attempts, cause, ..
            }) => {
                assert_eq!(*attempts, 3, "1 attempt + 2 retries");
                assert!(matches!(cause.as_ref(), ServeError::Panic { .. }));
            }
            other => panic!("expected quarantine after panics, got {other:?}"),
        }
        assert!(outcomes[1].result.is_ok(), "wave-mate survived the panic");
        let stats = server.stats().faults;
        assert_eq!(stats.panics, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.quarantined, 1);

        // Quarantined keys are answered without running; release re-arms.
        let again = server.submit_jobs(std::slice::from_ref(&probe));
        assert_eq!(again[0].attempts, 0);
        assert!(matches!(
            again[0].result,
            Err(ServeError::Quarantined { .. })
        ));
        assert_eq!(server.stats().faults.quarantine_hits, 1);
        assert_eq!(server.quarantined().len(), 1);
        assert!(server.release_quarantined(&probe));
        assert!(server.quarantined().is_empty());
    }

    #[test]
    fn budget_ceiling_converts_runaway_jobs_to_typed_errors() {
        let mut server = Server::new(ServerConfig {
            max_rounds: Some(1),
            ..ServerConfig::default()
        });
        let spec = mst_spec(10, 0x5EED);
        match server.run_job(&spec) {
            Err(ServeError::BudgetExceeded { rounds, .. }) => assert!(rounds > 1),
            other => panic!("expected a budget error, got {other:?}"),
        }
        let stats = server.stats().faults;
        assert_eq!(stats.budget_exceeded, 1);
        assert_eq!(stats.retries, 0, "budget errors are deterministic");
        assert_eq!(stats.quarantined, 0, "budget errors do not quarantine");
        // A roomy ceiling lets the same job through.
        let mut roomy = Server::new(ServerConfig {
            max_rounds: Some(1_000_000),
            max_bits: Some(u64::MAX),
            ..ServerConfig::default()
        });
        assert_eq!(
            roomy.run_job(&spec).unwrap().record,
            Server::run_direct(&spec).unwrap()
        );
    }

    #[test]
    fn chaos_outcomes_are_never_silently_wrong_and_retries_recover() {
        let chaos = FaultPlan::new(0xC4A05, 100_000, &INJECTABLE_FAULTS);
        let mut server = Server::new(ServerConfig {
            workers: 2,
            max_retries: 6,
            chaos: Some(chaos),
            ..ServerConfig::default()
        });
        let specs: Vec<JobSpec> = (0..6).map(|i| mst_spec(7 + i % 2, i as u64)).collect();
        let outcomes = server.submit_jobs(&specs);
        for outcome in &outcomes {
            match &outcome.result {
                Ok(result) => assert_eq!(
                    result.record,
                    Server::run_direct(&outcome.spec).unwrap(),
                    "a served record under chaos diverged"
                ),
                Err(err) => assert!(
                    matches!(err, ServeError::Quarantined { .. }),
                    "unexpected failure class: {err}"
                ),
            }
        }
        let stats = server.stats().faults;
        assert!(
            stats.faults_detected > 0,
            "a 10% plan injected nothing across {} jobs",
            specs.len()
        );
        assert!(stats.recovered > 0, "no retry recovered at 10%");
        assert!(stats.quarantined > 0, "no job exhausted its retries at 10%");

        // Determinism of retries: an identical server replays the exact
        // same outcome sequence, wave count and counters.
        let mut replay = Server::new(ServerConfig {
            workers: 2,
            max_retries: 6,
            chaos: Some(chaos),
            ..ServerConfig::default()
        });
        assert_eq!(replay.submit_jobs(&specs), outcomes);
        assert_eq!(replay.stats(), server.stats());
    }

    #[test]
    fn zero_rate_chaos_is_byte_identical_to_clean_serving() {
        let mut clean = Server::new(ServerConfig::default());
        let mut chaotic = Server::new(ServerConfig {
            chaos: Some(FaultPlan::new(5, 0, &INJECTABLE_FAULTS)),
            max_retries: 3,
            ..ServerConfig::default()
        });
        let specs: Vec<JobSpec> = (0..4).map(|i| mst_spec(6 + i, i as u64)).collect();
        let a = clean.submit_batch(&specs).unwrap();
        let b = chaotic.submit_batch(&specs).unwrap();
        assert_eq!(a, b);
        assert_eq!(chaotic.stats().faults, FaultStats::default());
    }
}
