//! The job server: a sharded, batching worker fleet fronted by the
//! transcript cache.
//!
//! [`Server::submit_batch`] takes a slice of [`JobSpec`]s and returns one
//! [`JobResult`] per spec, in submission order. Jobs whose canonical key is
//! cached are answered without running anything; the remaining *unique*
//! keys are sharded across `workers` by an FNV-1a hash of the key and
//! processed in waves — each wave is a single
//! [`par::map`] spawn in which every worker
//! drains up to `batch_size` jobs of its own shard, so small jobs amortize
//! thread-spawn cost instead of paying it per job.
//!
//! Correctness never depends on the cache: every record is a deterministic
//! function of its key, and [`ServerConfig::verify_hits`] makes the server
//! prove it per hit by recomputing and byte-comparing.

use std::collections::HashSet;
use std::fmt;

use clique_core::registry::{self, InputKind, RunOptions};
use clique_core::sim::{par, Metrics, SimError};

use crate::cache::{CacheStats, TranscriptCache};
use crate::spec::JobSpec;

/// Configuration of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker-fleet size jobs are sharded across.
    pub workers: usize,
    /// Maximum jobs one worker runs per wave (the batching grain).
    pub batch_size: usize,
    /// Transcript-cache capacity bound.
    pub cache_capacity: usize,
    /// When set, every cache hit is re-executed and byte-compared against
    /// the stored record ([`ServeError::CacheDivergence`] on mismatch).
    pub verify_hits: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            batch_size: 8,
            cache_capacity: 1024,
            verify_hits: false,
        }
    }
}

/// Everything that can go wrong serving a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The spec names a protocol id absent from the registry.
    UnknownProtocol(String),
    /// The spec names an input family the protocol's kind does not accept.
    UnknownFamily {
        /// The protocol id of the spec.
        protocol: String,
        /// The rejected family name.
        family: String,
    },
    /// A structurally invalid spec (zero sizes, missing weight bound).
    InvalidSpec {
        /// Canonical key of the offending spec.
        key: String,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The underlying simulation failed.
    Sim(SimError),
    /// A verified cache hit did not match its recomputation — a broken
    /// determinism contract, never expected in practice.
    CacheDivergence {
        /// Canonical key of the divergent entry.
        key: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownProtocol(id) => write!(f, "unknown protocol id {id:?}"),
            ServeError::UnknownFamily { protocol, family } => {
                write!(
                    f,
                    "protocol {protocol:?} accepts no input family {family:?}"
                )
            }
            ServeError::InvalidSpec { key, reason } => {
                write!(f, "invalid job spec {key}: {reason}")
            }
            ServeError::Sim(err) => write!(f, "simulation failed: {err}"),
            ServeError::CacheDivergence { key } => {
                write!(f, "cache entry for {key} diverged from a fresh run")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(err: SimError) -> Self {
        ServeError::Sim(err)
    }
}

/// One served job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobResult {
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Its canonical cache key.
    pub key: String,
    /// The encoded run record (output digest + full ledger; see
    /// [`Server::run_direct`]).
    pub record: String,
    /// True when the record came from the transcript cache.
    pub cached: bool,
}

/// Lifetime counters of a [`Server`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs submitted (including cache hits and duplicates).
    pub jobs: u64,
    /// Jobs actually executed by the fleet.
    pub ran: u64,
    /// Waves dispatched (= `par::map` spawns).
    pub waves: u64,
    /// Transcript-cache counters.
    pub cache: CacheStats,
}

/// A sharded, caching simulation job server.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    cache: TranscriptCache,
    jobs: u64,
    ran: u64,
    waves: u64,
}

impl Server {
    /// Creates a server.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `batch_size` or `cache_capacity` is zero.
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(config.batch_size > 0, "batch size must be positive");
        Self {
            cache: TranscriptCache::new(config.cache_capacity),
            config,
            jobs: 0,
            ran: 0,
            waves: 0,
        }
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            jobs: self.jobs,
            ran: self.ran,
            waves: self.waves,
            cache: self.cache.stats(),
        }
    }

    /// Serves a single job (a one-element [`Self::submit_batch`]).
    ///
    /// # Errors
    ///
    /// See [`Self::submit_batch`].
    pub fn run_job(&mut self, spec: &JobSpec) -> Result<JobResult, ServeError> {
        let mut results = self.submit_batch(std::slice::from_ref(spec))?;
        Ok(results.pop().expect("one spec yields one result"))
    }

    /// Serves a batch of jobs, returning one result per spec in submission
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid spec (unknown protocol/family, zero
    /// sizes), the first [`SimError`] of the fleet (in submission order of
    /// the failing job), or a [`ServeError::CacheDivergence`] under
    /// [`ServerConfig::verify_hits`]. Nothing is cached from a failed
    /// batch's failing job; earlier completed jobs of the batch stay
    /// cached.
    pub fn submit_batch(&mut self, specs: &[JobSpec]) -> Result<Vec<JobResult>, ServeError> {
        for spec in specs {
            validate(spec)?;
        }
        self.jobs += specs.len() as u64;

        // Pass 1: resolve cache hits, collect unique misses in first-
        // appearance order. Duplicate occurrences of one key stay `None`
        // and are filled from the freshly computed record below.
        let mut results: Vec<Option<JobResult>> = Vec::with_capacity(specs.len());
        let mut missing: Vec<(usize, String)> = Vec::new();
        let mut seen_missing: HashSet<String> = HashSet::new();
        for (idx, spec) in specs.iter().enumerate() {
            let key = spec.canonical_json();
            match self.cache.get(&key) {
                Some(record) => {
                    if self.config.verify_hits {
                        let fresh = Self::run_direct(spec)?;
                        if fresh != record {
                            return Err(ServeError::CacheDivergence { key });
                        }
                    }
                    results.push(Some(JobResult {
                        spec: spec.clone(),
                        key,
                        record,
                        cached: true,
                    }));
                }
                None => {
                    if seen_missing.insert(key.clone()) {
                        missing.push((idx, key));
                    }
                    results.push(None);
                }
            }
        }

        // Pass 2: shard unique misses across the fleet by key hash, then
        // run them in waves of at most `batch_size` jobs per worker per
        // spawn.
        let workers = self.config.workers;
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (slot, (_, key)) in missing.iter().enumerate() {
            shards[(fnv64(key.as_bytes()) % workers as u64) as usize].push(slot);
        }
        let mut computed: Vec<Option<Result<String, SimError>>> = vec![None; missing.len()];
        let mut cursors = vec![0usize; workers];
        while cursors
            .iter()
            .zip(&shards)
            .any(|(&cur, shard)| cur < shard.len())
        {
            let batch_size = self.config.batch_size;
            let wave: Vec<Vec<usize>> = (0..workers)
                .map(|w| {
                    let end = (cursors[w] + batch_size).min(shards[w].len());
                    let slots = shards[w][cursors[w]..end].to_vec();
                    cursors[w] = end;
                    slots
                })
                .collect();
            let wave_results: Vec<Vec<(usize, Result<String, SimError>)>> =
                par::map(workers, workers, |w| {
                    wave[w]
                        .iter()
                        .map(|&slot| (slot, Self::run_direct_raw(&specs[missing[slot].0])))
                        .collect()
                });
            self.waves += 1;
            for (slot, outcome) in wave_results.into_iter().flatten() {
                computed[slot] = Some(outcome);
            }
        }

        // Propagate the first failure in submission order of the misses.
        for outcome in &computed {
            if let Some(Err(err)) = outcome {
                return Err(ServeError::Sim(err.clone()));
            }
        }

        // Cache fresh records (ascending first-appearance order) and fill
        // every remaining submission slot.
        let mut fresh: Vec<(String, String)> = Vec::with_capacity(missing.len());
        for (slot, (_, key)) in missing.iter().enumerate() {
            let record = computed[slot]
                .take()
                .expect("every miss was computed")
                .expect("errors were propagated above");
            self.cache.insert(key.clone(), record.clone());
            self.ran += 1;
            fresh.push((key.clone(), record));
        }
        for (idx, spec) in specs.iter().enumerate() {
            if results[idx].is_none() {
                let key = spec.canonical_json();
                let record = fresh
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, r)| r.clone())
                    .expect("every uncached key was computed this batch");
                results[idx] = Some(JobResult {
                    spec: spec.clone(),
                    key,
                    record,
                    cached: false,
                });
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("slot filled"))
            .collect())
    }

    /// Runs `spec` directly — no cache, no fleet. The reference the
    /// differential tests compare served records against.
    ///
    /// # Errors
    ///
    /// Fails like [`Self::submit_batch`] on an invalid spec or a
    /// [`SimError`].
    pub fn run_direct(spec: &JobSpec) -> Result<String, ServeError> {
        validate(spec)?;
        Self::run_direct_raw(spec).map_err(ServeError::from)
    }

    /// [`Self::run_direct`] minus validation (specs reaching the fleet are
    /// already validated).
    fn run_direct_raw(spec: &JobSpec) -> Result<String, SimError> {
        let entry = registry::find(&spec.protocol).expect("spec was validated");
        let input =
            registry::generate_input(entry.kind, &spec.family, spec.n, spec.seed, spec.max_weight)
                .expect("spec was validated");
        let options = RunOptions {
            bandwidth: spec.bandwidth,
            threads: if spec.threads == 0 {
                None
            } else {
                Some(spec.threads)
            },
        };
        let run = entry.run(&input, &options)?;
        Ok(encode_record(&run.output, &run.metrics))
    }
}

/// Rejects structurally invalid specs before any work is scheduled.
fn validate(spec: &JobSpec) -> Result<(), ServeError> {
    let entry = registry::find(&spec.protocol)
        .ok_or_else(|| ServeError::UnknownProtocol(spec.protocol.clone()))?;
    let known = match entry.kind {
        InputKind::Unweighted => registry::UNWEIGHTED_FAMILIES,
        InputKind::Weighted => registry::WEIGHTED_FAMILIES,
    };
    if !known.contains(&spec.family.as_str()) {
        return Err(ServeError::UnknownFamily {
            protocol: spec.protocol.clone(),
            family: spec.family.clone(),
        });
    }
    let invalid = |reason| {
        Err(ServeError::InvalidSpec {
            key: spec.canonical_json(),
            reason,
        })
    };
    if spec.n == 0 {
        return invalid("n must be positive");
    }
    if spec.bandwidth == 0 {
        return invalid("bandwidth must be positive");
    }
    if entry.kind == InputKind::Weighted && spec.max_weight == 0 {
        return invalid("weighted families need max_weight >= 1");
    }
    Ok(())
}

/// Encodes a run as the canonical record stored in the cache: the output
/// digest, the flat ledger, and an FNV-1a digest of the full phase trail
/// (so the record pins every per-phase ledger row without storing it).
pub fn encode_record(output: &str, metrics: &Metrics) -> String {
    let mut trail = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            trail ^= u64::from(b);
            trail = trail.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for phase in &metrics.phases {
        mix(phase.label.as_bytes());
        mix(&phase.rounds.to_le_bytes());
        mix(&phase.bits.to_le_bytes());
        mix(&phase.messages.to_le_bytes());
        mix(&phase.max_link_bits_per_round.to_le_bytes());
        mix(&[u8::from(phase.strict_rounds)]);
    }
    format!(
        "{{\"output\":{},\"rounds\":{},\"total_bits\":{},\"messages\":{},\
         \"max_link_bits_per_round\":{},\"phases\":{},\"phase_digest\":\"{:016x}\"}}",
        output,
        metrics.rounds,
        metrics.total_bits,
        metrics.messages,
        metrics.max_link_bits_per_round,
        metrics.phases.len(),
        trail
    )
}

/// FNV-1a, the shard function: fast, dependency-free and stable across
/// platforms (so a given key always lands on the same worker).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mst_spec(n: usize, seed: u64) -> JobSpec {
        JobSpec::weighted("mst", "weighted_random_tree", n, 8, 7, seed)
    }

    #[test]
    fn cold_then_warm_serves_identical_records() {
        let mut server = Server::new(ServerConfig::default());
        let spec = mst_spec(10, 0x5EED);
        let cold = server.run_job(&spec).unwrap();
        assert!(!cold.cached);
        let warm = server.run_job(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.record, warm.record);
        assert_eq!(cold.record, Server::run_direct(&spec).unwrap());
        let stats = server.stats();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.ran, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn duplicates_in_one_batch_run_once() {
        let mut server = Server::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let spec = mst_spec(8, 1);
        let other = mst_spec(8, 2);
        let results = server
            .submit_batch(&[spec.clone(), other.clone(), spec.clone()])
            .unwrap();
        assert_eq!(server.stats().ran, 2, "duplicate key ran once");
        assert_eq!(results[0].record, results[2].record);
        assert!(
            !results[2].cached,
            "same-batch duplicate is not a cache hit"
        );
        assert_ne!(results[0].record, results[1].record);
    }

    #[test]
    fn sharded_fleet_matches_direct_runs() {
        let mut server = Server::new(ServerConfig {
            workers: 4,
            batch_size: 2,
            ..ServerConfig::default()
        });
        let specs: Vec<JobSpec> = (0..9).map(|i| mst_spec(6 + i % 3, i as u64)).collect();
        let results = server.submit_batch(&specs).unwrap();
        for (spec, result) in specs.iter().zip(&results) {
            assert_eq!(result.record, Server::run_direct(spec).unwrap());
        }
        assert!(server.stats().waves >= 2, "batching forced multiple waves");
    }

    #[test]
    fn verify_hits_accepts_deterministic_entries() {
        let mut server = Server::new(ServerConfig {
            verify_hits: true,
            ..ServerConfig::default()
        });
        let spec = JobSpec::unweighted("triangle-count", "erdos_renyi(p=0.5)", 9, 16, 3);
        let cold = server.run_job(&spec).unwrap();
        let warm = server.run_job(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.record, warm.record);
    }

    #[test]
    fn invalid_specs_are_rejected_up_front() {
        let mut server = Server::new(ServerConfig::default());
        assert!(matches!(
            server.run_job(&JobSpec::unweighted("no-such", "path", 4, 1, 0)),
            Err(ServeError::UnknownProtocol(_))
        ));
        assert!(matches!(
            server.run_job(&JobSpec::unweighted("apsp", "weighted_path", 4, 1, 0)),
            Err(ServeError::UnknownFamily { .. })
        ));
        assert!(matches!(
            server.run_job(&JobSpec::unweighted("apsp", "path", 0, 1, 0)),
            Err(ServeError::InvalidSpec { .. })
        ));
        assert!(matches!(
            server.run_job(&JobSpec::weighted("mst", "weighted_path", 4, 8, 0, 0)),
            Err(ServeError::InvalidSpec { .. })
        ));
        assert_eq!(server.stats().jobs, 0, "rejected batches count no jobs");
    }

    #[test]
    fn thread_hint_does_not_change_records_or_keys() {
        let spec = mst_spec(9, 0xAB);
        let hinted = spec.clone().with_threads(4);
        assert_eq!(spec.canonical_json(), hinted.canonical_json());
        assert_eq!(
            Server::run_direct(&spec).unwrap(),
            Server::run_direct(&hinted).unwrap()
        );
    }
}
