//! The transcript cache: canonical job-spec JSON → encoded run record.
//!
//! A plain LRU map with a hard capacity bound. Because every record it
//! stores is a *deterministic* function of its key (the registry contract:
//! same spec → byte-identical transcript at any worker count, under any
//! transport), the cache can never serve a stale or divergent entry — the
//! only thing eviction costs is recomputation. The server optionally
//! re-validates this invariant per hit (`verify_hits`).

use std::collections::{HashMap, VecDeque};

/// Hit/miss/eviction counters of a [`TranscriptCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache from canonical job keys to encoded run records.
#[derive(Clone, Debug)]
pub struct TranscriptCache {
    capacity: usize,
    map: HashMap<String, String>,
    /// Recency order: front = least recently used, back = most recent.
    order: VecDeque<String>,
    stats: CacheStats,
}

impl TranscriptCache {
    /// Creates a cache holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "transcript cache capacity must be positive");
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &str) -> Option<String> {
        match self.map.get(key) {
            Some(record) => {
                let record = record.clone();
                self.stats.hits += 1;
                self.touch(key);
                Some(record)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key -> record`, evicting the least recently
    /// used entry if the cache is full and the key is new.
    pub fn insert(&mut self, key: String, record: String) {
        if self.map.contains_key(&key) {
            self.touch(&key);
            self.map.insert(key, record);
            return;
        }
        if self.map.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, record);
    }

    /// Removes `key`, returning its record. Used by the server to evict a
    /// divergent entry; not counted as a capacity eviction.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        let record = self.map.remove(key)?;
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
        }
        Some(record)
    }

    /// Moves `key` (which must be present in `order`) to the back.
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            if let Some(k) = self.order.remove(pos) {
                self.order.push_back(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_misses_and_refreshed_inserts() {
        let mut cache = TranscriptCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), "1".into());
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        cache.insert("a".into(), "2".into());
        assert_eq!(cache.get("a").as_deref(), Some("2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_at_the_capacity_bound() {
        let mut cache = TranscriptCache::new(2);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        // Touch "a" so "b" becomes the eviction candidate.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), "3".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("b").is_none(), "LRU entry was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = TranscriptCache::new(0);
    }

    #[test]
    fn remove_drops_the_entry_without_counting_an_eviction() {
        let mut cache = TranscriptCache::new(2);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        assert_eq!(cache.remove("a").as_deref(), Some("1"));
        assert!(cache.remove("a").is_none());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        // The freed slot is reusable without displacing "b".
        cache.insert("c".into(), "3".into());
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get("b").is_some() && cache.get("c").is_some());
    }
}
