//! Job specifications and their canonical encoding.
//!
//! A [`JobSpec`] names one simulation job: a registry protocol, a generated
//! input label and the model bandwidth. Its [`JobSpec::canonical_json`]
//! encoding — fixed key order, no whitespace, escaped strings — is the
//! cache key of the serving layer: equal specs encode to equal bytes, and
//! distinct `(protocol, family, n, bandwidth, max_weight, seed)` tuples
//! encode to distinct bytes (pinned by the round-trip and collision
//! proptests). The `threads` knob is deliberately *not* part of the
//! encoding: worker counts never change transcripts (the PR-5 determinism
//! contract), so two jobs differing only in `threads` are the same job and
//! must share a cache entry.

use std::fmt;

/// One simulation job.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Registry protocol id (e.g. `"mst"`, `"apsp"`).
    pub protocol: String,
    /// Input family name understood by
    /// [`registry::generate_input`](clique_core::registry::generate_input).
    pub family: String,
    /// Number of vertices (= players).
    pub n: usize,
    /// Link bandwidth `b` of the model instance.
    pub bandwidth: usize,
    /// Maximum edge weight for weighted families (ignored otherwise, but
    /// still part of the key).
    pub max_weight: u64,
    /// The input generator seed.
    pub seed: u64,
    /// Worker count for the job's engines (`0` = default resolution).
    /// Execution hint only — not part of the canonical encoding.
    pub threads: usize,
}

impl JobSpec {
    /// A spec for an unweighted-input protocol (`max_weight` 0).
    pub fn unweighted(protocol: &str, family: &str, n: usize, bandwidth: usize, seed: u64) -> Self {
        Self {
            protocol: protocol.to_owned(),
            family: family.to_owned(),
            n,
            bandwidth,
            max_weight: 0,
            seed,
            threads: 0,
        }
    }

    /// A spec for a weighted-input protocol.
    pub fn weighted(
        protocol: &str,
        family: &str,
        n: usize,
        bandwidth: usize,
        max_weight: u64,
        seed: u64,
    ) -> Self {
        Self {
            protocol: protocol.to_owned(),
            family: family.to_owned(),
            n,
            bandwidth,
            max_weight,
            seed,
            threads: 0,
        }
    }

    /// Returns the spec with an engine worker-count hint.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The canonical encoding (and cache key): fixed key order, no
    /// whitespace, `threads` excluded.
    pub fn canonical_json(&self) -> String {
        format!(
            "{{\"protocol\":{},\"family\":{},\"n\":{},\"bandwidth\":{},\"max_weight\":{},\"seed\":{}}}",
            json_string(&self.protocol),
            json_string(&self.family),
            self.n,
            self.bandwidth,
            self.max_weight,
            self.seed
        )
    }

    /// Parses a canonical encoding back into a spec (`threads` = 0).
    /// Strict: accepts exactly the bytes [`Self::canonical_json`] produces.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecParseError`] describing the first offending byte
    /// position if the input deviates from the canonical form.
    pub fn from_canonical_json(encoded: &str) -> Result<Self, SpecParseError> {
        let mut parser = Parser {
            bytes: encoded.as_bytes(),
            pos: 0,
        };
        parser.literal("{\"protocol\":")?;
        let protocol = parser.string()?;
        parser.literal(",\"family\":")?;
        let family = parser.string()?;
        parser.literal(",\"n\":")?;
        let n = parser.unsigned()?;
        parser.literal(",\"bandwidth\":")?;
        let bandwidth = parser.unsigned()?;
        parser.literal(",\"max_weight\":")?;
        let max_weight = parser.unsigned()?;
        parser.literal(",\"seed\":")?;
        let seed = parser.unsigned()?;
        parser.literal("}")?;
        parser.end()?;
        let to_usize = |value: u64, pos: usize| {
            usize::try_from(value).map_err(|_| SpecParseError {
                pos,
                expected: "a usize-sized integer",
            })
        };
        Ok(Self {
            protocol,
            family,
            n: to_usize(n, 0)?,
            bandwidth: to_usize(bandwidth, 0)?,
            max_weight,
            seed,
            threads: 0,
        })
    }
}

/// Why a canonical encoding failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecParseError {
    /// Byte offset of the first deviation.
    pub pos: usize,
    /// What the canonical form requires at that offset.
    pub expected: &'static str,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not a canonical job spec: expected {} at byte {}",
            self.expected, self.pos
        )
    }
}

impl std::error::Error for SpecParseError {}

/// Escapes a string as a JSON string literal (quote, backslash and control
/// characters only — the canonical form never escapes anything else).
pub(crate) fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A strict cursor over the canonical bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, expected: &'static str) -> SpecParseError {
        SpecParseError {
            pos: self.pos,
            expected,
        }
    }

    fn literal(&mut self, expected: &'static str) -> Result<(), SpecParseError> {
        let end = self.pos + expected.len();
        if self.bytes.get(self.pos..end) == Some(expected.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(self.fail(expected))
        }
    }

    fn string(&mut self) -> Result<String, SpecParseError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.fail("a string literal"));
        }
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("a closing quote")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.fail("valid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("four hex digits"))?;
                            // The canonical escaper only emits \u00XX for
                            // control characters; those are single bytes.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.fail("a valid codepoint"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn unsigned(&mut self) -> Result<u64, SpecParseError> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.fail("a decimal integer"));
        }
        // Canonical integers have no leading zeros (format! never emits
        // them, except for the number 0 itself).
        if self.pos - start > 1 && self.bytes[start] == b'0' {
            self.pos = start;
            return Err(self.fail("no leading zeros"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.fail("an integer within u64"))
    }

    fn end(&self) -> Result<(), SpecParseError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.fail("end of input"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encoding_is_stable_and_round_trips() {
        let spec = JobSpec::weighted("mst", "weighted_path", 16, 8, 7, 0xDEADBEEF).with_threads(4);
        let encoded = spec.canonical_json();
        assert_eq!(
            encoded,
            "{\"protocol\":\"mst\",\"family\":\"weighted_path\",\"n\":16,\
             \"bandwidth\":8,\"max_weight\":7,\"seed\":3735928559}"
        );
        let parsed = JobSpec::from_canonical_json(&encoded).unwrap();
        // threads is an execution hint, not part of the key.
        assert_eq!(parsed, spec.clone().with_threads(0));
        assert_eq!(parsed.canonical_json(), encoded);
    }

    #[test]
    fn escaped_names_round_trip() {
        let spec = JobSpec::unweighted("we\"ird\\", "fam\nily\t\u{1}", 3, 1, 0);
        let encoded = spec.canonical_json();
        let parsed = JobSpec::from_canonical_json(&encoded).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn non_canonical_inputs_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"protocol\":\"mst\"}",
            // Reordered keys.
            "{\"family\":\"path\",\"protocol\":\"apsp\",\"n\":3,\"bandwidth\":1,\"max_weight\":0,\"seed\":0}",
            // Whitespace.
            "{\"protocol\": \"apsp\",\"family\":\"path\",\"n\":3,\"bandwidth\":1,\"max_weight\":0,\"seed\":0}",
            // Leading zero.
            "{\"protocol\":\"apsp\",\"family\":\"path\",\"n\":03,\"bandwidth\":1,\"max_weight\":0,\"seed\":0}",
            // Trailing garbage.
            "{\"protocol\":\"apsp\",\"family\":\"path\",\"n\":3,\"bandwidth\":1,\"max_weight\":0,\"seed\":0} ",
        ] {
            assert!(JobSpec::from_canonical_json(bad).is_err(), "{bad:?}");
        }
    }
}
