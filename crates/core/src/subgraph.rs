//! Subgraph detection in `CLIQUE-BCAST` with a known Turán bound
//! (Section 3.1, Theorem 7) and the underlying distributed reconstruction
//! protocol of Becker et al. \[2\].
//!
//! The protocol `A(G, k)` ([`SketchReconstruction`]): every node broadcasts
//! an `O(k log n)`-bit sketch of its neighbourhood (degree plus `k` power
//! sums over a prime field). If the degeneracy of `G` is at most `k`, all
//! nodes can reconstruct `G` entirely from the blackboard; otherwise they
//! detect the failure. With `k = 4·ex(n, H)/n` (Claim 6) this yields
//! Theorem 7 ([`TuranSketchDetection`]): `H`-subgraph detection in
//! `O(ex(n, H)·log n/(n·b))` rounds — and a failed reconstruction already
//! certifies that `G` is not `H`-free.

use clique_graphs::iso::find_subgraph;
use clique_graphs::{Graph, Pattern};
use clique_sim::bits::bits_for_universe;
use clique_sim::prelude::*;
use clique_sketch::reconstruct::{decode_graph, encode_graph, DecodeError, NodeSketch};
use clique_sketch::PowerSumSketch;

use crate::outcome::{Detection, DetectionOutcome};

/// The output of the reconstruction protocol `A(G, k)`.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    /// The reconstructed graph, or the failure reason (degeneracy exceeded
    /// the sketch capacity).
    pub result: Result<Graph, DecodeError>,
    /// The sketch capacity `k` used.
    pub capacity: usize,
}

impl Reconstruction {
    /// Returns `true` if the reconstruction succeeded.
    pub fn success(&self) -> bool {
        self.result.is_ok()
    }
}

/// The result of running the reconstruction protocol `A(G, k)`.
pub type ReconstructionRun = RunOutcome<Reconstruction>;

/// The Becker et al. \[2\] reconstruction protocol `A(G, k)` as a
/// [`Protocol`]: one `O(k log n)`-bit broadcast per node, then a local
/// peel-decode of the blackboard.
#[derive(Clone, Debug)]
pub struct SketchReconstruction<'a> {
    graph: &'a Graph,
    capacity: usize,
}

impl<'a> SketchReconstruction<'a> {
    /// Prepares the protocol with sketch capacity `capacity`.
    pub fn new(graph: &'a Graph, capacity: usize) -> Self {
        Self { graph, capacity }
    }
}

impl Protocol for SketchReconstruction<'_> {
    type Output = Reconstruction;

    fn run(&mut self, session: &mut Session) -> Result<Reconstruction, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        assert!(self.capacity > 0, "sketch capacity must be positive");

        // Each node publishes its sketch.
        let sketches = encode_graph(self.graph, self.capacity);
        let messages: Vec<BitString> = sketches.iter().map(|s| encode_sketch(s, n)).collect();
        let inboxes = session.broadcast_all("broadcast neighbourhood sketches", &messages)?;

        // Node 0 (like every node) decodes the blackboard. It combines the
        // received sketches with its own.
        let mut received: Vec<NodeSketch> = Vec::with_capacity(n);
        for v in 0..n {
            if v == 0 {
                received.push(sketches[0].clone());
            } else {
                let payload = inboxes[0]
                    .broadcast_from(NodeId::new(v))
                    .expect("every node broadcasts a sketch");
                received.push(decode_sketch(payload, n, self.capacity));
            }
        }
        Ok(Reconstruction {
            result: decode_graph(&received),
            capacity: self.capacity,
        })
    }
}

/// Runs the `⌈O(k log n)/b⌉`-round reconstruction protocol `A(G, k)` in
/// `CLIQUE-BCAST(n, b)` and decodes the result.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty or `capacity == 0`.
pub fn run_reconstruction_protocol(
    graph: &Graph,
    capacity: usize,
    bandwidth: usize,
) -> Result<ReconstructionRun, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::broadcast(n, bandwidth))
        .execute(&mut SketchReconstruction::new(graph, capacity))
}

/// Serialises a [`NodeSketch`] for the blackboard: the degree followed by
/// the `k` power sums.
fn encode_sketch(sketch: &NodeSketch, n: usize) -> BitString {
    let mut bits = BitString::new();
    bits.push_bits(sketch.degree as u64, bits_for_universe(n as u64).max(1));
    let element_bits = sketch.sketch.field().element_bits();
    for &sum in sketch.sketch.power_sums() {
        bits.push_bits(sum, element_bits);
    }
    bits
}

/// Parses a sketch broadcast by another node.
fn decode_sketch(payload: &BitString, n: usize, capacity: usize) -> NodeSketch {
    let mut reader = payload.reader();
    let degree = reader
        .read_bits(bits_for_universe(n as u64).max(1))
        .expect("sketch payload too short") as usize;
    let probe = PowerSumSketch::new(n as u64, capacity);
    let element_bits = probe.field().element_bits();
    let sums: Vec<u64> = (0..capacity)
        .map(|_| {
            reader
                .read_bits(element_bits)
                .expect("sketch payload too short")
        })
        .collect();
    NodeSketch {
        degree,
        sketch: PowerSumSketch::from_parts(n as u64, capacity, degree as i64, sums),
    }
}

/// Theorem 7 as a [`Protocol`]: `H`-subgraph detection with the
/// Turán-number-derived sketch capacity `k = ⌈4·ex(n, H)/n⌉`.
///
/// If the reconstruction succeeds the answer is exact (a witness is
/// returned when a copy exists); if it fails, Claim 6 already implies that
/// `G` is not `H`-free, so the protocol answers "contains" without a
/// witness.
#[derive(Clone, Debug)]
pub struct TuranSketchDetection<'a> {
    graph: &'a Graph,
    pattern: &'a Pattern,
}

impl<'a> TuranSketchDetection<'a> {
    /// Prepares the protocol for the given input graph and pattern.
    pub fn new(graph: &'a Graph, pattern: &'a Pattern) -> Self {
        Self { graph, pattern }
    }
}

impl Protocol for TuranSketchDetection<'_> {
    type Output = Detection;

    fn run(&mut self, session: &mut Session) -> Result<Detection, SimError> {
        let n = self.graph.vertex_count();
        let capacity = self
            .pattern
            .degeneracy_threshold(n)
            .min(n.saturating_sub(1))
            .max(1);
        // The reconstruction is the only communication; run it on this
        // session's ledger.
        let run = session.run_protocol(&mut SketchReconstruction::new(self.graph, capacity))?;
        let (contains, witness) = match &run.result {
            Ok(reconstructed) => {
                let witness = find_subgraph(reconstructed, &self.pattern.graph());
                (witness.is_some(), witness)
            }
            Err(_) => (true, None),
        };
        Ok(Detection { contains, witness })
    }
}

/// Runs [`TuranSketchDetection`] in `CLIQUE-BCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn detect_subgraph_turan(
    graph: &Graph,
    pattern: &Pattern,
    bandwidth: usize,
) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::broadcast(n, bandwidth))
        .execute(&mut TuranSketchDetection::new(graph, pattern))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::degeneracy::degeneracy;
    use clique_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn reconstruction_protocol_round_trip() {
        let g = generators::cycle(40);
        let run = run_reconstruction_protocol(&g, 2, 4).unwrap();
        assert!(run.success());
        // Message size is O(k log n) bits, so rounds = ceil(that / b).
        assert!(
            run.rounds() >= 3 && run.rounds() <= 8,
            "rounds = {}",
            run.rounds()
        );
        assert_eq!(run.into_output().result.unwrap(), g);
    }

    #[test]
    fn reconstruction_protocol_detects_high_degeneracy() {
        let g = generators::complete(12);
        let run = run_reconstruction_protocol(&g, 3, 8).unwrap();
        assert!(!run.success());
        assert!(matches!(
            run.result,
            Err(DecodeError::DegeneracyExceeded { capacity: 3 })
        ));
    }

    #[test]
    fn turan_detection_on_c4() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAB);
        // A C4-free graph: the polarity graph.
        let c4_free = clique_graphs::extremal::dense_c4_free(31);
        let no = detect_subgraph_turan(&c4_free, &Pattern::Cycle(4), 8).unwrap();
        assert!(!no.contains);

        // Plant a C4 into a sparse host.
        let host = generators::erdos_renyi(31, 0.02, &mut rng);
        let (with_c4, _) = generators::plant_copy(&host, &generators::cycle(4), &mut rng);
        let yes = detect_subgraph_turan(&with_c4, &Pattern::Cycle(4), 8).unwrap();
        assert!(yes.contains);
    }

    #[test]
    fn turan_detection_on_trees_is_cheap() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAC);
        let g = generators::random_tree(64, &mut rng);
        let pattern = Pattern::Path(4);
        let outcome = detect_subgraph_turan(&g, &pattern, 4).unwrap();
        assert!(outcome.contains);
        // Tree patterns have ex(n, H) = O(n), so the sketch capacity is O(1)
        // and the protocol runs in O(log n / b) rounds — far less than the
        // trivial n/b = 16.
        assert!(outcome.rounds() <= 12, "rounds = {}", outcome.rounds());
    }

    #[test]
    fn turan_detection_answers_contains_when_reconstruction_fails() {
        // A dense graph with many K4s: degeneracy far above the threshold,
        // so reconstruction fails, and the answer "contains" is correct.
        let g = generators::complete(24);
        let outcome = detect_subgraph_turan(&g, &Pattern::Cycle(4), 8).unwrap();
        assert!(outcome.contains);
        assert!(outcome.witness.is_none());
    }

    #[test]
    fn turan_detection_agrees_with_ground_truth_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAD);
        for _ in 0..6 {
            let g = generators::erdos_renyi(26, 0.12, &mut rng);
            for pattern in [Pattern::Cycle(4), Pattern::Clique(3), Pattern::Star(3)] {
                let expected = clique_graphs::iso::contains_subgraph(&g, &pattern.graph());
                let outcome = detect_subgraph_turan(&g, &pattern, 6).unwrap();
                assert_eq!(
                    outcome.contains,
                    expected,
                    "pattern {pattern} on graph with {} edges (degeneracy {})",
                    g.edge_count(),
                    degeneracy(&g)
                );
            }
        }
    }

    #[test]
    fn sketch_serialisation_round_trips() {
        let g = generators::turan_graph(20, 4);
        let sketches = encode_graph(&g, 6);
        for s in &sketches {
            let bits = encode_sketch(s, 20);
            let back = decode_sketch(&bits, 20, 6);
            assert_eq!(&back, s);
        }
    }
}
