//! Deterministic minimum-spanning-forest protocol on graph sketches.
//!
//! The flagship workload the paper's broadcast model is known to support in
//! constant rounds: Nowicki, *A Deterministic Algorithm for the MST Problem
//! in Constant Rounds of Congested Clique* (STOC 2021), building on the
//! sketch-based Borůvka line of Hegeman et al. and Ghaffari–Parter. This
//! module implements the core of that machinery — deterministic
//! edge-incidence sketching plus Borůvka contraction — as one more
//! [`Protocol`] over the blackboard model:
//!
//! 1. **Unique weights.** Edges are ordered by the `(w, u, v)` key of
//!    [`WeightedGraph::edge_order_key`], so the minimum spanning forest is
//!    unique and the cut property picks one safe edge per component. The
//!    whole triple is packed into a single integer `w·n² + u·n + v`, which
//!    makes "lightest cut edge" and "smallest decoded sketch element" the
//!    same thing — the decoder needs no access to the weights.
//! 2. **Incidence sketches.** Node `v` publishes the
//!    [`SignedPowerSumSketch`] of its incident edge keys, signed `+1`
//!    towards higher-numbered neighbours and `−1` towards lower-numbered
//!    ones. By linearity, summing the published sketches of any vertex set
//!    `S` cancels the edges inside `S` and leaves exactly the cut
//!    `E(S, V∖S)`, each edge with multiplicity `±1`.
//! 3. **Local Borůvka to exhaustion.** After one broadcast every node holds
//!    the same blackboard, so every node runs the same contraction: sum the
//!    member sketches of each component, decode the cut, pick the minimum
//!    key (the tie-broken lightest outgoing edge — safe by the cut
//!    property), merge, and repeat until no component's cut decodes any
//!    more. The vertex sketches are *static* under contraction — merging
//!    only changes which of them are summed — so one broadcast per
//!    capacity level supports arbitrarily many Borůvka merges.
//! 4. **Capacity escalation.** A phase ends with a one-bit all-done vote
//!    (the [`ApspProtocol`](crate::algebraic::ApspProtocol) early-exit
//!    pattern). If unfinished components remain, every one of them has a
//!    cut larger than the current capacity `k`; the capacity doubles and
//!    one more sketch broadcast follows. Families whose contractions keep
//!    a low-cut component available — paths, cycles, trees, stars, sparse
//!    random graphs — finish in a *single* phase at any size, which is the
//!    constant-round plateau experiment E15 measures; a clique forces
//!    `Θ(log(n/k))` escalations and serves as the contrast row.
//!
//! Determinism note: the protocol is deterministic end to end — ties are
//! impossible under the `(w, u, v)` order, the contraction loop visits
//! components in ascending representative order, and by the
//! parallelism-never-changes-transcripts invariant (DESIGN.md, Concurrency)
//! the round/bit ledger is identical at every worker count.
//!
//! Decoding guarantees: a component cut of size at most `k` decodes
//! exactly; any cut of size at most `2k` is *detected* as over-capacity
//! (the `2k` published power sums of ≤ 2k distinct elements form a
//! full-rank Vandermonde system). Beyond `2k` a false decode would require
//! a signed set of ≤ `k` genuine edge keys to reproduce all `2k` power
//! sums *and* survive the crossing-edge check below; the differential
//! oracle grid pins that this never bites on the test families, and any
//! residual miss is caught by escalation, not by a wrong output.

use clique_graphs::iso::SpanningForest;
use clique_graphs::weighted::UnionFind;
use clique_graphs::WeightedGraph;
use clique_sim::prelude::*;
use clique_sketch::signed::signed_sketch_bits;
use clique_sketch::SignedPowerSumSketch;

/// The output of [`MstProtocol`]: the minimum spanning forest plus the
/// sketch-protocol diagnostics (phase count and final capacity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsfOutput {
    /// The forest edges as `(u, v, w)` with `u < v`, ascending by `(u, v)`.
    pub edges: Vec<(usize, usize, u64)>,
    /// Sum of the raw weights of the forest edges.
    pub total_weight: u64,
    /// Number of connected components of the input graph.
    pub components: usize,
    /// Number of sketch-broadcast phases (capacity levels) used.
    pub phases: usize,
    /// The sketch capacity of the last phase.
    pub final_capacity: usize,
}

impl MsfOutput {
    /// The forest in the oracle's format, for direct comparison with
    /// [`minimum_spanning_forest`](clique_graphs::iso::minimum_spanning_forest).
    pub fn forest(&self) -> SpanningForest {
        SpanningForest {
            edges: self.edges.clone(),
            total_weight: self.total_weight,
            components: self.components,
        }
    }
}

/// Deterministic sketch-based Borůvka MST as a [`Protocol`] over
/// `CLIQUE-BCAST`: per capacity level, one `O(k log n)`-bit incidence-sketch
/// broadcast per node, a local contraction to exhaustion, and a one-bit
/// done vote.
///
/// # Examples
///
/// ```
/// use clique_core::mst::compute_msf;
/// use clique_core::graphs::weighted;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let g = weighted::weighted_cycle(32, 100, &mut rng);
/// let run = compute_msf(&g, 4, 5).unwrap();
/// assert_eq!(run.edges.len(), 31);
/// assert_eq!(run.phases, 1); // cycle cuts never exceed 2
/// ```
#[derive(Clone, Debug)]
pub struct MstProtocol<'a> {
    graph: &'a WeightedGraph,
    base_capacity: usize,
}

impl<'a> MstProtocol<'a> {
    /// Prepares the protocol with the given starting sketch capacity
    /// (doubled on every escalation).
    ///
    /// # Panics
    ///
    /// Panics if `base_capacity == 0`, or if the packed edge keys would
    /// overflow the sketch field (`(max_weight + 1) · n²` must stay below
    /// `2³⁰` — polynomially bounded weights, the standard congested-clique
    /// assumption).
    pub fn new(graph: &'a WeightedGraph, base_capacity: usize) -> Self {
        assert!(base_capacity > 0, "sketch capacity must be positive");
        let n = graph.vertex_count() as u64;
        let universe = (graph.max_weight() + 1)
            .checked_mul(n * n)
            .filter(|&u| u < 1 << 30)
            .expect("edge-key universe (max_weight + 1)·n² must stay below 2^30");
        let _ = universe;
        Self {
            graph,
            base_capacity,
        }
    }

    /// The packed edge key `w·n² + u·n + v` (`u < v`) whose integer order
    /// is the `(w, u, v)` unique-weight order.
    fn edge_key(&self, u: usize, v: usize) -> u64 {
        let n = self.graph.vertex_count() as u64;
        let (w, a, b) = self.graph.edge_order_key(u, v);
        w * n * n + (a as u64) * n + b as u64
    }

    /// Node `v`'s incidence sketch at the given capacity: every incident
    /// edge key, signed `+1` when `v` is the smaller endpoint and `−1`
    /// when it is the larger — local knowledge only.
    fn incidence_sketch(&self, v: usize, universe: u64, capacity: usize) -> SignedPowerSumSketch {
        let mut sketch = SignedPowerSumSketch::new(universe, capacity);
        for (u, _) in self.graph.weighted_neighbors(v) {
            let key = self.edge_key(v, u);
            if v < u {
                sketch.add(key);
            } else {
                sketch.remove(key);
            }
        }
        sketch
    }
}

/// Unpacks `w·n² + u·n + v` back into `(u, v, w)`.
fn unpack_key(key: u64, n: u64) -> (usize, usize, u64) {
    let w = key / (n * n);
    let rest = key % (n * n);
    ((rest / n) as usize, (rest % n) as usize, w)
}

/// One full Borůvka contraction from the blackboard of published vertex
/// sketches — the computation every node performs identically. Components
/// are summed, decoded against the (public-order) candidate key list, and
/// merged on their minimum cut key until no component makes progress.
/// Returns `true` when every component decoded an empty cut (forest done).
fn contract_to_exhaustion(
    blackboard: &[SignedPowerSumSketch],
    candidates: &[u64],
    n: usize,
    dsu: &mut UnionFind,
    forest: &mut Vec<(usize, usize, u64)>,
) -> bool {
    // Sum the member sketches of every current component (linearity: the
    // result sketches exactly the component's cut).
    let mut component: Vec<Option<SignedPowerSumSketch>> = vec![None; n];
    for (v, incidence) in blackboard.iter().enumerate() {
        let root = dsu.find(v);
        match &mut component[root] {
            Some(sketch) => sketch.merge(incidence),
            None => component[root] = Some(incidence.clone()),
        }
    }
    let mut finished = vec![false; n];
    loop {
        let mut progress = false;
        for r in 0..n {
            if dsu.find(r) != r || finished[r] {
                continue;
            }
            let sketch = component[r].as_ref().expect("every root has a sketch");
            let Some(cut) = sketch.decode_among(candidates) else {
                continue; // cut larger than capacity: wait for escalation
            };
            if cut.is_empty() {
                finished[r] = true;
                continue;
            }
            // Minimum key = tie-broken lightest outgoing edge, safe by the
            // cut property (decode_among returns keys ascending).
            let (u, v, w) = unpack_key(cut[0].0, n as u64);
            let (ru, rv) = (dsu.find(u), dsu.find(v));
            if (ru == r) == (rv == r) {
                continue; // not a crossing edge: spurious decode, treat as over-capacity
            }
            let other = if ru == r { rv } else { ru };
            let merged = {
                let mut sketch = component[r].take().expect("root sketch present");
                sketch.merge(
                    component[other]
                        .take()
                        .as_ref()
                        .expect("root sketch present"),
                );
                sketch
            };
            dsu.union(u, v);
            forest.push((u, v, w));
            component[dsu.find(r)] = Some(merged);
            progress = true;
        }
        if !progress {
            break;
        }
    }
    (0..n).all(|v| dsu.find(v) != v || finished[v])
}

impl Protocol for MstProtocol<'_> {
    type Output = MsfOutput;

    fn run(&mut self, session: &mut Session) -> Result<MsfOutput, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        let mut dsu = UnionFind::new(n);
        let mut forest: Vec<(usize, usize, u64)> = Vec::new();
        let mut phases = 0usize;
        let mut capacity = 0usize;

        if n > 1 {
            let n_u64 = n as u64;
            let universe = (self.graph.max_weight() + 1) * n_u64 * n_u64;
            // The decode scan only ever needs to test genuine edge keys:
            // cut elements are edges, and `decode_among` verifies every
            // answer by re-sketching, so restricting the (model-free) local
            // root scan is a pure simulation speed-up. The list is ordered
            // data every node can derive after the broadcast; candidate
            // order never influences the transcript.
            let candidates: Vec<u64> = {
                let mut keys: Vec<u64> = self
                    .graph
                    .edges()
                    .map(|(u, v, _)| self.edge_key(u, v))
                    .collect();
                keys.sort_unstable();
                keys
            };
            let max_capacity = self.graph.edge_count().max(1);
            capacity = self.base_capacity.min(max_capacity);
            let field_bits = SignedPowerSumSketch::new(universe, 1)
                .field()
                .element_bits();

            loop {
                phases += 1;
                // One sketch broadcast per node at the current capacity.
                let sketches: Vec<SignedPowerSumSketch> = (0..n)
                    .map(|v| self.incidence_sketch(v, universe, capacity))
                    .collect();
                let messages: Vec<BitString> = sketches
                    .iter()
                    .map(|sketch| {
                        let mut bits = BitString::with_capacity(2 * capacity * field_bits);
                        for &sum in sketch.power_sums() {
                            bits.push_bits(sum, field_bits);
                        }
                        bits
                    })
                    .collect();
                let inboxes = session.broadcast_all("broadcast incidence sketches", &messages)?;

                // Every node now holds the same blackboard (own sketch plus
                // the n−1 received ones) and contracts identically; the
                // simulation performs the shared computation once, from
                // node 0's inbox.
                let blackboard: Vec<SignedPowerSumSketch> = (0..n)
                    .map(|v| {
                        if v == 0 {
                            return sketches[0].clone();
                        }
                        let payload = inboxes[0]
                            .broadcast_from(NodeId::new(v))
                            .expect("every node published a sketch");
                        let mut reader = payload.reader();
                        let sums: Vec<u64> = (0..2 * capacity)
                            .map(|_| reader.read_bits(field_bits).expect("well-formed sketch"))
                            .collect();
                        SignedPowerSumSketch::from_parts(universe, capacity, sums)
                    })
                    .collect();
                let done =
                    contract_to_exhaustion(&blackboard, &candidates, n, &mut dsu, &mut forest);

                // One-bit all-done vote (identical at every node).
                let votes: Vec<BitString> = (0..n)
                    .map(|_| BitString::from_bits(u64::from(done), 1))
                    .collect();
                session.broadcast_all("announce contraction-done flags", &votes)?;
                if done {
                    break;
                }
                debug_assert!(
                    capacity < max_capacity,
                    "a full-capacity sketch decodes every cut"
                );
                capacity = (capacity * 2).min(max_capacity);
            }
        }

        forest.sort_unstable();
        let total_weight = forest.iter().map(|&(_, _, w)| w).sum();
        Ok(MsfOutput {
            edges: forest,
            total_weight,
            components: dsu.components(),
            phases,
            final_capacity: capacity,
        })
    }
}

/// Runs [`MstProtocol`] on `CLIQUE-BCAST(n, b)` — the blackboard model the
/// sketch broadcasts are stated for.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty or any [`MstProtocol::new`] precondition
/// fails.
pub fn compute_msf(
    graph: &WeightedGraph,
    base_capacity: usize,
    bandwidth: usize,
) -> Result<RunOutcome<MsfOutput>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::broadcast(n, bandwidth))
        .execute(&mut MstProtocol::new(graph, base_capacity))
}

/// The number of blackboard bits one node publishes per phase for an
/// `n`-vertex graph with maximum weight `max_weight` at sketch capacity
/// `k`: `O(k log n)` for polynomially bounded weights.
pub fn mst_message_bits(n: usize, max_weight: u64, capacity: usize) -> usize {
    let n = n as u64;
    signed_sketch_bits((max_weight + 1) * n * n, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::iso::minimum_spanning_forest;
    use clique_graphs::{generators, weighted};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_matches_oracle(graph: &WeightedGraph, base_capacity: usize) -> MsfOutput {
        let run = compute_msf(graph, base_capacity, 4).unwrap();
        let oracle = minimum_spanning_forest(graph);
        assert_eq!(run.forest(), oracle, "protocol vs Kruskal oracle");
        run.output
    }

    #[test]
    fn matches_oracle_on_small_families() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x315);
        for graph in [
            weighted::weighted_path(9, 20, &mut rng),
            weighted::weighted_cycle(12, 20, &mut rng),
            weighted::weighted_star(10, 20, &mut rng),
            weighted::weighted_complete(8, 20, &mut rng),
            weighted::weighted_random_tree(14, 20, &mut rng),
            weighted::weighted_erdos_renyi(16, 0.3, 20, &mut rng),
        ] {
            assert_matches_oracle(&graph, 4);
        }
    }

    #[test]
    fn single_node_needs_no_communication() {
        let run = compute_msf(&WeightedGraph::empty(1), 4, 4).unwrap();
        assert_eq!(run.rounds(), 0);
        assert_eq!(run.edges, vec![]);
        assert_eq!(run.components, 1);
        assert_eq!(run.phases, 0);
    }

    #[test]
    fn two_nodes_single_edge() {
        let graph = WeightedGraph::from_edges(2, &[(0, 1, 9)]);
        let out = assert_matches_oracle(&graph, 4);
        assert_eq!(out.edges, vec![(0, 1, 9)]);
        assert_eq!(out.total_weight, 9);
        assert_eq!(out.phases, 1);
    }

    #[test]
    fn disconnected_inputs_yield_minimum_spanning_forests() {
        // Two weighted components plus two isolated vertices.
        let graph = WeightedGraph::from_edges(
            8,
            &[
                (0, 1, 3),
                (1, 2, 1),
                (0, 2, 2),
                (4, 5, 7),
                (5, 6, 4),
                (4, 6, 6),
            ],
        );
        let out = assert_matches_oracle(&graph, 2);
        assert_eq!(out.components, 4);
        assert_eq!(out.edges.len(), 4);
        // An entirely edgeless graph is a forest of isolated vertices.
        let out = assert_matches_oracle(&WeightedGraph::empty(5), 2);
        assert_eq!(out.components, 5);
        assert_eq!(out.phases, 1); // one (empty) broadcast phase settles it
    }

    #[test]
    fn all_equal_weights_follow_the_tie_break() {
        let graph = weighted::constant_weights(&generators::complete(9), 5);
        let out = assert_matches_oracle(&graph, 4);
        // The (w, u, v) order makes the star at vertex 0 the unique MSF.
        assert_eq!(out.edges, (1..9).map(|v| (0, v, 5)).collect::<Vec<_>>());
    }

    #[test]
    fn complete_graph_escalates_past_the_capacity_boundary() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB0F);
        let graph = weighted::weighted_complete(16, 40, &mut rng);
        // Singleton cuts have size 15 > 2: escalation is forced…
        let out = assert_matches_oracle(&graph, 2);
        assert!(
            out.phases > 1,
            "expected escalation, got {} phase(s)",
            out.phases
        );
        assert!(out.final_capacity >= 15);
        // …while a capacity covering the worst intermediate cut (a
        // balanced bipartition, s·(n−s) ≤ 64) finishes in one phase.
        let out = assert_matches_oracle(&graph, 64);
        assert_eq!(out.phases, 1);
    }

    #[test]
    fn bounded_cut_families_use_one_phase_at_any_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x10E);
        for n in [8usize, 32, 64] {
            let path = weighted::weighted_path(n, 30, &mut rng);
            assert_eq!(assert_matches_oracle(&path, 4).phases, 1, "path n={n}");
            let star = weighted::weighted_star(n - 1, 30, &mut rng);
            assert_eq!(assert_matches_oracle(&star, 4).phases, 1, "star n={n}");
        }
    }

    #[test]
    fn rounds_charge_sketches_and_votes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x77);
        let graph = weighted::weighted_cycle(24, 50, &mut rng);
        let run = compute_msf(&graph, 4, 6).unwrap();
        assert_eq!(run.phases, 1);
        let sketch_bits = mst_message_bits(24, 50, 4);
        let expected_rounds = sketch_bits.div_ceil(6) as u64 + 1; // + the vote
        assert_eq!(run.rounds(), expected_rounds);
        assert_eq!(
            run.total_bits(),
            24 * (sketch_bits as u64 + 1),
            "every node publishes one sketch and one vote bit"
        );
    }

    #[test]
    fn duplicate_weights_on_random_graphs_match_the_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD1);
        for _ in 0..5 {
            // max_weight 3 on 14 nodes: collisions guaranteed.
            let graph = weighted::weighted_erdos_renyi(14, 0.35, 3, &mut rng);
            assert_matches_oracle(&graph, 4);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = MstProtocol::new(&WeightedGraph::empty(2), 0);
    }

    #[test]
    #[should_panic(expected = "below 2^30")]
    fn oversized_weights_are_rejected() {
        let graph = WeightedGraph::from_edges(64, &[(0, 1, 1 << 40)]);
        let _ = MstProtocol::new(&graph, 4);
    }
}
