//! Common result types for the detection protocols.
//!
//! Every protocol's result is a [`RunOutcome`] pairing a protocol-specific
//! output with the communication [`Metrics`](clique_sim::Metrics) of the
//! run; the aliases here fix the output type per protocol family.
//! `RunOutcome` dereferences to its output, so `outcome.contains` and
//! `outcome.rounds()` both read naturally.

use clique_sim::outcome::RunOutcome;

/// The decision (and witness) produced by a subgraph- or triangle-detection
/// protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Detection {
    /// Whether the protocol declared that the input contains the pattern.
    pub contains: bool,
    /// A witness copy (pattern vertex → input vertex), when the protocol
    /// produced one.
    pub witness: Option<Vec<usize>>,
}

/// The result of running a detection protocol on the simulator.
pub type DetectionOutcome = RunOutcome<Detection>;

/// The output of simulating a circuit on the unicast clique (Theorem 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitOutput {
    /// Output values of the circuit, in output order.
    pub outputs: Vec<bool>,
    /// The player owning (and therefore knowing) each output, in output
    /// order — useful for protocols that post-process the outputs (e.g. the
    /// triangle-detection route of Section 2.1).
    pub output_owners: Vec<usize>,
    /// Number of layers of the circuit (its depth).
    pub depth: usize,
}

/// The result of the Theorem 2 circuit simulation. Theorem 2 predicts
/// [`RunOutcome::max_phase_rounds`] is `O(1)` once the bandwidth reaches
/// `Θ(b_sep + s)` (up to the header overhead discussed in
/// [`crate::circuit_sim`]).
pub type CircuitSimOutcome = RunOutcome<CircuitOutput>;

#[cfg(test)]
mod tests {
    use super::*;
    use clique_sim::metrics::PhaseRecord;
    use clique_sim::Metrics;

    #[test]
    fn outcome_wraps_decision_and_metrics() {
        let mut metrics = Metrics::new();
        metrics.record_phase(PhaseRecord {
            label: "x".into(),
            rounds: 3,
            bits: 17,
            messages: 2,
            max_link_bits_per_round: 4,
            strict_rounds: false,
        });
        let outcome = RunOutcome::new(
            Detection {
                contains: true,
                witness: Some(vec![1, 2, 3]),
            },
            metrics,
        );
        assert!(outcome.contains);
        assert_eq!(outcome.rounds(), 3);
        assert_eq!(outcome.total_bits(), 17);
        assert_eq!(outcome.witness.as_deref(), Some(&[1, 2, 3][..]));
    }
}
