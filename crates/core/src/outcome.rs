//! Common result types for the detection protocols.

use clique_sim::Metrics;

/// The result of running a subgraph- or triangle-detection protocol on the
/// simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// Whether the protocol declared that the input contains the pattern.
    pub contains: bool,
    /// A witness copy (pattern vertex → input vertex), when the protocol
    /// produced one.
    pub witness: Option<Vec<usize>>,
    /// Rounds used.
    pub rounds: u64,
    /// Total bits placed on the network / blackboard.
    pub total_bits: u64,
}

impl DetectionOutcome {
    /// Builds an outcome from a decision and the engine metrics.
    pub fn from_metrics(contains: bool, witness: Option<Vec<usize>>, metrics: &Metrics) -> Self {
        Self {
            contains,
            witness,
            rounds: metrics.rounds,
            total_bits: metrics.total_bits,
        }
    }
}

/// The result of simulating a circuit on the unicast clique (Theorem 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitSimOutcome {
    /// Output values of the circuit, in output order.
    pub outputs: Vec<bool>,
    /// The player owning (and therefore knowing) each output, in output
    /// order — useful for protocols that post-process the outputs (e.g. the
    /// triangle-detection route of Section 2.1).
    pub output_owners: Vec<usize>,
    /// Rounds used by the simulation.
    pub rounds: u64,
    /// Total bits placed on the network.
    pub total_bits: u64,
    /// Number of layers of the circuit (its depth).
    pub depth: usize,
    /// The maximum number of rounds charged to any single communication
    /// phase; Theorem 2 predicts `O(1)` once the bandwidth reaches
    /// `Θ(b_sep + s)` (up to the header overhead discussed in
    /// [`crate::circuit_sim`]).
    pub max_phase_rounds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_sim::metrics::PhaseRecord;

    #[test]
    fn outcome_from_metrics_copies_counters() {
        let mut metrics = Metrics::new();
        metrics.record_phase(PhaseRecord {
            label: "x".into(),
            rounds: 3,
            bits: 17,
            messages: 2,
            max_link_bits_per_round: 4,
        });
        let outcome = DetectionOutcome::from_metrics(true, Some(vec![1, 2, 3]), &metrics);
        assert!(outcome.contains);
        assert_eq!(outcome.rounds, 3);
        assert_eq!(outcome.total_bits, 17);
        assert_eq!(outcome.witness.as_deref(), Some(&[1, 2, 3][..]));
    }
}
