//! Triangle detection in the unicast congested clique (Section 2.1) and
//! baselines.
//!
//! Section 2.1 observes that arithmetic circuits for matrix multiplication
//! of size `O(n^{2+ε})` would give `O(n^ε)`-round triangle detection in
//! `CLIQUE-UCAST(n, 1)`: cube the adjacency matrix over the Boolean
//! semiring, which Shamir's randomized reduction turns into a small number of
//! `F₂` matrix products, which the Theorem 2 simulation evaluates in
//! `O(depth)` rounds with bandwidth proportional to the circuit's wire
//! density. [`MatMulTriangleDetection`] implements exactly that pipeline
//! with the two explicit circuit families available (naive cubic and
//! Strassen), plus two baselines:
//!
//! * the trivial protocol (everyone broadcasts its row; `⌈n/b⌉` rounds), and
//! * a deterministic Dolev–Lenzen–Peled-style protocol \[8\]
//!   ([`DlpTriangleDetection`]): vertices are split into `n^{1/3}` groups,
//!   each player checks one group triple, and a balanced routing phase ships
//!   every relevant edge to its checkers in `Õ(n^{1/3}/b)` rounds.

use clique_circuits::matmul::{matmul_f2_naive, matmul_f2_strassen, MatMulCircuit};
use clique_graphs::{Graph, Pattern};
use clique_routing::{BalancedRouter, Router, RoutingDemand};
use clique_sim::prelude::*;
use rand::Rng;

use crate::circuit_sim::{CircuitSimulation, InputPartition};
use crate::outcome::{Detection, DetectionOutcome};
use crate::trivial::detect_by_full_broadcast;

/// Which matrix-multiplication circuit powers the Section 2.1 protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatMulStrategy {
    /// The naive cubic circuit (`ω = 3`).
    Naive,
    /// Strassen's recursive circuit (`ω ≈ 2.81`).
    Strassen,
}

impl MatMulStrategy {
    /// The circuit dimension the strategy needs for an `n × n` input — the
    /// *single* place padding is decided (Strassen rounds up to a power of
    /// two, the naive circuit takes any dimension). Pad the input matrices
    /// to this dimension and pass it unchanged to [`Self::circuit`].
    ///
    /// The Strassen arm delegates to the block-split seam
    /// [`clique_sim::linalg::strassen_padded_dim`] at the full recursion
    /// depth (the circuit splits all the way to `1 × 1` blocks), so the
    /// circuit path, the local `mul_f2_strassen` kernel and the distributed
    /// `FastMatMul` schedule all pad through one rule and no path re-pads.
    pub fn padded_dim(&self, n: usize) -> usize {
        match self {
            MatMulStrategy::Naive => n,
            MatMulStrategy::Strassen => clique_sim::linalg::strassen_padded_dim(
                n,
                clique_sim::linalg::strassen_full_levels(n),
            ),
        }
    }

    /// Builds the circuit for the given dimension, which must already be
    /// padded via [`Self::padded_dim`]. No further padding happens here, so
    /// the circuit dimension always agrees with matrices padded by the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics for [`MatMulStrategy::Strassen`] if `dim` is not a power of
    /// two (i.e. was not produced by [`Self::padded_dim`]).
    pub fn circuit(&self, dim: usize) -> MatMulCircuit {
        match self {
            MatMulStrategy::Naive => matmul_f2_naive(dim),
            MatMulStrategy::Strassen => matmul_f2_strassen(dim),
        }
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MatMulStrategy::Naive => "naive-matmul",
            MatMulStrategy::Strassen => "strassen-matmul",
        }
    }
}

/// The trivial baseline: every node broadcasts its adjacency row and checks
/// for triangles locally. `⌈n/b⌉` rounds in `CLIQUE-BCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
pub fn detect_triangle_trivial(
    graph: &Graph,
    bandwidth: usize,
) -> Result<DetectionOutcome, SimError> {
    detect_by_full_broadcast(graph, &Pattern::Clique(3), bandwidth)
}

/// Section 2.1 as a [`Protocol`]: triangle detection through `F₂` matrix
/// multiplication and the circuit simulation of Theorem 2, run as a nested
/// sub-protocol on the same session.
///
/// Each of the `trials` rounds of Shamir's reduction picks a random diagonal
/// mask `D` and evaluates `M = (A·D)·A` over `F₂` with the chosen circuit;
/// an edge `(i, j)` with `M[i][j] = 1` certifies a triangle. The protocol
/// has no false positives and misses an existing triangle with probability
/// at most `2^{-trials}`.
#[derive(Debug)]
pub struct MatMulTriangleDetection<'a, R: Rng + ?Sized> {
    graph: &'a Graph,
    strategy: MatMulStrategy,
    trials: usize,
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> MatMulTriangleDetection<'a, R> {
    /// Prepares the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(graph: &'a Graph, strategy: MatMulStrategy, trials: usize, rng: &'a mut R) -> Self {
        assert!(trials > 0, "at least one trial is required");
        Self {
            graph,
            strategy,
            trials,
            rng,
        }
    }
}

impl<R: Rng + ?Sized> Protocol for MatMulTriangleDetection<'_, R> {
    type Output = Detection;

    fn run(&mut self, session: &mut Session) -> Result<Detection, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);

        let dim = self.strategy.padded_dim(n);
        let mm = self.strategy.circuit(dim);
        let adjacency = self.graph.adjacency_bitmatrix_padded(dim);

        let mut found_edge: Option<(usize, usize)> = None;

        for _ in 0..self.trials {
            // Random diagonal mask D; B1 = A·D masks the columns of A. The
            // mask is drawn bit by bit (same RNG consumption as ever) and
            // applied word-parallel to the packed adjacency matrix.
            let mask: Vec<bool> = (0..dim).map(|_| self.rng.gen_bool(0.5)).collect();
            let masked = adjacency.mask_columns(&mask);

            // Evaluate M = (A·D)·A with the Theorem 2 simulation, nested on
            // this session.
            let assignment = mm.assignment(&masked, &adjacency);
            let sim = session.run_protocol(&mut CircuitSimulation::new(
                &mm.circuit,
                &assignment,
                InputPartition::RoundRobin,
            ))?;

            // Follow-up phase: the owner of output entry (i, j) sends the bit
            // to player i (who knows row i of A), and every player then
            // broadcasts a one-bit flag.
            let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            // Canonical order: outputs are row-major, so both sides can parse
            // positionally.
            for (idx, (&value, &owner)) in sim.outputs.iter().zip(&sim.output_owners).enumerate() {
                let row = idx / dim;
                if row >= n {
                    continue; // padding rows
                }
                if owner == row {
                    continue;
                }
                outs[owner].send(NodeId::new(row), BitString::from_bits(u64::from(value), 1));
            }
            let inboxes = session.exchange("deliver product entries to row owners", outs)?;
            // Row owners recombine their row of M.
            let mut row_of_m = vec![vec![false; dim]; n];
            {
                let mut cursors: Vec<std::collections::HashMap<usize, BitReader<'_>>> = inboxes
                    .iter()
                    .map(|inbox| {
                        inbox
                            .unicasts()
                            .map(|(src, payload)| (src.index(), payload.reader()))
                            .collect()
                    })
                    .collect();
                for (idx, (&value, &owner)) in
                    sim.outputs.iter().zip(&sim.output_owners).enumerate()
                {
                    let row = idx / dim;
                    let col = idx % dim;
                    if row >= n {
                        continue;
                    }
                    row_of_m[row][col] = if owner == row {
                        value
                    } else {
                        cursors[row]
                            .get_mut(&owner)
                            .and_then(BitReader::read_bit)
                            .expect("missing product entry")
                    };
                }
            }
            // Each player checks its own row and broadcasts a one-bit flag.
            let mut flag_outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            let mut local_hit: Vec<Option<(usize, usize)>> = vec![None; n];
            for i in 0..n {
                for (j, &hit) in row_of_m[i].iter().enumerate() {
                    if self.graph.has_edge(i, j) && hit {
                        local_hit[i] = Some((i, j));
                        break;
                    }
                }
                flag_outs[i].broadcast(BitString::from_bits(u64::from(local_hit[i].is_some()), 1));
            }
            session.exchange("announce detection flags", flag_outs)?;

            if let Some(hit) = local_hit.iter().flatten().next() {
                found_edge = Some(*hit);
                break;
            }
        }

        // A hit edge (i, j) plus any common neighbour forms a witness
        // triangle.
        let witness = found_edge.map(|(i, j)| {
            let k = self
                .graph
                .neighbors(i)
                .iter()
                .copied()
                .find(|&k| self.graph.has_edge(j, k))
                .expect("a positive F2 product entry implies a common neighbour exists");
            vec![i, j, k]
        });

        Ok(Detection {
            contains: witness.is_some(),
            witness,
        })
    }
}

/// Runs [`MatMulTriangleDetection`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty or `trials == 0`.
pub fn detect_triangle_via_matmul<R: Rng + ?Sized>(
    graph: &Graph,
    bandwidth: usize,
    strategy: MatMulStrategy,
    trials: usize,
    rng: &mut R,
) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut MatMulTriangleDetection::new(
        graph, strategy, trials, rng,
    ))
}

/// The deterministic Dolev–Lenzen–Peled-style triangle detector \[8\] as a
/// [`Protocol`]: vertices are split into `⌈n^{1/3}⌉` groups, player `w` is
/// responsible for the `w`-th group triple, and every player ships the
/// relevant part of its adjacency row to the responsible checkers through
/// the balanced router.
#[derive(Clone, Debug)]
pub struct DlpTriangleDetection<'a> {
    graph: &'a Graph,
}

impl<'a> DlpTriangleDetection<'a> {
    /// Prepares the protocol for the given input graph.
    pub fn new(graph: &'a Graph) -> Self {
        Self { graph }
    }
}

impl Protocol for DlpTriangleDetection<'_> {
    type Output = Detection;

    fn run(&mut self, session: &mut Session) -> Result<Detection, SimError> {
        let graph = self.graph;
        let n = graph.vertex_count();
        session.require_clique_of(n);
        // Largest group count g with C(g+2, 3) ≤ n, so that every group
        // triple can be assigned to a distinct player; g = Θ(n^{1/3}).
        let groups = (1..=n)
            .take_while(|&g| g * (g + 1) * (g + 2) / 6 <= n)
            .last()
            .unwrap_or(1);
        let group_of = |v: usize| v * groups / n.max(1);

        // Enumerate group triples (with repetition) and assign them to
        // players.
        let mut triples = Vec::new();
        for a in 0..groups {
            for b in a..groups {
                for c in b..groups {
                    triples.push((a, b, c));
                }
            }
        }
        debug_assert!(triples.len() <= n);

        // Each node v in a group of the triple sends its adjacency row
        // restricted to the triple's groups to the checker.
        let mut demand = RoutingDemand::new(n);
        for (checker, &(a, b, c)) in triples.iter().enumerate() {
            let relevant: Vec<usize> = (0..n)
                .filter(|&v| [a, b, c].contains(&group_of(v)))
                .collect();
            for &v in &relevant {
                if v == checker {
                    continue;
                }
                let bits: BitString = relevant.iter().map(|&u| graph.has_edge(v, u)).collect();
                demand.send(v, checker, bits);
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        // Checkers look for a triangle inside their triple. Every checker
        // derives its own flag from its local view only — no checker may
        // use another checker's discovery before the announcement phase
        // below (the "no out-of-band communication" convention).
        let mut witness: Option<Vec<usize>> = None;
        let mut local_hit = vec![false; n];
        for (checker, &(a, b, c)) in triples.iter().enumerate() {
            let relevant: Vec<usize> = (0..n)
                .filter(|&v| [a, b, c].contains(&group_of(v)))
                .collect();
            // Rebuild the local view from the delivered packets (plus the
            // checker's own row if it belongs to the triple).
            let index_of: std::collections::HashMap<usize, usize> =
                relevant.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let mut local = Graph::empty(relevant.len());
            for packet in &delivered[checker] {
                let Some(&src_idx) = index_of.get(&packet.src.index()) else {
                    continue;
                };
                let mut reader = packet.payload.reader();
                for (dst_idx, _) in relevant.iter().enumerate() {
                    if reader.read_bit() == Some(true) {
                        local.add_edge(src_idx, dst_idx);
                    }
                }
            }
            if let Some(&own_idx) = index_of.get(&checker) {
                for (dst_idx, &u) in relevant.iter().enumerate() {
                    if graph.has_edge(checker, u) {
                        local.add_edge(own_idx, dst_idx);
                    }
                }
            }
            if let Some(t) = clique_graphs::iso::triangles(&local).first() {
                local_hit[checker] = true;
                if witness.is_none() {
                    witness = Some(vec![relevant[t.0], relevant[t.1], relevant[t.2]]);
                }
            }
        }

        // One more round: every player announces its own locally-derived
        // flag (still exactly 1 bit per player — non-checkers and empty
        // checkers broadcast 0).
        let mut flag_outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        for (i, out) in flag_outs.iter_mut().enumerate() {
            out.broadcast(BitString::from_bits(u64::from(local_hit[i]), 1));
        }
        session.exchange("announce detection flags", flag_outs)?;

        Ok(Detection {
            contains: witness.is_some(),
            witness,
        })
    }
}

/// Runs [`DlpTriangleDetection`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn detect_triangle_dlp(graph: &Graph, bandwidth: usize) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut DlpTriangleDetection::new(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::generators;
    use clique_graphs::iso::has_triangle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_witness(graph: &Graph, outcome: &DetectionOutcome) {
        if let Some(w) = &outcome.witness {
            assert_eq!(w.len(), 3);
            assert!(graph.has_edge(w[0], w[1]));
            assert!(graph.has_edge(w[1], w[2]));
            assert!(graph.has_edge(w[0], w[2]));
        }
    }

    #[test]
    fn trivial_detection_works() {
        let g = generators::complete(10);
        let outcome = detect_triangle_trivial(&g, 2).unwrap();
        assert!(outcome.contains);
        assert_eq!(outcome.rounds(), 5);
        let bip = generators::complete_bipartite(6, 6);
        assert!(!detect_triangle_trivial(&bip, 2).unwrap().contains);
    }

    #[test]
    fn matmul_detection_finds_triangles() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB0);
        let g = generators::complete(9);
        for strategy in [MatMulStrategy::Naive, MatMulStrategy::Strassen] {
            let outcome = detect_triangle_via_matmul(&g, 16, strategy, 4, &mut rng).unwrap();
            assert!(outcome.contains, "{} missed a triangle", strategy.name());
            check_witness(&g, &outcome);
        }
    }

    #[test]
    fn matmul_detection_has_no_false_positives() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB1);
        let g = generators::complete_bipartite(5, 5);
        assert!(!has_triangle(&g));
        for strategy in [MatMulStrategy::Naive, MatMulStrategy::Strassen] {
            let outcome = detect_triangle_via_matmul(&g, 16, strategy, 3, &mut rng).unwrap();
            assert!(
                !outcome.contains,
                "{} hallucinated a triangle",
                strategy.name()
            );
        }
    }

    #[test]
    fn matmul_detection_on_sparse_planted_triangle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB2);
        let host = generators::erdos_renyi(12, 0.05, &mut rng);
        let (g, _) = generators::plant_copy(&host, &generators::complete(3), &mut rng);
        let outcome =
            detect_triangle_via_matmul(&g, 16, MatMulStrategy::Naive, 6, &mut rng).unwrap();
        assert!(outcome.contains);
        check_witness(&g, &outcome);
    }

    #[test]
    fn dlp_detection_agrees_with_ground_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB3);
        for p in [0.05, 0.15, 0.4] {
            let g = generators::erdos_renyi(27, p, &mut rng);
            let outcome = detect_triangle_dlp(&g, 8).unwrap();
            assert_eq!(outcome.contains, has_triangle(&g), "p = {p}");
            check_witness(&g, &outcome);
        }
    }

    #[test]
    fn dlp_detection_on_triangle_free_graph() {
        let g = generators::complete_bipartite(10, 10);
        let outcome = detect_triangle_dlp(&g, 8).unwrap();
        assert!(!outcome.contains);
    }

    #[test]
    fn strategies_pad_in_exactly_one_place() {
        // `padded_dim` is the single padding decision; `circuit` must not
        // pad again, so the circuit dimension always equals the dimension
        // the caller padded its matrices to.
        assert_eq!(MatMulStrategy::Naive.padded_dim(6), 6);
        assert_eq!(MatMulStrategy::Strassen.padded_dim(6), 8);
        assert_eq!(MatMulStrategy::Strassen.padded_dim(8), 8);
        for (strategy, n) in [
            (MatMulStrategy::Naive, 5),
            (MatMulStrategy::Naive, 8),
            (MatMulStrategy::Strassen, 5),
            (MatMulStrategy::Strassen, 8),
        ] {
            let dim = strategy.padded_dim(n);
            assert_eq!(strategy.circuit(dim).dim, dim, "{} n={n}", strategy.name());
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn strassen_circuit_rejects_unpadded_dimensions() {
        // The old code silently re-padded here, building a circuit whose
        // dimension disagreed with the caller's matrices.
        let _ = MatMulStrategy::Strassen.circuit(6);
    }

    #[test]
    fn detection_at_degenerate_sizes_matches_ground_truth() {
        // n ∈ {1, 2, 3}: padding dims exceed n for Strassen (dim 1, 2, 4),
        // exercising the dim > n zero-padding path end to end.
        let instances: Vec<Graph> = vec![
            Graph::empty(1),
            Graph::empty(2),
            Graph::from_edges(2, &[(0, 1)]),
            Graph::from_edges(3, &[(0, 1), (1, 2)]),
            generators::complete(3),
        ];
        for (idx, g) in instances.iter().enumerate() {
            let truth = has_triangle(g);
            let dlp = detect_triangle_dlp(g, 2).unwrap();
            assert_eq!(dlp.contains, truth, "dlp on instance {idx}");
            check_witness(g, &dlp);
            for strategy in [MatMulStrategy::Naive, MatMulStrategy::Strassen] {
                let mut rng = ChaCha8Rng::seed_from_u64(0xDE6 + idx as u64);
                let outcome = detect_triangle_via_matmul(g, 4, strategy, 6, &mut rng).unwrap();
                assert_eq!(
                    outcome.contains,
                    truth,
                    "{} on instance {idx}",
                    strategy.name()
                );
                check_witness(g, &outcome);
            }
        }
    }

    #[test]
    fn dlp_flags_are_locally_derived() {
        // A triangle sitting entirely inside a later checker's triple: with
        // the old out-of-band bug player 0 would announce a detection it
        // could not have derived locally. The protocol must still detect the
        // triangle (the responsible checker raises its own flag), and the
        // announcement phase stays exactly one bit per player.
        let mut r = ChaCha8Rng::seed_from_u64(0xF1A6);
        for trial in 0..8 {
            let g = generators::erdos_renyi(27, 0.12 + 0.04 * f64::from(trial), &mut r);
            let outcome = detect_triangle_dlp(&g, 4).unwrap();
            assert_eq!(outcome.contains, has_triangle(&g), "trial {trial}");
            check_witness(&g, &outcome);
        }
    }
}
