//! # clique-core — the algorithms of "On the Power of the Congested Clique Model"
//!
//! This crate implements, on top of a bit-exact simulator, every protocol and
//! reduction of Drucker, Kuhn & Oshman (PODC 2014):
//!
//! Every algorithm is a [`sim::Protocol`]: the protocol type carries the
//! input, [`sim::Runner::execute`] runs it on any
//! [`sim::CliqueConfig`], and the per-algorithm free functions
//! (`detect_*`, `simulate_circuit`, …) are thin wrappers that pick the
//! model the paper states the bound for.
//!
//! * [`circuit_sim`] — the circuit-to-clique simulation of Theorem 2
//!   ([`circuit_sim::CircuitSimulation`]: heavy/light gate assignment,
//!   separable summaries, balanced routing of light wires);
//! * [`triangle`] — triangle detection in `CLIQUE-UCAST` through `F₂` matrix
//!   multiplication circuits (Section 2.1,
//!   [`triangle::MatMulTriangleDetection`]), plus the trivial and
//!   Dolev–Lenzen–Peled ([`triangle::DlpTriangleDetection`]) baselines;
//! * [`algebraic`] — the `O(n^{1/3})`-round 3D-partitioned distributed
//!   semiring matrix product ([`algebraic::SemiringMatMul`]; Censor-Hillel
//!   et al. / Le Gall, the algebraic follow-up line Section 2.1 opened) and
//!   its consumers: exact triangle counting
//!   ([`algebraic::TriangleCount`]) and `(min, +)` all-pairs shortest paths
//!   ([`algebraic::ApspProtocol`]);
//! * [`subgraph`] — the Becker et al. reconstruction protocol `A(G, k)`
//!   ([`subgraph::SketchReconstruction`]) and the Theorem 7 upper bound
//!   driven by Turán numbers ([`subgraph::TuranSketchDetection`]);
//! * [`adaptive`] — the Theorem 9 adaptive detection algorithm that does not
//!   need to know `ex(n, H)` ([`adaptive::AdaptiveDetection`]; degeneracy
//!   sampling, Lemma 8);
//! * [`mst`] — deterministic minimum spanning forests on edge-incidence
//!   sketches ([`mst::MstProtocol`]: Borůvka phases of sketch broadcast,
//!   local contraction and capacity escalation — the constant-round
//!   plateau workload of the Nowicki / Ghaffari–Parter line);
//! * [`trivial`] — the broadcast-everything ([`trivial::FullBroadcastDetection`])
//!   and gather-at-a-leader ([`trivial::GatherToLeaderDetection`]) baselines;
//! * [`lower_bounds`] — executable versions of the Section 3.2–3.6 lower
//!   bound reductions, run against the upper-bound protocols.
//!
//! The substrate crates are re-exported under [`sim`], [`graphs`],
//! [`circuits`], [`sketch`], [`routing`] and [`comm`], so depending on
//! `clique-core` alone is enough to reproduce every experiment.
//!
//! # Examples
//!
//! ```
//! use clique_core::graphs::{generators, Pattern};
//! use clique_core::subgraph::detect_subgraph_turan;
//! use clique_core::trivial::detect_by_full_broadcast;
//!
//! # fn main() -> Result<(), clique_core::sim::SimError> {
//! // A C4-free graph on 31 nodes (the Erdős–Rényi polarity graph).
//! let g = clique_core::graphs::extremal::dense_c4_free(31);
//!
//! // Theorem 7: detecting C4 with degeneracy sketches takes far fewer
//! // broadcast rounds than the trivial "everyone broadcasts its row".
//! let smart = detect_subgraph_turan(&g, &Pattern::Cycle(4), 1)?;
//! let trivial = detect_by_full_broadcast(&g, &Pattern::Cycle(4), 1)?;
//! assert!(!smart.contains && !trivial.contains);
//! assert!(smart.rounds() > 0);
//! assert!(trivial.rounds() == 31);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod algebraic;
pub mod circuit_sim;
pub mod lower_bounds;
pub mod mst;
pub mod outcome;
pub mod registry;
pub mod subgraph;
pub mod triangle;
pub mod trivial;

/// Re-export of the simulator crate (`clique-sim`).
pub use clique_sim as sim;

/// Re-export of the graph substrate (`clique-graphs`).
pub use clique_graphs as graphs;

/// Re-export of the circuit substrate (`clique-circuits`).
pub use clique_circuits as circuits;

/// Re-export of the sketch substrate (`clique-sketch`).
pub use clique_sketch as sketch;

/// Re-export of the routing substrate (`clique-routing`).
pub use clique_routing as routing;

/// Re-export of the communication-complexity substrate (`clique-comm`).
pub use clique_comm as comm;

pub use adaptive::{detect_subgraph_adaptive, AdaptiveDetection, AdaptiveOutput, AdaptiveRun};
pub use algebraic::{
    compute_apsp, count_triangles, semiring_matmul, ApspProtocol, Semiring, SemiringMatMul,
    SemiringMatrix, TriangleCount,
};
pub use circuit_sim::{
    plan_simulation, simulate_circuit, CircuitSimulation, InputPartition, SimulationPlan,
};
pub use mst::{compute_msf, mst_message_bits, MsfOutput, MstProtocol};
pub use outcome::{CircuitOutput, CircuitSimOutcome, Detection, DetectionOutcome};
pub use registry::{
    generate_input, InputKind, JobInput, ProtocolEntry, ProtocolRun, RunOptions, PROTOCOLS,
};
pub use subgraph::{
    detect_subgraph_turan, run_reconstruction_protocol, Reconstruction, ReconstructionRun,
    SketchReconstruction, TuranSketchDetection,
};
pub use triangle::{
    detect_triangle_dlp, detect_triangle_trivial, detect_triangle_via_matmul, DlpTriangleDetection,
    MatMulStrategy, MatMulTriangleDetection,
};
pub use trivial::{
    detect_by_full_broadcast, detect_by_gather_to_leader, FullBroadcastDetection,
    GatherToLeaderDetection,
};
