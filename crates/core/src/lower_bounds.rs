//! Convenience wrappers that execute the Section 3.2–3.6 lower-bound
//! reductions against the detection protocols of this crate.
//!
//! Each function builds the relevant lower-bound gadget, instantiates random
//! disjointness instances, runs one of our detection protocols on the
//! resulting input graphs, and reports (a) whether the protocol answered
//! correctly on every instance and (b) the round lower bound the reduction
//! implies next to the rounds the protocol actually used. Experiments
//! E6–E9 are thin sweeps over these wrappers.

use clique_comm::disjointness::DisjointnessBound;
use clique_comm::lbgraph::LowerBoundGraph;
use clique_comm::nof_reduction::TriangleNofReduction;
use clique_comm::reduction::{
    run_nof_reduction, run_two_party_reduction, DetectionRun, ReductionReport,
};
use clique_graphs::{Graph, Pattern};
use rand::Rng;

use crate::subgraph::detect_subgraph_turan;
use crate::triangle::detect_triangle_trivial;
use crate::trivial::detect_by_full_broadcast;

/// Which upper-bound protocol is exercised by a reduction run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// The trivial broadcast-everything protocol (`⌈n/b⌉` rounds).
    TrivialBroadcast,
    /// The Theorem 7 protocol with the Turán-derived sketch capacity.
    TuranSketch,
}

fn detector(
    kind: DetectorKind,
    pattern: Pattern,
    bandwidth: usize,
) -> impl FnMut(&Graph) -> DetectionRun {
    move |g: &Graph| {
        let outcome = match kind {
            DetectorKind::TrivialBroadcast => detect_by_full_broadcast(g, &pattern, bandwidth),
            DetectorKind::TuranSketch => detect_subgraph_turan(g, &pattern, bandwidth),
        }
        .expect("detection protocol failed on a well-formed input");
        DetectionRun {
            contains: outcome.contains,
            rounds: outcome.rounds(),
        }
    }
}

/// Theorem 15: runs the (K_ℓ, K_{N,N}) reduction against a detection
/// protocol and reports the implied `Ω(n/b)` bound next to the measured
/// upper bound.
///
/// # Errors
///
/// Returns an error if the gadget cannot be built for these parameters.
pub fn clique_detection_lower_bound<R: Rng + ?Sized>(
    l: usize,
    n: usize,
    bandwidth: usize,
    kind: DetectorKind,
    trials: usize,
    rng: &mut R,
) -> Result<(LowerBoundGraph, ReductionReport), String> {
    let lbg = LowerBoundGraph::for_clique(l, n)?;
    let det = detector(kind, lbg.pattern().clone(), bandwidth);
    let report = run_two_party_reduction(
        &lbg,
        bandwidth,
        DisjointnessBound::TwoPartyDeterministic,
        trials,
        rng,
        det,
    );
    Ok((lbg, report))
}

/// Theorem 19: the (C_ℓ, F) reduction with `F` a dense bipartite
/// `C_ℓ`-free graph.
///
/// # Errors
///
/// Returns an error if the gadget cannot be built for these parameters.
pub fn cycle_detection_lower_bound<R: Rng + ?Sized>(
    l: usize,
    n: usize,
    bandwidth: usize,
    kind: DetectorKind,
    trials: usize,
    rng: &mut R,
) -> Result<(LowerBoundGraph, ReductionReport), String> {
    let lbg = LowerBoundGraph::for_cycle(l, n, rng)?;
    let det = detector(kind, lbg.pattern().clone(), bandwidth);
    let report = run_two_party_reduction(
        &lbg,
        bandwidth,
        DisjointnessBound::TwoPartyDeterministic,
        trials,
        rng,
        det,
    );
    Ok((lbg, report))
}

/// Theorem 22: the (K_{ℓ,ℓ}, C₄-free F) reduction.
///
/// # Errors
///
/// Returns an error if the gadget cannot be built for these parameters.
pub fn bipartite_detection_lower_bound<R: Rng + ?Sized>(
    l: usize,
    n: usize,
    bandwidth: usize,
    kind: DetectorKind,
    trials: usize,
    rng: &mut R,
) -> Result<(LowerBoundGraph, ReductionReport), String> {
    let lbg = LowerBoundGraph::for_complete_bipartite(l, l, n)?;
    let det = detector(kind, lbg.pattern().clone(), bandwidth);
    let report = run_two_party_reduction(
        &lbg,
        bandwidth,
        DisjointnessBound::TwoPartyDeterministic,
        trials,
        rng,
        det,
    );
    Ok((lbg, report))
}

/// Theorem 24 / Corollary 25: the Ruzsa–Szemerédi NOF reduction run against
/// the trivial triangle detector.
pub fn triangle_nof_lower_bound<R: Rng + ?Sized>(
    rs_parameter: usize,
    bandwidth: usize,
    deterministic: bool,
    trials: usize,
    rng: &mut R,
) -> (TriangleNofReduction, ReductionReport) {
    let reduction = TriangleNofReduction::new(rs_parameter);
    let bound = if deterministic {
        DisjointnessBound::ThreePartyNofDeterministic
    } else {
        DisjointnessBound::ThreePartyNofRandomized
    };
    let report = run_nof_reduction(&reduction, bandwidth, bound, trials, rng, |g: &Graph| {
        let outcome = detect_triangle_trivial(g, bandwidth)
            .expect("triangle detection failed on a well-formed input");
        DetectionRun {
            contains: outcome.contains,
            rounds: outcome.rounds(),
        }
    });
    (reduction, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn clique_reduction_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xA0);
        let (lbg, report) =
            clique_detection_lower_bound(4, 32, 4, DetectorKind::TrivialBroadcast, 6, &mut rng)
                .unwrap();
        assert!(report.all_correct());
        assert_eq!(report.elements, lbg.elements());
        // The implied bound (Ω(n/b)) must not exceed the measured upper
        // bound (the trivial protocol is an upper bound for the problem).
        assert!(report.implied_round_lower_bound <= report.max_rounds as f64 + 1.0);
    }

    #[test]
    fn cycle_reduction_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAA);
        let (_, report) =
            cycle_detection_lower_bound(4, 36, 4, DetectorKind::TrivialBroadcast, 6, &mut rng)
                .unwrap();
        assert!(report.all_correct());
        assert!(report.implied_round_lower_bound > 0.0);
    }

    #[test]
    fn bipartite_reduction_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAB);
        let (_, report) =
            bipartite_detection_lower_bound(2, 40, 4, DetectorKind::TrivialBroadcast, 6, &mut rng)
                .unwrap();
        assert!(report.all_correct());
    }

    #[test]
    fn turan_detector_is_also_correct_through_the_reduction() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAC);
        let (_, report) =
            cycle_detection_lower_bound(4, 36, 4, DetectorKind::TuranSketch, 6, &mut rng).unwrap();
        assert!(report.all_correct());
    }

    #[test]
    fn nof_reduction_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xAD);
        let (reduction, report) = triangle_nof_lower_bound(12, 4, true, 6, &mut rng);
        assert!(report.all_correct());
        assert_eq!(report.elements, reduction.elements());
        assert!(report.implied_round_lower_bound > 0.0);
    }
}
