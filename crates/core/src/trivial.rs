//! Trivial baseline protocols.
//!
//! Two protocols that the paper repeatedly uses as yardsticks:
//!
//! * **broadcast-your-neighbourhood** (`CLIQUE-BCAST`): every node writes its
//!   `n`-bit adjacency row on the blackboard; after `⌈n/b⌉` rounds every
//!   node knows the whole graph and can answer any graph question locally.
//!   This is the trivial `O(n log n / b)`-round upper bound that Theorem 7
//!   improves on for bipartite patterns (and that non-bipartite patterns are
//!   stuck with).
//! * **ship-everything-to-a-leader** (`CLIQUE-UCAST`): every node sends its
//!   `n`-bit row to player 0 over its single link to player 0, taking
//!   `⌈n/b⌉` rounds; this matches the non-explicit counting lower bound up
//!   to the `O(log n)` slack.

use clique_graphs::iso::find_subgraph;
use clique_graphs::{Graph, Pattern};
use clique_sim::prelude::*;

use crate::outcome::DetectionOutcome;

/// Runs the broadcast-your-neighbourhood protocol in `CLIQUE-BCAST(n, b)`
/// and answers `H`-subgraph detection by local search on the reconstructed
/// graph.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if `graph` has no vertices.
pub fn detect_by_full_broadcast(
    graph: &Graph,
    pattern: &Pattern,
    bandwidth: usize,
) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    let mut engine = PhaseEngine::new(CliqueConfig::broadcast(n, bandwidth));

    // Every node broadcasts its adjacency row (n bits).
    let rows: Vec<BitString> = (0..n)
        .map(|v| BitString::from_bools(&graph.adjacency_row(v)))
        .collect();
    let inboxes = engine.broadcast_all("broadcast adjacency rows", &rows)?;

    // Node 0 reconstructs the graph from what it received (plus its own row)
    // and searches locally. Every other node could do the same.
    let mut matrix = vec![vec![false; n]; n];
    matrix[0] = graph.adjacency_row(0);
    for (sender, payload) in inboxes[0].broadcasts() {
        let mut reader = payload.reader();
        let row: Vec<bool> = (0..n).map(|_| reader.read_bit().unwrap_or(false)).collect();
        matrix[sender.index()] = row;
    }
    let reconstructed = Graph::from_adjacency_matrix(&matrix);
    debug_assert_eq!(&reconstructed, graph);
    let witness = find_subgraph(&reconstructed, &pattern.graph());

    Ok(DetectionOutcome::from_metrics(
        witness.is_some(),
        witness,
        engine.metrics(),
    ))
}

/// Runs the ship-everything-to-a-leader protocol in `CLIQUE-UCAST(n, b)`.
/// Returns the detection outcome decided by the leader (player 0).
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if `graph` has no vertices.
pub fn detect_by_gather_to_leader(
    graph: &Graph,
    pattern: &Pattern,
    bandwidth: usize,
) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    let mut engine = PhaseEngine::new(CliqueConfig::unicast(n, bandwidth));

    let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
    for (v, out) in outs.iter_mut().enumerate().skip(1) {
        out.send(
            NodeId::new(0),
            BitString::from_bools(&graph.adjacency_row(v)),
        );
    }
    let inboxes = engine.exchange("gather rows at leader", outs)?;

    let mut matrix = vec![vec![false; n]; n];
    matrix[0] = graph.adjacency_row(0);
    for (sender, payload) in inboxes[0].unicasts() {
        let mut reader = payload.reader();
        matrix[sender.index()] = (0..n).map(|_| reader.read_bit().unwrap_or(false)).collect();
    }
    let reconstructed = Graph::from_adjacency_matrix(&matrix);
    debug_assert_eq!(&reconstructed, graph);
    let witness = find_subgraph(&reconstructed, &pattern.graph());

    Ok(DetectionOutcome::from_metrics(
        witness.is_some(),
        witness,
        engine.metrics(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn full_broadcast_detects_planted_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF0);
        let host = generators::erdos_renyi(24, 0.05, &mut rng);
        let pattern = Pattern::Cycle(4);
        let (with_copy, _) = generators::plant_copy(&host, &pattern.graph(), &mut rng);
        let outcome = detect_by_full_broadcast(&with_copy, &pattern, 4).unwrap();
        assert!(outcome.contains);
        assert!(outcome.witness.is_some());
        // ceil(n / b) rounds.
        assert_eq!(outcome.rounds, 6);
    }

    #[test]
    fn full_broadcast_reports_absence() {
        let g = generators::turan_graph(15, 3); // K4-free
        let outcome = detect_by_full_broadcast(&g, &Pattern::Clique(4), 3).unwrap();
        assert!(!outcome.contains);
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.rounds, 5);
        // Blackboard bits: n rows of n bits.
        assert_eq!(outcome.total_bits, 15 * 15);
    }

    #[test]
    fn gather_to_leader_matches_broadcast_answer() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF1);
        for _ in 0..5 {
            let g = generators::erdos_renyi(18, 0.2, &mut rng);
            let pattern = Pattern::Clique(3);
            let a = detect_by_full_broadcast(&g, &pattern, 2).unwrap();
            let b = detect_by_gather_to_leader(&g, &pattern, 2).unwrap();
            assert_eq!(a.contains, b.contains);
            // Both take ceil(n/b) rounds.
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn round_counts_scale_with_bandwidth() {
        let g = generators::cycle(32);
        let slow = detect_by_full_broadcast(&g, &Pattern::Cycle(32), 1).unwrap();
        let fast = detect_by_full_broadcast(&g, &Pattern::Cycle(32), 16).unwrap();
        assert_eq!(slow.rounds, 32);
        assert_eq!(fast.rounds, 2);
        assert!(slow.contains && fast.contains);
    }

    #[test]
    fn witness_is_a_real_copy() {
        let g = generators::complete(6);
        let outcome = detect_by_full_broadcast(&g, &Pattern::Clique(4), 8).unwrap();
        let witness = outcome.witness.unwrap();
        let pattern = Pattern::Clique(4).graph();
        for (u, v) in pattern.edges() {
            assert!(g.has_edge(witness[u], witness[v]));
        }
    }
}
