//! Trivial baseline protocols.
//!
//! Two protocols that the paper repeatedly uses as yardsticks:
//!
//! * **broadcast-your-neighbourhood** ([`FullBroadcastDetection`],
//!   `CLIQUE-BCAST`): every node writes its `n`-bit adjacency row on the
//!   blackboard; after `⌈n/b⌉` rounds every node knows the whole graph and
//!   can answer any graph question locally. This is the trivial
//!   `O(n log n / b)`-round upper bound that Theorem 7 improves on for
//!   bipartite patterns (and that non-bipartite patterns are stuck with).
//! * **ship-everything-to-a-leader** ([`GatherToLeaderDetection`],
//!   `CLIQUE-UCAST`): every node sends its `n`-bit row to player 0 over its
//!   single link to player 0, taking `⌈n/b⌉` rounds; this matches the
//!   non-explicit counting lower bound up to the `O(log n)` slack.
//!
//! Both are [`Protocol`]s; the `detect_by_*` free functions are thin
//! [`Runner`] wrappers that pick the canonical model for each.

use clique_graphs::iso::find_subgraph;
use clique_graphs::{Graph, Pattern};
use clique_sim::prelude::*;

use crate::outcome::{Detection, DetectionOutcome};

/// The broadcast-your-neighbourhood protocol: runs in any broadcast-capable
/// model and answers `H`-subgraph detection by local search on the
/// reconstructed graph.
#[derive(Clone, Debug)]
pub struct FullBroadcastDetection<'a> {
    graph: &'a Graph,
    pattern: &'a Pattern,
}

impl<'a> FullBroadcastDetection<'a> {
    /// Prepares the protocol for the given input graph and pattern.
    pub fn new(graph: &'a Graph, pattern: &'a Pattern) -> Self {
        Self { graph, pattern }
    }
}

impl Protocol for FullBroadcastDetection<'_> {
    type Output = Detection;

    fn run(&mut self, session: &mut Session) -> Result<Detection, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);

        // Every node broadcasts its adjacency row (n bits, packed).
        let rows: Vec<BitString> = (0..n).map(|v| self.graph.adjacency_row_bits(v)).collect();
        let inboxes = session.broadcast_all("broadcast adjacency rows", &rows)?;

        // Node 0 reconstructs the graph from what it received (plus its own
        // row) and searches locally. Every other node could do the same.
        let mut matrix = BitMatrix::zeros(n, n);
        matrix.set_row_words(0, self.graph.adjacency_row_bits(0).words());
        for (sender, payload) in inboxes[0].broadcasts() {
            read_row_into(&mut matrix, sender.index(), payload);
        }
        let reconstructed = Graph::from_adjacency_bitmatrix(&matrix);
        debug_assert_eq!(&reconstructed, self.graph);
        let witness = find_subgraph(&reconstructed, &self.pattern.graph());

        Ok(Detection {
            contains: witness.is_some(),
            witness,
        })
    }
}

/// The ship-everything-to-a-leader protocol: player 0 gathers all rows over
/// unicast links and decides alone.
#[derive(Clone, Debug)]
pub struct GatherToLeaderDetection<'a> {
    graph: &'a Graph,
    pattern: &'a Pattern,
}

impl<'a> GatherToLeaderDetection<'a> {
    /// Prepares the protocol for the given input graph and pattern.
    pub fn new(graph: &'a Graph, pattern: &'a Pattern) -> Self {
        Self { graph, pattern }
    }
}

impl Protocol for GatherToLeaderDetection<'_> {
    type Output = Detection;

    fn run(&mut self, session: &mut Session) -> Result<Detection, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);

        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        for (v, out) in outs.iter_mut().enumerate().skip(1) {
            out.send(NodeId::new(0), self.graph.adjacency_row_bits(v));
        }
        let inboxes = session.exchange("gather rows at leader", outs)?;

        let mut matrix = BitMatrix::zeros(n, n);
        matrix.set_row_words(0, self.graph.adjacency_row_bits(0).words());
        for (sender, payload) in inboxes[0].unicasts() {
            read_row_into(&mut matrix, sender.index(), payload);
        }
        let reconstructed = Graph::from_adjacency_bitmatrix(&matrix);
        debug_assert_eq!(&reconstructed, self.graph);
        let witness = find_subgraph(&reconstructed, &self.pattern.graph());

        Ok(Detection {
            contains: witness.is_some(),
            witness,
        })
    }
}

/// Copies a received adjacency row into row `v` of the matrix via the
/// word-level reader fast path. Missing trailing bits (a short payload)
/// read as `false`, matching the old per-bit `unwrap_or(false)` decode.
fn read_row_into(matrix: &mut BitMatrix, v: usize, payload: &BitString) {
    let n = matrix.cols();
    let mut reader = payload.reader();
    let take = reader.remaining().min(n);
    if let Some(mut words) = reader.read_words(take) {
        words.resize(n.div_ceil(<DefaultLane as Word>::BITS), DefaultLane::ZERO);
        matrix.set_row_words(v, &words);
    }
}

/// Runs [`FullBroadcastDetection`] in `CLIQUE-BCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if `graph` has no vertices.
pub fn detect_by_full_broadcast(
    graph: &Graph,
    pattern: &Pattern,
    bandwidth: usize,
) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::broadcast(n, bandwidth))
        .execute(&mut FullBroadcastDetection::new(graph, pattern))
}

/// Runs [`GatherToLeaderDetection`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if `graph` has no vertices.
pub fn detect_by_gather_to_leader(
    graph: &Graph,
    pattern: &Pattern,
    bandwidth: usize,
) -> Result<DetectionOutcome, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth))
        .execute(&mut GatherToLeaderDetection::new(graph, pattern))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn full_broadcast_detects_planted_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF0);
        let host = generators::erdos_renyi(24, 0.05, &mut rng);
        let pattern = Pattern::Cycle(4);
        let (with_copy, _) = generators::plant_copy(&host, &pattern.graph(), &mut rng);
        let outcome = detect_by_full_broadcast(&with_copy, &pattern, 4).unwrap();
        assert!(outcome.contains);
        assert!(outcome.witness.is_some());
        // ceil(n / b) rounds.
        assert_eq!(outcome.rounds(), 6);
    }

    #[test]
    fn full_broadcast_reports_absence() {
        let g = generators::turan_graph(15, 3); // K4-free
        let outcome = detect_by_full_broadcast(&g, &Pattern::Clique(4), 3).unwrap();
        assert!(!outcome.contains);
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.rounds(), 5);
        // Blackboard bits: n rows of n bits.
        assert_eq!(outcome.total_bits(), 15 * 15);
    }

    #[test]
    fn gather_to_leader_matches_broadcast_answer() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF1);
        for _ in 0..5 {
            let g = generators::erdos_renyi(18, 0.2, &mut rng);
            let pattern = Pattern::Clique(3);
            let a = detect_by_full_broadcast(&g, &pattern, 2).unwrap();
            let b = detect_by_gather_to_leader(&g, &pattern, 2).unwrap();
            assert_eq!(a.contains, b.contains);
            // Both take ceil(n/b) rounds.
            assert_eq!(a.rounds(), b.rounds());
        }
    }

    #[test]
    fn round_counts_scale_with_bandwidth() {
        let g = generators::cycle(32);
        let slow = detect_by_full_broadcast(&g, &Pattern::Cycle(32), 1).unwrap();
        let fast = detect_by_full_broadcast(&g, &Pattern::Cycle(32), 16).unwrap();
        assert_eq!(slow.rounds(), 32);
        assert_eq!(fast.rounds(), 2);
        assert!(slow.contains && fast.contains);
    }

    #[test]
    fn witness_is_a_real_copy() {
        let g = generators::complete(6);
        let outcome = detect_by_full_broadcast(&g, &Pattern::Clique(4), 8).unwrap();
        let witness = outcome.output.witness.clone().unwrap();
        let pattern = Pattern::Clique(4).graph();
        for (u, v) in pattern.edges() {
            assert!(g.has_edge(witness[u], witness[v]));
        }
    }

    #[test]
    #[should_panic(expected = "complete clique topology")]
    fn full_broadcast_rejects_restricted_topologies() {
        // On a CONGEST topology a broadcast reaches only neighbours, so the
        // reconstruct-and-search protocol would silently work from a partial
        // view; the session guard rejects it up front.
        let adj = AdjacencyTopology::from_edges(3, &[(0, 1)]);
        let g = generators::cycle(3);
        let pattern = Pattern::Clique(3);
        let config = CliqueConfig::builder()
            .bandwidth(2)
            .topology(adj)
            .broadcast()
            .build();
        let _ = Runner::new(config).execute(&mut FullBroadcastDetection::new(&g, &pattern));
    }

    #[test]
    fn protocols_run_on_explicit_runners() {
        // The same protocol instance type runs on models the wrappers never
        // pick, e.g. a wider-bandwidth broadcast clique.
        let g = generators::complete(6);
        let pattern = Pattern::Clique(3);
        let config = CliqueConfig::builder()
            .nodes(6)
            .bandwidth(6)
            .broadcast()
            .build();
        let outcome = Runner::new(config)
            .execute(&mut FullBroadcastDetection::new(&g, &pattern))
            .unwrap();
        assert!(outcome.contains);
        assert_eq!(outcome.rounds(), 1);
    }
}
