//! Adaptive subgraph detection without knowing the Turán number
//! (Section 3.1, Theorem 9).
//!
//! For most bipartite patterns `H` even the asymptotics of `ex(n, H)` are
//! unknown, so the sketch capacity of Theorem 7 cannot be computed. The
//! adaptive algorithm ([`AdaptiveDetection`]) instead samples nested
//! subgraphs `G_0 ⊇ G_1 ⊇ …` using one random `O(log n)`-bit value per node
//! (Lemma 8 guarantees the degeneracy of `G_j` is concentrated around
//! `2^{-j}` times that of `G`), and combines exponentially increasing
//! guesses for the reconstruction budget with the sampled levels:
//!
//! * for each budget `k = 2, 4, 8, …` the algorithm reconstructs the
//!   *densest not-yet-decoded* levels that fit the budget, working from
//!   sparse to dense;
//! * any reconstructed level is searched locally; a copy of `H` found in a
//!   level is a copy in `G` (levels are subgraphs), so the algorithm may
//!   stop immediately;
//! * the algorithm declares "no `H`-subgraph" only once level 0 — the input
//!   graph itself — has been fully reconstructed.
//!
//! When `G` is `H`-free, Claim 6 bounds its degeneracy by `4·ex(n, H)/n`, so
//! level 0 is decoded once the budget reaches that value and the total cost
//! is `O(ex(n, H)·log² n/(n·b))` rounds. When `G` contains a copy, Claim 6
//! applied to the densest successfully decoded level shows a copy is found
//! by the time the budget exceeds `≈ 8·ex(n, H)/n + O(log n)`, giving the
//! `O(ex(n, H)·log² n/(n·b) + log³ n/b)` bound of Theorem 9.
//!
//! Note: the pseudocode printed in the paper iterates budgets and levels in
//! a slightly different order and returns "no H-subgraph" as soon as *any*
//! level reconstructs cleanly; read literally this mis-answers inputs whose
//! heavily-sampled levels lose every copy. The implementation above follows
//! the surrounding text and achieves exactly the guarantees stated in
//! Theorem 9 (see EXPERIMENTS.md, E5).

use clique_graphs::iso::find_subgraph;
use clique_graphs::sampling::SampledSubgraphs;
use clique_graphs::{Graph, Pattern};
use clique_sim::bits::bits_for_universe;
use clique_sim::prelude::*;
use rand::Rng;

use crate::outcome::Detection;
use crate::subgraph::SketchReconstruction;

/// A per-attempt record of the adaptive algorithm, for experiment reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptiveAttempt {
    /// The reconstruction budget `k` used.
    pub budget: usize,
    /// The sampling level `j` attempted.
    pub level: usize,
    /// Whether reconstruction succeeded.
    pub success: bool,
    /// Rounds spent on this attempt.
    pub rounds: u64,
}

/// The output of an adaptive detection run: the decision plus the full
/// trace of reconstruction attempts.
#[derive(Clone, Debug)]
pub struct AdaptiveOutput {
    /// The final answer.
    pub outcome: Detection,
    /// Every reconstruction attempt made, in order.
    pub attempts: Vec<AdaptiveAttempt>,
}

/// The full result of an adaptive detection run.
pub type AdaptiveRun = RunOutcome<AdaptiveOutput>;

/// Theorem 9 as a [`Protocol`]: adaptive `H`-subgraph detection through
/// degeneracy sampling and doubling reconstruction budgets.
#[derive(Debug)]
pub struct AdaptiveDetection<'a, R: Rng + ?Sized> {
    graph: &'a Graph,
    pattern: &'a Pattern,
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> AdaptiveDetection<'a, R> {
    /// Prepares the protocol; `rng` drives the per-node sampling values.
    pub fn new(graph: &'a Graph, pattern: &'a Pattern, rng: &'a mut R) -> Self {
        Self {
            graph,
            pattern,
            rng,
        }
    }
}

impl<R: Rng + ?Sized> Protocol for AdaptiveDetection<'_, R> {
    type Output = AdaptiveOutput;

    fn run(&mut self, session: &mut Session) -> Result<AdaptiveOutput, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        let h = self.pattern.graph();
        let mut attempts = Vec::new();

        // Phase 0: every node broadcasts its random value X_v (O(log n)
        // bits), after which each node knows which of its edges survive to
        // each level.
        let samples = SampledSubgraphs::sample(self.graph, self.rng);
        {
            let value_bits = bits_for_universe(1u64 << samples.levels).max(1);
            let messages: Vec<BitString> = samples
                .values
                .iter()
                .map(|&x| BitString::from_bits(x, value_bits))
                .collect();
            session.broadcast_all("broadcast sampling values", &messages)?;
        }
        let levels = samples.all_levels();

        // Main loop: doubling budgets; for each budget, decode ever denser
        // levels until one fails. Each attempt runs nested so its own
        // round count can be reported, while its metrics land in this
        // session.
        let mut densest_decoded = levels.len(); // index of the densest decoded level, +1
        let mut budget = 2usize;
        loop {
            while densest_decoded > 0 {
                let j = densest_decoded - 1;
                let run = session.run_nested(&mut SketchReconstruction::new(&levels[j], budget))?;
                attempts.push(AdaptiveAttempt {
                    budget,
                    level: j,
                    success: run.success(),
                    rounds: run.rounds(),
                });
                match run.into_output().result {
                    Ok(decoded) => {
                        if let Some(witness) = find_subgraph(&decoded, &h) {
                            return Ok(AdaptiveOutput {
                                outcome: Detection {
                                    contains: true,
                                    witness: Some(witness),
                                },
                                attempts,
                            });
                        }
                        densest_decoded = j;
                    }
                    Err(_) => break,
                }
            }
            if densest_decoded == 0 {
                // The input graph itself was reconstructed and contains no
                // copy.
                return Ok(AdaptiveOutput {
                    outcome: Detection {
                        contains: false,
                        witness: None,
                    },
                    attempts,
                });
            }
            if budget >= 2 * n {
                // Safety net: with budget ≥ n every level decodes, so this
                // is unreachable for well-formed inputs.
                return Ok(AdaptiveOutput {
                    outcome: Detection {
                        contains: false,
                        witness: None,
                    },
                    attempts,
                });
            }
            budget *= 2;
        }
    }
}

/// Runs [`AdaptiveDetection`] in `CLIQUE-BCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn detect_subgraph_adaptive<R: Rng + ?Sized>(
    graph: &Graph,
    pattern: &Pattern,
    bandwidth: usize,
    rng: &mut R,
) -> Result<AdaptiveRun, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::broadcast(n, bandwidth))
        .execute(&mut AdaptiveDetection::new(graph, pattern, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::generators;
    use clique_graphs::iso::contains_subgraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn adaptive_detection_finds_planted_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE0);
        let host = generators::erdos_renyi(32, 0.05, &mut rng);
        let pattern = Pattern::Cycle(4);
        let (with_copy, _) = generators::plant_copy(&host, &pattern.graph(), &mut rng);
        let run = detect_subgraph_adaptive(&with_copy, &pattern, 8, &mut rng).unwrap();
        assert!(run.outcome.contains);
        let witness = run
            .output
            .outcome
            .witness
            .clone()
            .expect("a witness copy is returned");
        for (u, v) in pattern.graph().edges() {
            assert!(with_copy.has_edge(witness[u], witness[v]));
        }
        assert!(!run.attempts.is_empty());
    }

    #[test]
    fn adaptive_detection_certifies_absence() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE1);
        let c4_free = clique_graphs::extremal::dense_c4_free(31);
        let run = detect_subgraph_adaptive(&c4_free, &Pattern::Cycle(4), 8, &mut rng).unwrap();
        assert!(!run.outcome.contains);
        // The final successful attempt must have been on level 0.
        let last_success = run
            .attempts
            .iter()
            .rev()
            .find(|a| a.success)
            .expect("level 0 must eventually decode");
        assert_eq!(last_success.level, 0);
        // The attempts' rounds (plus the sampling phase) sum to the total.
        let attempt_rounds: u64 = run.attempts.iter().map(|a| a.rounds).sum();
        assert!(run.rounds() >= attempt_rounds);
    }

    #[test]
    fn adaptive_detection_agrees_with_ground_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE2);
        for trial in 0..6 {
            let g = generators::erdos_renyi(24, 0.08 + 0.02 * trial as f64, &mut rng);
            for pattern in [Pattern::Clique(3), Pattern::Cycle(4)] {
                let expected = contains_subgraph(&g, &pattern.graph());
                let run = detect_subgraph_adaptive(&g, &pattern, 6, &mut rng).unwrap();
                assert_eq!(
                    run.outcome.contains, expected,
                    "pattern {pattern}, trial {trial}"
                );
            }
        }
    }

    #[test]
    fn adaptive_detection_on_dense_graph_stops_early() {
        // A clique contains every small pattern; the algorithm should find a
        // copy in a sparse sampled level long before reconstructing the
        // whole graph (which would need budget ≈ n).
        let mut rng = ChaCha8Rng::seed_from_u64(0xE3);
        let g = generators::complete(48);
        let run = detect_subgraph_adaptive(&g, &Pattern::Clique(3), 8, &mut rng).unwrap();
        assert!(run.outcome.contains);
        let max_budget = run.attempts.iter().map(|a| a.budget).max().unwrap();
        assert!(
            max_budget < 48,
            "should not need a budget close to n; used {max_budget}"
        );
    }

    #[test]
    fn adaptive_cost_tracks_pattern_sparsity() {
        // Detecting a path (ex = O(n)) must be much cheaper than the trivial
        // broadcast of the whole graph when the graph is dense.
        let mut rng = ChaCha8Rng::seed_from_u64(0xE4);
        let g = generators::erdos_renyi(40, 0.5, &mut rng);
        let run = detect_subgraph_adaptive(&g, &Pattern::Path(4), 4, &mut rng).unwrap();
        assert!(run.outcome.contains);
        let trivial_rounds = (40u64).div_ceil(4);
        assert!(
            run.rounds() <= 6 * trivial_rounds,
            "adaptive rounds {} unexpectedly large",
            run.rounds()
        );
    }

    #[test]
    fn single_node_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE5);
        let g = Graph::empty(1);
        let run = detect_subgraph_adaptive(&g, &Pattern::Clique(3), 1, &mut rng).unwrap();
        assert!(!run.outcome.contains);
    }
}
