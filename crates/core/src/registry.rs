//! The protocol registry: one `protocol_id -> entry` table shared by every
//! harness that dispatches protocols by name (the `clique-serve` job
//! server, the `serve` bench bin, tests), replacing per-binary match arms —
//! adding a servable protocol is one [`PROTOCOLS`] row.
//!
//! An entry bundles a stable id, a one-line description, the input kind it
//! consumes and a runner that executes the protocol on the model the paper
//! states its bound for, returning the communication ledger plus a
//! *canonical output digest* (fixed-key-order JSON, integers and booleans
//! only). Two runs of the same `(protocol, input, bandwidth)` triple are
//! byte-identical in both fields at every worker count and under every
//! transport — the determinism contract the serving layer's transcript
//! cache is built on.
//!
//! Inputs are themselves canonical: [`generate_input`] maps a
//! `(family, n, seed, max_weight)` label to a graph through a freshly
//! seeded [`ChaCha8Rng`], so a job spec fully determines its input without
//! shipping the graph.

use clique_graphs::weighted::{self, WeightedGraph};
use clique_graphs::{generators, Graph, Pattern};
use clique_sim::linalg::IntMatrix;
use clique_sim::transport::{FaultPlan, FaultyTransport};
use clique_sim::{BitString, CliqueConfig, Metrics, Runner, Session, SimError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::algebraic::{ApspProtocol, MatMulSchedule, TriangleCount};
use crate::mst::{MsfOutput, MstProtocol};
use crate::outcome::Detection;
use crate::subgraph::TuranSketchDetection;
use crate::trivial::FullBroadcastDetection;

/// The sketch base capacity every registry MST run starts from (the value
/// the oracle grids pin).
pub const MST_BASE_CAPACITY: usize = 4;

/// A generated protocol input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobInput {
    /// An unweighted graph (detection, counting, APSP protocols).
    Unweighted(Graph),
    /// A weighted graph (the MST protocol).
    Weighted(WeightedGraph),
}

impl JobInput {
    /// Which kind of input this is.
    pub fn kind(&self) -> InputKind {
        match self {
            JobInput::Unweighted(_) => InputKind::Unweighted,
            JobInput::Weighted(_) => InputKind::Weighted,
        }
    }

    /// Number of vertices (= players of the run).
    pub fn vertex_count(&self) -> usize {
        match self {
            JobInput::Unweighted(g) => g.vertex_count(),
            JobInput::Weighted(g) => g.vertex_count(),
        }
    }

    fn unweighted(&self, id: &str) -> &Graph {
        match self {
            JobInput::Unweighted(g) => g,
            JobInput::Weighted(_) => panic!("protocol {id} expects an unweighted input"),
        }
    }

    fn weighted(&self, id: &str) -> &WeightedGraph {
        match self {
            JobInput::Weighted(g) => g,
            JobInput::Unweighted(_) => panic!("protocol {id} expects a weighted input"),
        }
    }
}

/// The input kind a registry entry consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputKind {
    /// Entry runs on an unweighted [`Graph`].
    Unweighted,
    /// Entry runs on a [`WeightedGraph`].
    Weighted,
}

/// Execution knobs of one registry run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Link bandwidth `b` of the model instance.
    pub bandwidth: usize,
    /// Worker-count override for the run's engines (`None` = default
    /// resolution). Never changes outputs or ledgers.
    pub threads: Option<usize>,
    /// Deterministic fault-injection schedule, wrapped around the default
    /// transport (`None` = clean delivery). An injected fault aborts the
    /// run with [`SimError::TransportFault`]; a run that completes under a
    /// plan is byte-identical to the fault-free run — unfaulted messages
    /// pass through untouched.
    pub fault: Option<FaultPlan>,
}

/// The shared `Runner` construction of every registry entry: thread
/// override plus, when a fault plan is set, a [`FaultyTransport`] wrapped
/// around the process-default backend (so chaos composes with the
/// `CLIQUE_TRANSPORT` knob).
fn runner(config: CliqueConfig, options: &RunOptions) -> Runner {
    let mut runner = Runner::new(config).with_threads(options.threads);
    if let Some(plan) = options.fault {
        runner = runner.with_transport(Some(Box::new(FaultyTransport::with_default_inner(plan))));
    }
    runner
}

/// What a registry run produces: the canonical output digest plus the full
/// communication ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolRun {
    /// Canonical JSON digest of the protocol output (fixed key order, so
    /// byte-comparable).
    pub output: String,
    /// The run's communication metrics.
    pub metrics: Metrics,
}

/// One registered protocol.
pub struct ProtocolEntry {
    /// Stable identifier used in job specs and CLIs.
    pub id: &'static str,
    /// One-line description for `--list`-style output.
    pub description: &'static str,
    /// The input kind the entry consumes.
    pub kind: InputKind,
    run: fn(&JobInput, &RunOptions) -> Result<ProtocolRun, SimError>,
}

impl ProtocolEntry {
    /// Executes the protocol on `input`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] of the underlying run.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s kind differs from [`Self::kind`].
    pub fn run(&self, input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
        (self.run)(input, options)
    }
}

/// The registry: every protocol servable by id.
pub const PROTOCOLS: &[ProtocolEntry] = &[
    ProtocolEntry {
        id: "mst",
        description: "minimum spanning forest on edge-incidence sketches (CLIQUE-BCAST)",
        kind: InputKind::Weighted,
        run: run_mst,
    },
    ProtocolEntry {
        id: "triangle-count",
        description: "exact triangle counting via semiring matmul (CLIQUE-UCAST)",
        kind: InputKind::Unweighted,
        run: run_triangle_count,
    },
    ProtocolEntry {
        id: "triangle-count-fast",
        description: "triangle counting with auto matmul dispatch (cubic/strassen/sparse) (CLIQUE-UCAST)",
        kind: InputKind::Unweighted,
        run: run_triangle_count_fast,
    },
    ProtocolEntry {
        id: "apsp",
        description: "all-pairs shortest paths by (min,+) squaring (CLIQUE-UCAST)",
        kind: InputKind::Unweighted,
        run: run_apsp,
    },
    ProtocolEntry {
        id: "apsp-fast",
        description: "APSP with auto matmul dispatch per squaring (cubic/sparse) (CLIQUE-UCAST)",
        kind: InputKind::Unweighted,
        run: run_apsp_fast,
    },
    ProtocolEntry {
        id: "c4-turan-sketch",
        description: "C4 detection with degeneracy sketches, Theorem 7 (CLIQUE-BCAST)",
        kind: InputKind::Unweighted,
        run: run_c4_turan,
    },
    ProtocolEntry {
        id: "c4-full-broadcast",
        description: "C4 detection by broadcasting all rows, Section 3.1 (CLIQUE-BCAST)",
        kind: InputKind::Unweighted,
        run: run_c4_full_broadcast,
    },
    ProtocolEntry {
        id: "chaos-probe",
        description: "fault-tolerance probe: one-phase broadcast, deliberately panics on odd n (chaos testing)",
        kind: InputKind::Unweighted,
        run: run_chaos_probe,
    },
];

/// Looks up an entry by id.
pub fn find(id: &str) -> Option<&'static ProtocolEntry> {
    PROTOCOLS.iter().find(|entry| entry.id == id)
}

/// The unweighted input families [`generate_input`] accepts (the family
/// mix of the differential oracle grids).
pub const UNWEIGHTED_FAMILIES: &[&str] = &[
    "path",
    "cycle",
    "star",
    "complete",
    "erdos_renyi(p=0.15)",
    "erdos_renyi(p=0.5)",
    "random_tree",
];

/// The weighted input families [`generate_input`] accepts.
pub const WEIGHTED_FAMILIES: &[&str] = &[
    "weighted_path",
    "weighted_cycle",
    "weighted_star",
    "weighted_random_tree",
    "weighted_erdos_renyi(p=0.2)",
    "constant_weights(complete)",
];

/// Generates the canonical input for a `(family, n, seed)` label: the RNG
/// is freshly seeded per call, so the result depends on the label alone.
/// `max_weight` is only read by weighted families (weights are uniform in
/// `1..=max_weight`). Returns `None` for an unknown family of the requested
/// kind.
pub fn generate_input(
    kind: InputKind,
    family: &str,
    n: usize,
    seed: u64,
    max_weight: u64,
) -> Option<JobInput> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match kind {
        InputKind::Unweighted => {
            let graph = match family {
                "path" => generators::path(n),
                "cycle" => generators::cycle(n),
                "star" => generators::star(n.saturating_sub(1)),
                "complete" => generators::complete(n),
                "erdos_renyi(p=0.15)" => generators::erdos_renyi(n, 0.15, &mut rng),
                "erdos_renyi(p=0.5)" => generators::erdos_renyi(n, 0.5, &mut rng),
                "random_tree" => generators::random_tree(n, &mut rng),
                _ => return None,
            };
            Some(JobInput::Unweighted(graph))
        }
        InputKind::Weighted => {
            let graph = match family {
                "weighted_path" => weighted::weighted_path(n, max_weight, &mut rng),
                "weighted_cycle" => weighted::weighted_cycle(n, max_weight, &mut rng),
                "weighted_star" => {
                    weighted::weighted_star(n.saturating_sub(1), max_weight, &mut rng)
                }
                "weighted_random_tree" => weighted::weighted_random_tree(n, max_weight, &mut rng),
                "weighted_erdos_renyi(p=0.2)" => {
                    weighted::weighted_erdos_renyi(n, 0.2, max_weight, &mut rng)
                }
                "constant_weights(complete)" => {
                    weighted::constant_weights(&generators::complete(n), max_weight)
                }
                _ => return None,
            };
            Some(JobInput::Weighted(graph))
        }
    }
}

fn run_mst(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.weighted("mst");
    let outcome = runner(
        CliqueConfig::broadcast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut MstProtocol::new(graph, MST_BASE_CAPACITY))?;
    Ok(ProtocolRun {
        output: msf_digest(&outcome.output),
        metrics: outcome.metrics,
    })
}

fn run_triangle_count(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("triangle-count");
    let outcome = runner(
        CliqueConfig::unicast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut TriangleCount::new(graph))?;
    Ok(ProtocolRun {
        output: format!("{{\"triangles\":{}}}", outcome.output),
        metrics: outcome.metrics,
    })
}

fn run_triangle_count_fast(
    input: &JobInput,
    options: &RunOptions,
) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("triangle-count-fast");
    let outcome = runner(
        CliqueConfig::unicast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut TriangleCount::with_schedule(
        graph,
        MatMulSchedule::Auto,
    ))?;
    Ok(ProtocolRun {
        output: format!("{{\"triangles\":{}}}", outcome.output),
        metrics: outcome.metrics,
    })
}

fn run_apsp(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("apsp");
    let outcome = runner(
        CliqueConfig::unicast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut ApspProtocol::new(graph))?;
    Ok(ProtocolRun {
        output: apsp_digest(&outcome.output),
        metrics: outcome.metrics,
    })
}

fn run_apsp_fast(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("apsp-fast");
    let outcome = runner(
        CliqueConfig::unicast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut ApspProtocol::with_schedule(
        graph,
        MatMulSchedule::Auto,
    ))?;
    Ok(ProtocolRun {
        output: apsp_digest(&outcome.output),
        metrics: outcome.metrics,
    })
}

fn run_c4_turan(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("c4-turan-sketch");
    let outcome = runner(
        CliqueConfig::broadcast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut TuranSketchDetection::new(graph, &Pattern::Cycle(4)))?;
    Ok(ProtocolRun {
        output: detection_digest(&outcome.output),
        metrics: outcome.metrics,
    })
}

fn run_c4_full_broadcast(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("c4-full-broadcast");
    let outcome = runner(
        CliqueConfig::broadcast(graph.vertex_count(), options.bandwidth),
        options,
    )
    .execute(&mut FullBroadcastDetection::new(graph, &Pattern::Cycle(4)))?;
    Ok(ProtocolRun {
        output: detection_digest(&outcome.output),
        metrics: outcome.metrics,
    })
}

/// The deliberately misbehaving entry backing the serving layer's
/// panic-isolation and quarantine tests: a trivial one-phase broadcast that
/// panics (by design) whenever the input has an odd number of vertices.
/// The panic is deterministic in the job spec, so retrying it can never
/// succeed — the recovery layer must isolate it and quarantine the job.
fn run_chaos_probe(input: &JobInput, options: &RunOptions) -> Result<ProtocolRun, SimError> {
    let graph = input.unweighted("chaos-probe");
    let n = graph.vertex_count();
    assert!(
        n.is_multiple_of(2),
        "chaos-probe: deliberate panic for odd n ({n})"
    );
    let outcome = runner(CliqueConfig::broadcast(n, options.bandwidth), options).execute(
        &mut |session: &mut Session| {
            let rows: Vec<BitString> = (0..n)
                .map(|i| BitString::from_bits((i % 2) as u64, 1))
                .collect();
            session.broadcast_all("probe broadcast", &rows)?;
            Ok(n as u64)
        },
    )?;
    Ok(ProtocolRun {
        output: format!("{{\"probe\":{}}}", outcome.output),
        metrics: outcome.metrics,
    })
}

fn msf_digest(out: &MsfOutput) -> String {
    let edges: Vec<String> = out
        .edges
        .iter()
        .map(|(u, v, w)| format!("[{u},{v},{w}]"))
        .collect();
    format!(
        "{{\"edges\":[{}],\"total_weight\":{},\"components\":{},\"phases\":{},\"final_capacity\":{}}}",
        edges.join(","),
        out.total_weight,
        out.components,
        out.phases,
        out.final_capacity
    )
}

fn apsp_digest(dist: &IntMatrix) -> String {
    let rows: Vec<String> = (0..dist.rows())
        .map(|i| {
            let cells: Vec<String> = (0..dist.cols())
                .map(|j| {
                    let v = dist.get(i, j);
                    if v == IntMatrix::INFINITY {
                        "-1".to_owned()
                    } else {
                        v.to_string()
                    }
                })
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("{{\"dist\":[{}]}}", rows.join(","))
}

fn detection_digest(detection: &Detection) -> String {
    let witness = match &detection.witness {
        Some(copy) => {
            let cells: Vec<String> = copy.iter().map(usize::to_string).collect();
            format!("[{}]", cells.join(","))
        }
        None => "null".to_owned(),
    };
    format!(
        "{{\"contains\":{},\"witness\":{}}}",
        detection.contains, witness
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebraic::count_triangles;
    use crate::mst::compute_msf;
    use clique_graphs::iso;

    #[test]
    fn every_id_resolves_and_ids_are_unique() {
        for entry in PROTOCOLS {
            assert_eq!(find(entry.id).unwrap().id, entry.id);
            assert!(!entry.description.is_empty());
        }
        let mut ids: Vec<&str> = PROTOCOLS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), PROTOCOLS.len());
        assert!(find("no-such-protocol").is_none());
    }

    #[test]
    fn generated_inputs_depend_only_on_their_label() {
        for family in UNWEIGHTED_FAMILIES {
            let a = generate_input(InputKind::Unweighted, family, 9, 0xFEED, 0).unwrap();
            let b = generate_input(InputKind::Unweighted, family, 9, 0xFEED, 0).unwrap();
            assert_eq!(a, b, "family {family}");
            assert_eq!(a.vertex_count(), 9, "family {family}");
        }
        for family in WEIGHTED_FAMILIES {
            let a = generate_input(InputKind::Weighted, family, 7, 3, 5).unwrap();
            let b = generate_input(InputKind::Weighted, family, 7, 3, 5).unwrap();
            assert_eq!(a, b, "family {family}");
        }
        assert!(generate_input(InputKind::Unweighted, "hypercube", 8, 0, 0).is_none());
        assert!(generate_input(InputKind::Weighted, "path", 8, 0, 3).is_none());
    }

    #[test]
    fn registry_runs_match_direct_wrappers() {
        let input =
            generate_input(InputKind::Weighted, "weighted_random_tree", 12, 0x5EED, 7).unwrap();
        let options = RunOptions {
            bandwidth: 8,
            ..RunOptions::default()
        };
        let run = find("mst").unwrap().run(&input, &options).unwrap();
        let JobInput::Weighted(graph) = &input else {
            unreachable!()
        };
        let direct = compute_msf(graph, MST_BASE_CAPACITY, 8).unwrap();
        assert_eq!(run.output, msf_digest(&direct.output));
        assert_eq!(run.metrics, direct.metrics);
        assert_eq!(direct.forest(), iso::minimum_spanning_forest(graph));

        let input = generate_input(InputKind::Unweighted, "erdos_renyi(p=0.5)", 10, 1, 0).unwrap();
        let run = find("triangle-count")
            .unwrap()
            .run(
                &input,
                &RunOptions {
                    bandwidth: 16,
                    threads: Some(2),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let JobInput::Unweighted(graph) = &input else {
            unreachable!()
        };
        let direct = count_triangles(graph, 16).unwrap();
        assert_eq!(run.output, format!("{{\"triangles\":{}}}", direct.output));
        assert_eq!(run.metrics, direct.metrics);
    }

    #[test]
    fn chaos_probe_runs_on_even_inputs() {
        let input = generate_input(InputKind::Unweighted, "path", 6, 0, 0).unwrap();
        let run = find("chaos-probe")
            .unwrap()
            .run(
                &input,
                &RunOptions {
                    bandwidth: 4,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(run.output, "{\"probe\":6}");
        assert_eq!(run.metrics.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "chaos-probe: deliberate panic")]
    fn chaos_probe_panics_on_odd_inputs() {
        let input = generate_input(InputKind::Unweighted, "path", 5, 0, 0).unwrap();
        let _ = find("chaos-probe").unwrap().run(
            &input,
            &RunOptions {
                bandwidth: 4,
                ..RunOptions::default()
            },
        );
    }

    #[test]
    fn fault_plans_abort_typed_and_zero_rate_matches_fault_free() {
        use clique_sim::transport::{FaultKind, INJECTABLE_FAULTS};
        let input = generate_input(InputKind::Unweighted, "erdos_renyi(p=0.5)", 8, 2, 0).unwrap();
        let entry = find("triangle-count").unwrap();
        let clean = entry
            .run(
                &input,
                &RunOptions {
                    bandwidth: 16,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let zero_rate = entry
            .run(
                &input,
                &RunOptions {
                    bandwidth: 16,
                    fault: Some(FaultPlan::new(9, 0, &INJECTABLE_FAULTS)),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(clean, zero_rate, "a zero-rate plan changed the transcript");
        let saturated = entry.run(
            &input,
            &RunOptions {
                bandwidth: 16,
                fault: Some(FaultPlan::new(9, 1_000_000, &[FaultKind::Truncate])),
                ..RunOptions::default()
            },
        );
        assert!(matches!(
            saturated,
            Err(SimError::TransportFault {
                kind: FaultKind::Truncate,
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "expects a weighted input")]
    fn kind_mismatch_panics() {
        let input = generate_input(InputKind::Unweighted, "path", 4, 0, 0).unwrap();
        let _ = find("mst").unwrap().run(
            &input,
            &RunOptions {
                bandwidth: 8,
                ..RunOptions::default()
            },
        );
    }
}
