//! Algebraic protocols: the `O(n^{1/3})`-round distributed semiring matrix
//! product and its consumers.
//!
//! Section 2.1 of the paper treats matrix multiplication as *the* lever for
//! sub-trivial triangle detection; the follow-up line it opened —
//! Censor-Hillel et al., *Algebraic Methods in the Congested Clique*
//! (PODC 2015), and Le Gall, *Further Algebraic Algorithms in the Congested
//! Clique Model* (DISC 2016) — showed that the unicast clique supports a
//! genuinely *distributed* semiring matrix product in `O(n^{1/3}/b)` rounds
//! via 3D partitioning over Lenzen-style routing, with no circuit in sight.
//! This module implements that product and two workloads on top of it:
//!
//! * [`SemiringMatMul`] — the 3D-partitioned product. The `d³` scalar
//!   products of `C = A ⊗ B` are tiled into `g³ ≤ n` cubes (`g = ⌊n^{1/3}⌋`);
//!   cube node `(i, j, k)` receives block `A_{ik}` and block `B_{kj}` from
//!   the row owners through the [`BalancedRouter`], multiplies them locally,
//!   and routes the partial block `A_{ik} ⊗ B_{kj}` back to the owners of
//!   the rows of `C_{ij}`, who fold the `g` partials with the semiring
//!   addition. Every node sends and receives `O(d²/n^{2/3})` entries per
//!   phase, so for `d = n` and constant-width entries the product costs
//!   `O(n^{1/3}/b)` rounds — experiment E13 measures exactly this scaling.
//! * [`TriangleCount`] — *exact* triangle counting (not just detection):
//!   `M = A·A` over the counting semiring, then `trace(A³) = Σ_{v,j}
//!   M[v][j]·A[v][j]` is assembled from one fixed-width broadcast per node
//!   and divided by 6.
//! * [`ApspProtocol`] — all-pairs shortest paths on unweighted graphs by
//!   repeated `(min, +)` squaring of the weight matrix (`⌈log₂(n−1)⌉`
//!   distance products, with a one-bit-per-node early-exit vote after each
//!   squaring).
//!
//! Three semirings are supported (see [`Semiring`]): the Boolean semiring
//! `(∨, ∧)` over packed [`BitMatrix`] operands, and the counting `(+, ×)`
//! and tropical `(min, +)` semirings over small-integer [`IntMatrix`]
//! operands. Like the routers' packet framing, the wire width of an entry
//! is derived from public quantities (the dimension and the global entry
//! bounds of the operands), so both endpoints of every link agree on the
//! format without extra communication.
//!
//! The per-node local block products run through the
//! [`clique_sim::linalg`](crate::sim::linalg) kernels, whose dispatchers
//! split output rows across the [`clique_sim::par`](crate::sim::par)
//! worker pool from `PAR_MIN_ROWS` rows up; by the
//! parallelism-never-changes-transcripts invariant (DESIGN.md,
//! Concurrency) every round/bit count in this module — including the E13
//! pins — is identical at any worker count. Experiment E14 measures the
//! wall-clock side of these protocols on the pool.

use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

use clique_graphs::Graph;
use clique_routing::{BalancedRouter, Router, RoutingDemand};
use clique_sim::linalg::{saturating_counting_add, strassen_padded_dim};
use clique_sim::prelude::*;

/// The semiring a [`SemiringMatMul`] multiplies over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semiring {
    /// The Boolean semiring `(∨, ∧)` over 0/1 entries (packed
    /// [`BitMatrix`] operands).
    Boolean,
    /// The field `F₂ = (⊕, ∧)` over 0/1 entries (packed [`BitMatrix`]
    /// operands) — the ring the algebraic-methods line actually multiplies
    /// over (Shamir's reduction turns Boolean products into a few `F₂`
    /// products), and the natural home of the Strassen-partitioned
    /// [`FastMatMul`] schedule: subtraction *is* addition, so block
    /// combinations never widen an entry.
    F2,
    /// The counting semiring `(+, ×)` over small non-negative integers,
    /// saturating strictly below [`IntMatrix::INFINITY`].
    Counting,
    /// The tropical `(min, +)` semiring with [`IntMatrix::INFINITY`] as the
    /// additive identity ("no path").
    MinPlus,
}

impl Semiring {
    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Semiring::Boolean => "boolean",
            Semiring::F2 => "f2",
            Semiring::Counting => "counting",
            Semiring::MinPlus => "min-plus",
        }
    }

    /// Semiring addition, used to fold partial products.
    fn combine(&self, a: u64, b: u64) -> u64 {
        match self {
            Semiring::Boolean => a | b,
            Semiring::F2 => a ^ b,
            Semiring::Counting => saturating_counting_add(a, b),
            Semiring::MinPlus => a.min(b),
        }
    }
}

/// A square matrix in the representation its semiring multiplies fastest:
/// packed bits for the Boolean semiring, small integers for the counting
/// and `(min, +)` semirings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemiringMatrix {
    /// Packed 0/1 entries (Boolean semiring operands).
    Bits(BitMatrix),
    /// Small-integer entries (counting and `(min, +)` semiring operands).
    Ints(IntMatrix),
}

impl SemiringMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            SemiringMatrix::Bits(m) => m.rows(),
            SemiringMatrix::Ints(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            SemiringMatrix::Bits(m) => m.cols(),
            SemiringMatrix::Ints(m) => m.cols(),
        }
    }

    /// The entry at `(i, j)` widened to `u64` (0/1 for packed bits).
    pub fn entry(&self, i: usize, j: usize) -> u64 {
        match self {
            SemiringMatrix::Bits(m) => u64::from(m.get(i, j)),
            SemiringMatrix::Ints(m) => m.get(i, j),
        }
    }

    /// The inner [`IntMatrix`], if this is an integer matrix.
    pub fn as_ints(&self) -> Option<&IntMatrix> {
        match self {
            SemiringMatrix::Bits(_) => None,
            SemiringMatrix::Ints(m) => Some(m),
        }
    }

    /// The inner [`BitMatrix`], if this is a packed bit matrix.
    pub fn as_bits(&self) -> Option<&BitMatrix> {
        match self {
            SemiringMatrix::Bits(m) => Some(m),
            SemiringMatrix::Ints(_) => None,
        }
    }

    /// An accumulator of the given shape filled with the semiring's
    /// additive identity, in the semiring's representation.
    fn identity_filled(semiring: Semiring, rows: usize, cols: usize) -> SemiringMatrix {
        match semiring {
            Semiring::Boolean | Semiring::F2 => SemiringMatrix::Bits(BitMatrix::zeros(rows, cols)),
            Semiring::Counting => SemiringMatrix::Ints(IntMatrix::zeros(rows, cols)),
            Semiring::MinPlus => {
                SemiringMatrix::Ints(IntMatrix::filled(rows, cols, IntMatrix::INFINITY))
            }
        }
    }

    /// Overwrites the entry at `(i, j)`.
    fn set_entry(&mut self, i: usize, j: usize, value: u64) {
        match self {
            SemiringMatrix::Bits(m) => m.set(i, j, value != 0),
            SemiringMatrix::Ints(m) => m.set(i, j, value),
        }
    }

    /// Folds `value` into the entry at `(i, j)` with the semiring addition.
    fn combine_entry(&mut self, semiring: Semiring, i: usize, j: usize, value: u64) {
        let folded = semiring.combine(self.entry(i, j), value);
        self.set_entry(i, j, folded);
    }

    /// The local block product in the given semiring (the word-parallel
    /// kernel where one exists).
    fn product(&self, rhs: &SemiringMatrix, semiring: Semiring) -> SemiringMatrix {
        match (semiring, self, rhs) {
            (Semiring::Boolean, SemiringMatrix::Bits(a), SemiringMatrix::Bits(b)) => {
                SemiringMatrix::Bits(a.mul_bool(b))
            }
            (Semiring::F2, SemiringMatrix::Bits(a), SemiringMatrix::Bits(b)) => {
                SemiringMatrix::Bits(a.mul_f2(b))
            }
            (Semiring::Counting, SemiringMatrix::Ints(a), SemiringMatrix::Ints(b)) => {
                SemiringMatrix::Ints(a.mul_counting(b))
            }
            (Semiring::MinPlus, SemiringMatrix::Ints(a), SemiringMatrix::Ints(b)) => {
                SemiringMatrix::Ints(a.mul_min_plus(b))
            }
            _ => unreachable!("operand representation checked in SemiringMatMul::new"),
        }
    }

    /// The largest finite entry (0 if there is none).
    fn max_finite(&self) -> u64 {
        match self {
            SemiringMatrix::Bits(m) => u64::from(m.count_ones() > 0),
            SemiringMatrix::Ints(m) => m.max_finite(),
        }
    }

    /// Number of entries that are not the semiring's additive identity —
    /// the "nonzeros" a [`SparseMatMul`] actually communicates (finite
    /// entries under `(min, +)`, set bits or nonzero integers elsewhere).
    pub fn nnz(&self, semiring: Semiring) -> usize {
        match self {
            SemiringMatrix::Bits(m) => m.count_ones(),
            SemiringMatrix::Ints(m) => {
                let identity = match semiring {
                    Semiring::MinPlus => IntMatrix::INFINITY,
                    _ => 0,
                };
                (0..m.rows())
                    .map(|r| m.row(r).iter().filter(|&&v| v != identity).count())
                    .sum()
            }
        }
    }
}

/// The 3D tiling of a `d × d × d` product cube onto `n` players.
#[derive(Clone, Copy, Debug)]
struct Partition {
    n: usize,
    d: usize,
    /// Cube side: the largest `g` with `g³ ≤ n`, i.e. `g = Θ(n^{1/3})`.
    g: usize,
}

impl Partition {
    fn new(n: usize, d: usize) -> Self {
        let g = (1..=n).take_while(|&g| g * g * g <= n).last().unwrap_or(1);
        Self { n, d, g }
    }

    /// Index range `t`-th of the `g` row/column blocks (they tile `0..d`).
    fn block(&self, t: usize) -> Range<usize> {
        t * self.d / self.g..(t + 1) * self.d / self.g
    }

    /// The largest block length (the inner-dimension bound of a partial
    /// product).
    fn max_block_len(&self) -> usize {
        (0..self.g).map(|t| self.block(t).len()).max().unwrap_or(0)
    }

    /// The player holding row `r` of the inputs and of the output.
    fn row_owner(&self, r: usize) -> usize {
        r * self.n / self.d
    }

    /// The player computing cube `(i, j, k)`.
    fn cube_node(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.g + j) * self.g + k
    }
}

/// Fixed wire widths for matrix entries, derived from public quantities
/// (the dimension and the operands' global entry bounds) so both endpoints
/// agree on the framing — the same convention the routers' `PacketCodec`
/// uses. `(min, +)` encodes [`IntMatrix::INFINITY`] as the all-ones
/// pattern; the widths are chosen so no finite entry collides with it.
#[derive(Clone, Copy, Debug)]
struct EntryCodec {
    semiring: Semiring,
    /// Width of an input-matrix entry (phase 1).
    input_bits: usize,
    /// Width of a partial-product entry (phase 2).
    partial_bits: usize,
}

impl EntryCodec {
    fn new(
        semiring: Semiring,
        a: &SemiringMatrix,
        b: &SemiringMatrix,
        max_inner: usize,
    ) -> EntryCodec {
        let (ma, mb) = (a.max_finite(), b.max_finite());
        let (input_bits, partial_bits) = match semiring {
            Semiring::Boolean | Semiring::F2 => (1, 1),
            Semiring::Counting => {
                // Partial entries are sums of ≤ max_inner products.
                let partial_max = u128::from(ma)
                    .saturating_mul(u128::from(mb))
                    .saturating_mul(max_inner as u128)
                    .min(u128::from(IntMatrix::INFINITY - 1))
                    as u64;
                (
                    bits_for_universe(ma.max(mb).saturating_add(1)).max(1),
                    bits_for_universe(partial_max.saturating_add(1)).max(1),
                )
            }
            Semiring::MinPlus => {
                // One extra value above the finite range for the all-ones
                // INFINITY sentinel.
                (
                    bits_for_universe(ma.max(mb).saturating_add(2)).max(1),
                    bits_for_universe(ma.saturating_add(mb).saturating_add(2)).max(1),
                )
            }
        };
        EntryCodec {
            semiring,
            input_bits,
            partial_bits,
        }
    }

    fn all_ones(width: usize) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    fn encode(&self, value: u64, width: usize, out: &mut BitString) {
        let wire = if self.semiring == Semiring::MinPlus && value == IntMatrix::INFINITY {
            Self::all_ones(width)
        } else {
            // Finite values must fit the width; under (min, +) they must
            // additionally stay clear of the all-ones sentinel.
            debug_assert!(value <= Self::all_ones(width));
            debug_assert!(
                self.semiring != Semiring::MinPlus || value < Self::all_ones(width),
                "finite (min, +) value collides with the INFINITY sentinel"
            );
            value
        };
        out.push_bits(wire, width);
    }

    fn decode(&self, reader: &mut BitReader<'_>, width: usize) -> u64 {
        let raw = reader
            .read_bits(width)
            .expect("malformed semiring-matmul record");
        if self.semiring == Semiring::MinPlus && raw == Self::all_ones(width) {
            IntMatrix::INFINITY
        } else {
            raw
        }
    }

    fn encode_input(&self, value: u64, out: &mut BitString) {
        self.encode(value, self.input_bits, out);
    }

    fn decode_input(&self, reader: &mut BitReader<'_>) -> u64 {
        self.decode(reader, self.input_bits)
    }

    fn encode_partial(&self, value: u64, out: &mut BitString) {
        self.encode(value, self.partial_bits, out);
    }

    fn decode_partial(&self, reader: &mut BitReader<'_>) -> u64 {
        self.decode(reader, self.partial_bits)
    }
}

/// Per-destination readers over the packets one balanced-routing phase
/// delivered, keyed by source player.
fn readers_by_source<'a>(packets: &'a [clique_routing::Packet]) -> HashMap<usize, BitReader<'a>> {
    packets
        .iter()
        .map(|p| (p.src.index(), p.payload.reader()))
        .collect()
}

/// Chunk granularity (payload bits per routed packet) for the fast path.
///
/// The [`BalancedRouter`] spreads *distinct* packets of one `(src, dst)`
/// transfer across distinct intermediaries, but a single packet is atomic
/// on its two links — the round ledger charges `⌈max pair load / b⌉`, so a
/// monolithic payload concentrates its whole length on two links no matter
/// how balanced the demand is in aggregate. The fast path therefore splits
/// every logical payload into chunks of at most this many bits, letting
/// the greedy assignment flatten pair loads down to chunk granularity
/// while keeping the per-chunk framing (sequence tag plus the router's
/// node and length fields) a modest fraction of the payload.
const FAST_CHUNK_BITS: usize = 64;

/// Splits logical `(src, dst)` payloads into sequence-tagged chunks before
/// routing and reassembles them afterwards. Two-phase routing may deliver
/// a pair's chunks interleaved by intermediary, so each chunk carries its
/// sequence number; the tag width derives from a public bound on the
/// largest logical payload, so both endpoints agree on the framing without
/// extra communication (the [`EntryCodec`] convention).
struct Chunker {
    max_payload_bits: usize,
    seq_width: usize,
}

impl Chunker {
    fn new(max_payload_bits: usize) -> Chunker {
        let chunks = max_payload_bits.div_ceil(FAST_CHUNK_BITS).max(1);
        Chunker {
            max_payload_bits,
            seq_width: bits_for_universe(chunks as u64).max(1),
        }
    }

    /// Queues `payload` on the `(src, dst)` pair as tagged chunks (empty
    /// payloads send nothing).
    fn send(&self, demand: &mut RoutingDemand, src: usize, dst: usize, payload: &BitString) {
        debug_assert!(
            payload.len() <= self.max_payload_bits,
            "fast-matmul payload exceeds its public bound"
        );
        let mut reader = payload.reader();
        let mut remaining = payload.len();
        let mut seq = 0u64;
        while remaining > 0 {
            let take = remaining.min(FAST_CHUNK_BITS);
            let mut chunk = BitString::with_capacity(self.seq_width + take);
            chunk.push_bits(seq, self.seq_width);
            for _ in 0..take {
                chunk.push_bit(reader.read_bit().expect("chunk within payload"));
            }
            demand.send(src, dst, chunk);
            remaining -= take;
            seq += 1;
        }
    }

    /// Regroups one destination's delivered chunks into per-source logical
    /// payloads, restoring sender order from the sequence tags.
    fn merge(&self, packets: &[clique_routing::Packet]) -> HashMap<usize, BitString> {
        let mut by_src: HashMap<usize, Vec<(u64, &BitString)>> = HashMap::new();
        for p in packets {
            let mut reader = p.payload.reader();
            let seq = reader
                .read_bits(self.seq_width)
                .expect("malformed fast-matmul chunk tag");
            by_src
                .entry(p.src.index())
                .or_default()
                .push((seq, &p.payload));
        }
        by_src
            .into_iter()
            .map(|(src, mut chunks)| {
                chunks.sort_unstable_by_key(|&(seq, _)| seq);
                let mut merged = BitString::new();
                for (_, payload) in chunks {
                    let mut reader = payload.reader();
                    reader.read_bits(self.seq_width).expect("tag parsed above");
                    while !reader.is_exhausted() {
                        merged.push_bit(reader.read_bit().expect("chunk payload bit"));
                    }
                }
                (src, merged)
            })
            .collect()
    }
}

/// Per-source readers over one destination's reassembled logical payloads.
fn readers_by_merged(merged: &HashMap<usize, BitString>) -> HashMap<usize, BitReader<'_>> {
    merged
        .iter()
        .map(|(&src, payload)| (src, payload.reader()))
        .collect()
}

/// The `O(n^{1/3})`-round distributed semiring matrix product as a
/// [`Protocol`]: `C = A ⊗ B` for square `d × d` operands, 3D-partitioned
/// over the `n` players of the session and routed through the
/// [`BalancedRouter`].
///
/// Player `v` holds rows `r` with `row_owner(r) = v` of both inputs (for
/// `d = n` this is the standard "player `i` knows row `i`" input
/// convention) and ends up holding the same rows of the output; the
/// returned matrix is the assembled whole.
///
/// # Examples
///
/// ```
/// use clique_core::algebraic::{semiring_matmul, Semiring, SemiringMatrix};
/// use clique_core::sim::linalg::BitMatrix;
///
/// let a = SemiringMatrix::Bits(BitMatrix::identity(8));
/// let product = semiring_matmul(&a, &a, Semiring::Boolean, 4).unwrap();
/// assert_eq!(product.as_bits().unwrap(), &BitMatrix::identity(8));
/// ```
#[derive(Clone, Debug)]
pub struct SemiringMatMul<'a> {
    a: &'a SemiringMatrix,
    b: &'a SemiringMatrix,
    semiring: Semiring,
}

impl<'a> SemiringMatMul<'a> {
    /// Prepares the product `A ⊗ B`.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not square matrices of the same
    /// dimension, if their representation does not match the semiring
    /// (Boolean needs [`SemiringMatrix::Bits`], counting and `(min, +)`
    /// need [`SemiringMatrix::Ints`]), or if a counting operand contains
    /// the reserved [`IntMatrix::INFINITY`] entry.
    pub fn new(a: &'a SemiringMatrix, b: &'a SemiringMatrix, semiring: Semiring) -> Self {
        let d = a.rows();
        assert!(
            a.cols() == d && b.rows() == d && b.cols() == d,
            "operands must be square matrices of one dimension, got {}×{} and {}×{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        for (name, m) in [("A", a), ("B", b)] {
            match (semiring, m) {
                (Semiring::Boolean | Semiring::F2, SemiringMatrix::Bits(_))
                | (Semiring::Counting | Semiring::MinPlus, SemiringMatrix::Ints(_)) => {}
                _ => panic!(
                    "operand {name} representation does not match the {} semiring",
                    semiring.name()
                ),
            }
            if semiring == Semiring::Counting {
                if let Some(ints) = m.as_ints() {
                    assert!(
                        (0..ints.rows())
                            .all(|i| ints.row(i).iter().all(|&v| v != IntMatrix::INFINITY)),
                        "counting operand {name} contains the reserved INFINITY entry"
                    );
                }
            }
        }
        Self { a, b, semiring }
    }

    /// The semiring this product multiplies over.
    pub fn semiring(&self) -> Semiring {
        self.semiring
    }
}

impl Protocol for SemiringMatMul<'_> {
    type Output = SemiringMatrix;

    fn run(&mut self, session: &mut Session) -> Result<SemiringMatrix, SimError> {
        session.require_clique();
        let n = session.n();
        let d = self.a.rows();
        if d == 0 {
            return Ok(SemiringMatrix::identity_filled(self.semiring, 0, 0));
        }
        let part = Partition::new(n, d);
        let g = part.g;
        let codec = EntryCodec::new(self.semiring, self.a, self.b, part.max_block_len());

        // Phase 1: the row owners ship the input blocks to the cube nodes.
        // Cube node w = (i, j, k) needs A_{ik} (rows of block i, columns of
        // block k) and B_{kj}; each packet (v → w) carries v's rows of
        // A_{ik} then v's rows of B_{kj}, rows ascending, entries in column
        // order — a canonical layout both sides derive from (n, d, g) alone.
        let mut demand = RoutingDemand::new(n);
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let w = part.cube_node(i, j, k);
                    let mut payloads: BTreeMap<usize, BitString> = BTreeMap::new();
                    for (matrix, row_block, col_block) in [(self.a, i, k), (self.b, k, j)] {
                        for r in part.block(row_block) {
                            let v = part.row_owner(r);
                            if v == w {
                                continue; // own input rows need no routing
                            }
                            let buf = payloads.entry(v).or_default();
                            for c in part.block(col_block) {
                                codec.encode_input(matrix.entry(r, c), buf);
                            }
                        }
                    }
                    for (v, payload) in payloads {
                        if !payload.is_empty() {
                            demand.send(v, w, payload);
                        }
                    }
                }
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        // Local compute: every cube node reassembles its two blocks from
        // the delivered packets (plus its own rows) and multiplies them
        // with the semiring's local kernel.
        let mut partials: Vec<SemiringMatrix> = Vec::with_capacity(g * g * g);
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let w = part.cube_node(i, j, k);
                    let mut readers = readers_by_source(&delivered[w]);
                    let mut blocks: Vec<SemiringMatrix> = Vec::with_capacity(2);
                    for (matrix, row_block, col_block) in [(self.a, i, k), (self.b, k, j)] {
                        let (rows, cols) = (part.block(row_block), part.block(col_block));
                        let mut block =
                            SemiringMatrix::identity_filled(self.semiring, rows.len(), cols.len());
                        for (bi, r) in rows.clone().enumerate() {
                            let v = part.row_owner(r);
                            if v == w {
                                for (bj, c) in cols.clone().enumerate() {
                                    block.set_entry(bi, bj, matrix.entry(r, c));
                                }
                            } else if !cols.is_empty() {
                                // A zero-width segment was never sent (the
                                // sender skips empty payloads), so only
                                // look the reader up when there are entries
                                // to read.
                                let reader = readers
                                    .get_mut(&v)
                                    .expect("missing semiring-matmul input packet");
                                for bj in 0..cols.len() {
                                    block.set_entry(bi, bj, codec.decode_input(reader));
                                }
                            }
                        }
                        blocks.push(block);
                    }
                    let b_block = blocks.pop().expect("two blocks built");
                    let a_block = blocks.pop().expect("two blocks built");
                    partials.push(a_block.product(&b_block, self.semiring));
                }
            }
        }

        // Phase 2: each cube node routes its partial block to the output
        // row owners, who fold the g partials per entry with the semiring
        // addition.
        let mut output = SemiringMatrix::identity_filled(self.semiring, d, d);
        let mut demand = RoutingDemand::new(n);
        let mut partial_iter = partials.iter();
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let w = part.cube_node(i, j, k);
                    let partial = partial_iter.next().expect("one partial per cube");
                    let (rows, cols) = (part.block(i), part.block(j));
                    let mut payloads: BTreeMap<usize, BitString> = BTreeMap::new();
                    for (bi, r) in rows.clone().enumerate() {
                        let v = part.row_owner(r);
                        if v == w {
                            // The cube node owns these output rows itself.
                            for (bj, c) in cols.clone().enumerate() {
                                output.combine_entry(self.semiring, r, c, partial.entry(bi, bj));
                            }
                        } else {
                            let buf = payloads.entry(v).or_default();
                            for bj in 0..cols.len() {
                                codec.encode_partial(partial.entry(bi, bj), buf);
                            }
                        }
                    }
                    for (v, payload) in payloads {
                        if !payload.is_empty() {
                            demand.send(w, v, payload);
                        }
                    }
                }
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        // Fold the routed partials, walking cubes in the same canonical
        // order the senders used.
        for (v, packets) in delivered.iter().enumerate() {
            let mut readers = readers_by_source(packets);
            for i in 0..g {
                let owned: Vec<usize> = part.block(i).filter(|&r| part.row_owner(r) == v).collect();
                if owned.is_empty() {
                    continue;
                }
                for j in 0..g {
                    let cols = part.block(j);
                    if cols.is_empty() {
                        continue; // zero-width segments were never sent
                    }
                    for k in 0..g {
                        let w = part.cube_node(i, j, k);
                        if w == v {
                            continue; // folded locally above
                        }
                        let reader = readers
                            .get_mut(&w)
                            .expect("missing semiring-matmul partial packet");
                        for &r in &owned {
                            for c in cols.clone() {
                                let value = codec.decode_partial(reader);
                                output.combine_entry(self.semiring, r, c, value);
                            }
                        }
                    }
                }
            }
        }
        Ok(output)
    }
}

/// Runs [`SemiringMatMul`] on `CLIQUE-UCAST(d, b)` — one player per matrix
/// row, the canonical input distribution.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics on empty operands or any [`SemiringMatMul::new`] precondition
/// violation.
pub fn semiring_matmul(
    a: &SemiringMatrix,
    b: &SemiringMatrix,
    semiring: Semiring,
    bandwidth: usize,
) -> Result<RunOutcome<SemiringMatrix>, SimError> {
    let n = a.rows();
    assert!(n > 0, "the operands must have at least one row");
    Runner::new(CliqueConfig::unicast(n, bandwidth))
        .execute(&mut SemiringMatMul::new(a, b, semiring))
}

/// One leaf of the flattened depth-`L` Strassen recursion: the signed
/// combinations of base blocks (on the `2^L × 2^L` grid) forming its two
/// operands, and the signed output blocks its product feeds. Every
/// coefficient is `±1` — Strassen's identities never scale a block — so a
/// combined entry's magnitude is bounded by the term count, a public
/// quantity both wire endpoints derive from `L` alone.
#[derive(Clone, Debug)]
struct LeafCoeffs {
    /// `(block_row, block_col, sign)` terms of the A-side operand.
    a_terms: Vec<(usize, usize, i64)>,
    /// `(block_row, block_col, sign)` terms of the B-side operand.
    b_terms: Vec<(usize, usize, i64)>,
    /// `(block_row, block_col, sign)` output blocks the product feeds.
    c_terms: Vec<(usize, usize, i64)>,
}

/// Per-level Strassen rules: the quadrants (with signs) feeding each of the
/// 7 products' A and B operands, and the C quadrants each product feeds —
/// M1 = (A11+A22)(B11+B22), M2 = (A21+A22)B11, M3 = A11(B12−B22),
/// M4 = A22(B21−B11), M5 = (A11+A12)B22, M6 = (A21−A11)(B11+B12),
/// M7 = (A12−A22)(B21+B22); C11 = M1+M4−M5+M7, C12 = M3+M5, C21 = M2+M4,
/// C22 = M1−M2+M3+M6. The same identities drive the local
/// `BitMatrix::mul_f2_strassen` kernel and the lifted Strassen circuit, so
/// all three seams agree block for block.
type StrassenRule = (
    &'static [(usize, usize, i64)],
    &'static [(usize, usize, i64)],
    &'static [(usize, usize, i64)],
);
const STRASSEN_RULES: [StrassenRule; 7] = [
    (
        &[(0, 0, 1), (1, 1, 1)],
        &[(0, 0, 1), (1, 1, 1)],
        &[(0, 0, 1), (1, 1, 1)],
    ),
    (
        &[(1, 0, 1), (1, 1, 1)],
        &[(0, 0, 1)],
        &[(1, 0, 1), (1, 1, -1)],
    ),
    (
        &[(0, 0, 1)],
        &[(0, 1, 1), (1, 1, -1)],
        &[(0, 1, 1), (1, 1, 1)],
    ),
    (
        &[(1, 1, 1)],
        &[(1, 0, 1), (0, 0, -1)],
        &[(0, 0, 1), (1, 0, 1)],
    ),
    (
        &[(0, 0, 1), (0, 1, 1)],
        &[(1, 1, 1)],
        &[(0, 0, -1), (0, 1, 1)],
    ),
    (
        &[(1, 0, 1), (0, 0, -1)],
        &[(0, 0, 1), (0, 1, 1)],
        &[(1, 1, 1)],
    ),
    (
        &[(0, 1, 1), (1, 1, -1)],
        &[(1, 0, 1), (1, 1, 1)],
        &[(0, 0, 1)],
    ),
];

/// Expands the Strassen recursion to depth `levels` and returns the `7^L`
/// leaves' signed block combinations. Depth 0 is the trivial single leaf
/// (the whole product).
fn strassen_leaf_coeffs(levels: u32) -> Vec<LeafCoeffs> {
    let mut leaves = vec![LeafCoeffs {
        a_terms: vec![(0, 0, 1)],
        b_terms: vec![(0, 0, 1)],
        c_terms: vec![(0, 0, 1)],
    }];
    for _ in 0..levels {
        let mut next = Vec::with_capacity(leaves.len() * 7);
        for leaf in &leaves {
            for (rule_a, rule_b, rule_c) in STRASSEN_RULES {
                // A parent block (pi, pj) splits into quadrants at
                // (2·pi + qi, 2·pj + qj) on the refined grid; signs multiply.
                let expand = |parent: &[(usize, usize, i64)], rule: &[(usize, usize, i64)]| {
                    parent
                        .iter()
                        .flat_map(|&(pi, pj, ps)| {
                            rule.iter()
                                .map(move |&(qi, qj, qs)| (2 * pi + qi, 2 * pj + qj, ps * qs))
                        })
                        .collect()
                };
                next.push(LeafCoeffs {
                    a_terms: expand(&leaf.a_terms, rule_a),
                    b_terms: expand(&leaf.b_terms, rule_b),
                    c_terms: expand(&leaf.c_terms, rule_c),
                });
            }
        }
        leaves = next;
    }
    leaves
}

/// Signed offset wire encoding for the fast path's intermediate values: a
/// value in `[-bound, bound]` travels as `value + bound` in
/// `bits_for_universe(2·bound + 1)` bits. Both endpoints derive `bound`
/// from public quantities (the operands' entry bounds and the leaf's term
/// counts), mirroring the [`EntryCodec`] convention.
#[derive(Clone, Copy, Debug)]
struct SignedCodec {
    bound: i64,
    width: usize,
}

impl SignedCodec {
    fn new(bound: u64) -> SignedCodec {
        SignedCodec {
            bound: bound as i64,
            width: bits_for_universe(2 * bound + 1).max(1),
        }
    }

    fn encode(&self, value: i64, out: &mut BitString) {
        debug_assert!(
            value.abs() <= self.bound,
            "signed value exceeds its public bound"
        );
        out.push_bits((value + self.bound) as u64, self.width);
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> i64 {
        let raw = reader
            .read_bits(self.width)
            .expect("malformed fast-matmul record");
        raw as i64 - self.bound
    }
}

/// The per-leaf combined operands, in the representation the leaf's local
/// kernel multiplies: packed bits over `F₂` (block combination is XOR, so
/// entries stay one bit wide at every depth), two's-complement-wrapped
/// signed integers for counting.
enum LeafOperands {
    Bits(BitMatrix, BitMatrix),
    Ints(IntMatrix, IntMatrix),
}

/// A cube node's partial product of combined leaf blocks.
enum LeafPartial {
    Bits(BitMatrix),
    Ints(IntMatrix),
}

/// Whether a depth-`levels` counting-semiring Strassen schedule is exact:
/// the cubic comparison must not saturate (true entries `≤ ma·mb·d` stay
/// below [`IntMatrix::INFINITY`]) and every signed intermediate — combined
/// entries bounded by `2^L·m`, partials by `4^L·ma·mb·q`, fold sums by
/// `56^L·ma·mb·q` — must fit `i64` so wrapping arithmetic recovers the
/// exact integer product.
fn counting_headroom_ok(ma: u64, mb: u64, d: usize, levels: u32) -> bool {
    let q = strassen_padded_dim(d, levels) >> levels;
    let true_max = u128::from(ma) * u128::from(mb) * d as u128;
    let fold_max =
        56u128.pow(levels) * u128::from(ma.max(1)) * u128::from(mb.max(1)) * q.max(1) as u128;
    true_max <= u128::from(IntMatrix::INFINITY - 1) && fold_max < (1u128 << 62)
}

/// The Strassen-partitioned distributed matrix product of Censor-Hillel et
/// al. (*Algebraic Methods in the Congested Clique*) as a [`Protocol`]:
/// the depth-`L` Strassen recursion is flattened into `7^L` leaf products,
/// each handed to a disjoint group of `≈ n/7^L` players that runs the 3D
/// cubic partition on its quarter-sized (per level) blocks. Because each
/// recursion level multiplies the engaged node count by 7 while only
/// halving the block side, per-node load shrinks by `7/4` per level —
/// `O(n^{1-2/ω})` rounds in the limit against the cubic partition's
/// `O(n^{1/3})`.
///
/// Three balanced-routing phases:
///
/// 1. **Pre-combine** — the original row owners ship raw row segments of
///    every base block a leaf touches to the *leaf-row* owners, who fold
///    the signed block combinations (Strassen's `A11 + A22` etc.) locally.
/// 2. **Leaf products** — each group runs the cubic 3D exchange on its
///    combined `q × q` operands and multiplies locally (packed
///    [`BitMatrix::mul_f2`] over `F₂`, wrapping-exact
///    [`IntMatrix::mul_wrapping`] for counting).
/// 3. **Recombine** — signed partials route to the output row owners, who
///    fold each leaf's contribution into the output blocks its product
///    feeds.
///
/// Only *ring-embeddable* semirings are eligible: `F₂` is a field and
/// counting embeds in `ℤ` (saturation excluded by a public precondition).
/// The Boolean `(∨, ∧)` and tropical `(min, +)` semirings have no additive
/// inverse, so Strassen's subtractions do not exist there — those stay on
/// the cubic [`SemiringMatMul`] path, which the [`MatMulSchedule`]
/// dispatcher encodes explicitly.
///
/// # Examples
///
/// ```
/// use clique_core::algebraic::{fast_matmul, Semiring, SemiringMatrix};
/// use clique_core::sim::linalg::BitMatrix;
///
/// let a = SemiringMatrix::Bits(BitMatrix::identity(14));
/// let product = fast_matmul(&a, &a, Semiring::F2, 4).unwrap();
/// assert_eq!(product.as_bits().unwrap(), &BitMatrix::identity(14));
/// ```
#[derive(Clone, Debug)]
pub struct FastMatMul<'a> {
    a: &'a SemiringMatrix,
    b: &'a SemiringMatrix,
    semiring: Semiring,
    levels: Option<u32>,
}

impl<'a> FastMatMul<'a> {
    /// Prepares the Strassen-partitioned product `A ⊗ B`.
    ///
    /// # Panics
    ///
    /// Panics on any [`SemiringMatMul::new`] precondition violation, or if
    /// the semiring is not ring-embeddable ([`Semiring::F2`] or
    /// [`Semiring::Counting`]).
    pub fn new(a: &'a SemiringMatrix, b: &'a SemiringMatrix, semiring: Semiring) -> Self {
        assert!(
            matches!(semiring, Semiring::F2 | Semiring::Counting),
            "the strassen schedule needs a ring-embeddable semiring (f2 or counting); \
             {} stays on the cubic path",
            semiring.name()
        );
        // Shared operand validation (shape, representation, reserved
        // entries) lives in one place.
        let _ = SemiringMatMul::new(a, b, semiring);
        Self {
            a,
            b,
            semiring,
            levels: None,
        }
    }

    /// Forces the recursion depth instead of deriving it from `(n, d)` —
    /// a test and experiment seam. Depth `L` needs `7^L ≤ n` at run time.
    pub fn with_levels(mut self, levels: u32) -> Self {
        self.levels = Some(levels);
        self
    }

    /// The recursion depth the schedule picks for `n` players and
    /// dimension `d`: the largest `L ≤ 3` such that every one of the `7^L`
    /// groups keeps at least 8 players — enough to host a `2×2×2` cube in
    /// its internal 3D partition — and leaf blocks keep at least two rows.
    /// Splitting further would hand whole leaf products to single nodes,
    /// concentrating link load instead of spreading it (the very thing the
    /// schedule exists to avoid). Depth 0 means the clique is too small
    /// and the protocol falls back to the cubic partition in place.
    pub fn levels_for(n: usize, d: usize) -> u32 {
        let mut levels = 0;
        while levels < 3
            && n / 7usize.pow(levels + 1) >= 8
            && strassen_padded_dim(d, levels + 1) >> (levels + 1) >= 2
        {
            levels += 1;
        }
        levels
    }
}

impl Protocol for FastMatMul<'_> {
    type Output = SemiringMatrix;

    fn run(&mut self, session: &mut Session) -> Result<SemiringMatrix, SimError> {
        session.require_clique();
        let n = session.n();
        let d = self.a.rows();
        if d == 0 {
            return Ok(SemiringMatrix::identity_filled(self.semiring, 0, 0));
        }
        let levels = match self.levels {
            Some(levels) => {
                assert!(
                    levels == 0 || 7usize.pow(levels) <= n,
                    "a depth-{levels} strassen schedule needs 7^{levels} ≤ n = {n} players"
                );
                levels
            }
            None => Self::levels_for(n, d),
        };
        if levels == 0 {
            // Too few players for 7 disjoint groups: cubic fallback.
            return session.run_protocol(&mut SemiringMatMul::new(self.a, self.b, self.semiring));
        }

        let leaves = strassen_leaf_coeffs(levels);
        let p = strassen_padded_dim(d, levels);
        let q = p >> levels;
        let global = Partition::new(n, d);
        let group_start = |t: usize| t * n / leaves.len();
        let leaf_parts: Vec<Partition> = (0..leaves.len())
            .map(|t| Partition::new(group_start(t + 1) - group_start(t), q))
            .collect();
        let (ma, mb) = (self.a.max_finite(), self.b.max_finite());
        if self.semiring == Semiring::Counting {
            assert!(
                counting_headroom_ok(ma, mb, d, levels),
                "counting operands too large for a depth-{levels} strassen schedule \
                 (an intermediate or the cubic comparison would saturate)"
            );
        }
        // Raw input entries (phase 1) are unsigned originals; combined and
        // partial entries (phases 2–3) are signed with per-leaf public
        // bounds. Over F₂ every width is one bit.
        let raw_width = match self.semiring {
            Semiring::F2 => 1,
            _ => bits_for_universe(ma.max(mb).saturating_add(1)).max(1),
        };
        let wires: Vec<(SignedCodec, SignedCodec, SignedCodec)> = leaves
            .iter()
            .map(|leaf| {
                let ba = leaf.a_terms.len() as u64 * ma;
                let bb = leaf.b_terms.len() as u64 * mb;
                let bp = (u128::from(ba) * u128::from(bb) * q as u128) as u64;
                (
                    SignedCodec::new(ba),
                    SignedCodec::new(bb),
                    SignedCodec::new(bp),
                )
            })
            .collect();

        // Public per-pair payload bounds, which fix each phase's chunk
        // sequence width: what one sender can owe one receiver is capped by
        // the rows it owns, the widest term list, and the wire widths — all
        // public quantities.
        let global_rpo = d.div_ceil(n).max(1);
        let max_a_terms = leaves.iter().map(|l| l.a_terms.len()).max().unwrap_or(1);
        let max_b_terms = leaves.iter().map(|l| l.b_terms.len()).max().unwrap_or(1);
        let chunk1 = Chunker::new((max_a_terms + max_b_terms) * global_rpo * q * raw_width);
        let (mut bound2, mut bound3) = (0usize, 0usize);
        for (t, leaf) in leaves.iter().enumerate() {
            let lp = &leaf_parts[t];
            let bl = lp.max_block_len();
            let lp_rpo = lp.d.div_ceil(lp.n).max(1);
            let (w2, w3) = match self.semiring {
                Semiring::F2 => (1, 1),
                _ => (wires[t].0.width.max(wires[t].1.width), wires[t].2.width),
            };
            bound2 = bound2.max(2 * lp_rpo.min(bl) * bl * w2);
            bound3 = bound3.max(leaf.c_terms.len() * global_rpo.min(bl) * bl * w3);
        }
        let chunk2 = Chunker::new(bound2);
        let chunk3 = Chunker::new(bound3);

        // Phase 1 (pre-combine): original row owners → leaf-row owners.
        // Rows and columns at or beyond d are padding both endpoints skip
        // (p and the term lists are public).
        let mut demand = RoutingDemand::new(n);
        for (t, leaf) in leaves.iter().enumerate() {
            let (gs, lp) = (group_start(t), &leaf_parts[t]);
            let mut payloads: BTreeMap<(usize, usize), BitString> = BTreeMap::new();
            for (matrix, terms) in [(self.a, &leaf.a_terms), (self.b, &leaf.b_terms)] {
                for rl in 0..q {
                    let o = gs + lp.row_owner(rl);
                    for &(bi, bj, _) in terms {
                        let r = bi * q + rl;
                        if r >= d || bj * q >= d {
                            continue;
                        }
                        let v = global.row_owner(r);
                        if v == o {
                            continue;
                        }
                        let buf = payloads.entry((v, o)).or_default();
                        for c in bj * q..((bj + 1) * q).min(d) {
                            buf.push_bits(matrix.entry(r, c), raw_width);
                        }
                    }
                }
            }
            for ((v, o), payload) in payloads {
                chunk1.send(&mut demand, v, o, &payload);
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;
        let merged: Vec<HashMap<usize, BitString>> =
            delivered.iter().map(|p| chunk1.merge(p)).collect();

        // The leaf-row owners fold the signed combinations. Signed sums are
        // kept in i64 (wrapping-safe by the headroom precondition); over F₂
        // only the parity survives.
        let mut leaf_ops: Vec<LeafOperands> = Vec::with_capacity(leaves.len());
        for (t, leaf) in leaves.iter().enumerate() {
            let (gs, lp) = (group_start(t), &leaf_parts[t]);
            let mut readers: HashMap<usize, HashMap<usize, BitReader<'_>>> = (0..q)
                .map(|rl| gs + lp.row_owner(rl))
                .map(|o| (o, readers_by_merged(&merged[o])))
                .collect();
            let mut acc_a = vec![0i64; q * q];
            let mut acc_b = vec![0i64; q * q];
            for (matrix, terms, acc) in [
                (self.a, &leaf.a_terms, &mut acc_a),
                (self.b, &leaf.b_terms, &mut acc_b),
            ] {
                for rl in 0..q {
                    let o = gs + lp.row_owner(rl);
                    for &(bi, bj, sign) in terms {
                        let r = bi * q + rl;
                        if r >= d || bj * q >= d {
                            continue;
                        }
                        let v = global.row_owner(r);
                        for c in bj * q..((bj + 1) * q).min(d) {
                            let value = if v == o {
                                matrix.entry(r, c)
                            } else {
                                readers
                                    .get_mut(&o)
                                    .expect("owner readers built above")
                                    .get_mut(&v)
                                    .expect("missing fast-matmul input packet")
                                    .read_bits(raw_width)
                                    .expect("malformed fast-matmul input record")
                            };
                            acc[rl * q + (c - bj * q)] += sign * value as i64;
                        }
                    }
                }
            }
            leaf_ops.push(match self.semiring {
                Semiring::F2 => {
                    let to_bits = |acc: &[i64]| {
                        let mut m = BitMatrix::zeros(q, q);
                        for r in 0..q {
                            for c in 0..q {
                                m.set(r, c, acc[r * q + c] & 1 == 1);
                            }
                        }
                        m
                    };
                    LeafOperands::Bits(to_bits(&acc_a), to_bits(&acc_b))
                }
                _ => {
                    let to_ints = |acc: &[i64]| {
                        let mut m = IntMatrix::zeros(q, q);
                        for r in 0..q {
                            for c in 0..q {
                                m.set(r, c, acc[r * q + c] as u64);
                            }
                        }
                        m
                    };
                    LeafOperands::Ints(to_ints(&acc_a), to_ints(&acc_b))
                }
            });
        }

        // Phase 2 (leaf products): each group runs the cubic 3D exchange on
        // its combined operands — the same canonical layout SemiringMatMul
        // uses, offset into the group and with signed entry widths.
        let mut demand = RoutingDemand::new(n);
        for (t, _) in leaves.iter().enumerate() {
            let (gs, lp) = (group_start(t), &leaf_parts[t]);
            let (wire_a, wire_b, _) = &wires[t];
            for i in 0..lp.g {
                for j in 0..lp.g {
                    for k in 0..lp.g {
                        let w = gs + lp.cube_node(i, j, k);
                        let mut payloads: BTreeMap<usize, BitString> = BTreeMap::new();
                        for (side, row_block, col_block) in [(0, i, k), (1, k, j)] {
                            for r in lp.block(row_block) {
                                let v = gs + lp.row_owner(r);
                                if v == w {
                                    continue;
                                }
                                let buf = payloads.entry(v).or_default();
                                for c in lp.block(col_block) {
                                    match &leaf_ops[t] {
                                        LeafOperands::Bits(am, bm) => {
                                            let m = if side == 0 { am } else { bm };
                                            buf.push_bits(u64::from(m.get(r, c)), 1);
                                        }
                                        LeafOperands::Ints(am, bm) => {
                                            let (m, wire) = if side == 0 {
                                                (am, wire_a)
                                            } else {
                                                (bm, wire_b)
                                            };
                                            wire.encode(m.get(r, c) as i64, buf);
                                        }
                                    }
                                }
                            }
                        }
                        for (v, payload) in payloads {
                            chunk2.send(&mut demand, v, w, &payload);
                        }
                    }
                }
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;
        let merged: Vec<HashMap<usize, BitString>> =
            delivered.iter().map(|p| chunk2.merge(p)).collect();

        // Cube nodes reassemble their blocks and multiply with the packed
        // (F₂) or wrapping-exact (counting) leaf kernel.
        let mut partials: Vec<Vec<LeafPartial>> = Vec::with_capacity(leaves.len());
        for (t, _) in leaves.iter().enumerate() {
            let (gs, lp) = (group_start(t), &leaf_parts[t]);
            let (wire_a, wire_b, _) = &wires[t];
            let mut cubes = Vec::with_capacity(lp.g * lp.g * lp.g);
            for i in 0..lp.g {
                for j in 0..lp.g {
                    for k in 0..lp.g {
                        let w = gs + lp.cube_node(i, j, k);
                        let mut readers = readers_by_merged(&merged[w]);
                        let mut fill = |row_block: usize, col_block: usize, side: usize| {
                            let (rows, cols) = (lp.block(row_block), lp.block(col_block));
                            let mut bits = BitMatrix::zeros(rows.len(), cols.len());
                            let mut ints = IntMatrix::zeros(rows.len(), cols.len());
                            for (br, r) in rows.clone().enumerate() {
                                let v = gs + lp.row_owner(r);
                                for (bc, c) in cols.clone().enumerate() {
                                    match (&leaf_ops[t], v == w) {
                                        (LeafOperands::Bits(am, bm), true) => {
                                            let m = if side == 0 { am } else { bm };
                                            bits.set(br, bc, m.get(r, c));
                                        }
                                        (LeafOperands::Ints(am, bm), true) => {
                                            let m = if side == 0 { am } else { bm };
                                            ints.set(br, bc, m.get(r, c));
                                        }
                                        (LeafOperands::Bits(..), false) => {
                                            let reader = readers
                                                .get_mut(&v)
                                                .expect("missing fast-matmul block packet");
                                            let bit = reader
                                                .read_bits(1)
                                                .expect("malformed fast-matmul block record");
                                            bits.set(br, bc, bit == 1);
                                        }
                                        (LeafOperands::Ints(..), false) => {
                                            let wire = if side == 0 { wire_a } else { wire_b };
                                            let reader = readers
                                                .get_mut(&v)
                                                .expect("missing fast-matmul block packet");
                                            ints.set(br, bc, wire.decode(reader) as u64);
                                        }
                                    }
                                }
                            }
                            (bits, ints)
                        };
                        let (a_bits, a_ints) = fill(i, k, 0);
                        let (b_bits, b_ints) = fill(k, j, 1);
                        cubes.push(match self.semiring {
                            Semiring::F2 => LeafPartial::Bits(a_bits.mul_f2(&b_bits)),
                            _ => LeafPartial::Ints(a_ints.mul_wrapping(&b_ints)),
                        });
                    }
                }
            }
            partials.push(cubes);
        }

        // Phase 3 (recombine): signed partials → output row owners. Each
        // cube's partial feeds every output block in its leaf's c_terms;
        // the receivers fold contributions in the same canonical
        // (leaf, cube, term, row, column) order the senders used. The i64
        // (counting) and XOR (F₂) folds are order-independent, unlike the
        // cubic path's saturating fold — exactness is the precondition.
        let mut acc_out = vec![0i64; d * d];
        let mut bits_out = BitMatrix::zeros(d, d);
        let fold = |semiring: Semiring,
                    acc_out: &mut Vec<i64>,
                    bits_out: &mut BitMatrix,
                    r: usize,
                    c: usize,
                    sign: i64,
                    value: i64| {
            match semiring {
                Semiring::F2 => {
                    if value & 1 == 1 {
                        let cur = bits_out.get(r, c);
                        bits_out.set(r, c, !cur);
                    }
                }
                _ => acc_out[r * d + c] += sign * value,
            }
        };
        let mut demand = RoutingDemand::new(n);
        for (t, leaf) in leaves.iter().enumerate() {
            let (gs, lp) = (group_start(t), &leaf_parts[t]);
            let (_, _, wire_p) = &wires[t];
            let mut cube_iter = partials[t].iter();
            for i in 0..lp.g {
                for j in 0..lp.g {
                    for k in 0..lp.g {
                        let w = gs + lp.cube_node(i, j, k);
                        let partial = cube_iter.next().expect("one partial per cube");
                        let mut payloads: BTreeMap<usize, BitString> = BTreeMap::new();
                        for &(ci, cj, sign) in &leaf.c_terms {
                            if cj * q >= d {
                                continue;
                            }
                            for (pi, rl) in lp.block(i).enumerate() {
                                let out_r = ci * q + rl;
                                if out_r >= d {
                                    continue;
                                }
                                let v = global.row_owner(out_r);
                                for (pj, cl) in lp.block(j).enumerate() {
                                    let out_c = cj * q + cl;
                                    if out_c >= d {
                                        continue;
                                    }
                                    let value = match partial {
                                        LeafPartial::Bits(m) => i64::from(m.get(pi, pj)),
                                        LeafPartial::Ints(m) => m.get(pi, pj) as i64,
                                    };
                                    if v == w {
                                        fold(
                                            self.semiring,
                                            &mut acc_out,
                                            &mut bits_out,
                                            out_r,
                                            out_c,
                                            sign,
                                            value,
                                        );
                                    } else {
                                        let buf = payloads.entry(v).or_default();
                                        match self.semiring {
                                            Semiring::F2 => buf.push_bits(value as u64, 1),
                                            _ => wire_p.encode(value, buf),
                                        }
                                    }
                                }
                            }
                        }
                        for (v, payload) in payloads {
                            chunk3.send(&mut demand, w, v, &payload);
                        }
                    }
                }
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;
        let merged: Vec<HashMap<usize, BitString>> =
            delivered.iter().map(|p| chunk3.merge(p)).collect();

        for (v, merged_sources) in merged.iter().enumerate() {
            let mut readers = readers_by_merged(merged_sources);
            for (t, leaf) in leaves.iter().enumerate() {
                let (gs, lp) = (group_start(t), &leaf_parts[t]);
                let (_, _, wire_p) = &wires[t];
                for i in 0..lp.g {
                    for j in 0..lp.g {
                        for k in 0..lp.g {
                            let w = gs + lp.cube_node(i, j, k);
                            if w == v {
                                continue; // folded locally above
                            }
                            for &(ci, cj, sign) in &leaf.c_terms {
                                if cj * q >= d {
                                    continue;
                                }
                                for rl in lp.block(i) {
                                    let out_r = ci * q + rl;
                                    if out_r >= d || global.row_owner(out_r) != v {
                                        continue;
                                    }
                                    for cl in lp.block(j) {
                                        let out_c = cj * q + cl;
                                        if out_c >= d {
                                            continue;
                                        }
                                        let reader = readers
                                            .get_mut(&w)
                                            .expect("missing fast-matmul partial packet");
                                        let value = match self.semiring {
                                            Semiring::F2 => reader
                                                .read_bits(1)
                                                .expect("malformed fast-matmul partial record")
                                                as i64,
                                            _ => wire_p.decode(reader),
                                        };
                                        fold(
                                            self.semiring,
                                            &mut acc_out,
                                            &mut bits_out,
                                            out_r,
                                            out_c,
                                            sign,
                                            value,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok(match self.semiring {
            Semiring::F2 => SemiringMatrix::Bits(bits_out),
            _ => {
                let mut out = IntMatrix::zeros(d, d);
                for r in 0..d {
                    for c in 0..d {
                        let value = acc_out[r * d + c];
                        debug_assert!(value >= 0, "the signed fold recovers the exact product");
                        out.set(r, c, value as u64);
                    }
                }
                SemiringMatrix::Ints(out)
            }
        })
    }
}

/// Runs [`FastMatMul`] on `CLIQUE-UCAST(d, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics on empty operands or any [`FastMatMul::new`] precondition
/// violation.
pub fn fast_matmul(
    a: &SemiringMatrix,
    b: &SemiringMatrix,
    semiring: Semiring,
    bandwidth: usize,
) -> Result<RunOutcome<SemiringMatrix>, SimError> {
    let n = a.rows();
    assert!(n > 0, "the operands must have at least one row");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut FastMatMul::new(a, b, semiring))
}

/// Surviving sparse partials grouped per `(dst owner, output row)`:
/// `(row, col, value)` records awaiting the receiver-side fold.
type SparseRecords = BTreeMap<(usize, usize), Vec<(usize, usize, u64)>>;

/// The sparsity-aware distributed product (Le Gall, *Further Algebraic
/// Algorithms in the Congested Clique Model*) as a [`Protocol`]: only
/// entries that differ from the semiring's additive identity travel, so
/// the round count is charged off the actual `nnz` instead of `d²`.
///
/// The work is partitioned by *inner index*: the owner of inner index `k`
/// (the same `row_owner` map every path uses, so row `k` of `B` is already
/// in place and only `A`'s column nonzeros route) computes all products
/// `A[r][k] ⊗ B[k][c]`, folds them per output entry locally, and routes
/// the surviving partials to the output row owners. Because payloads are
/// data-dependent, records carry explicit count prefixes and index fields
/// (widths derived from public row counts, like the routers' packet
/// framing) — the fixed-width, data-oblivious layouts of the dense paths
/// do not apply.
///
/// Valid over **all four** semirings: unlike Strassen's subtractions, the
/// sparse path only reorders the same semiring additions the cubic path
/// performs (the folds are associative and commutative, saturation
/// included), so the result is identical entry for entry.
///
/// # Examples
///
/// ```
/// use clique_core::algebraic::{sparse_matmul, Semiring, SemiringMatrix};
/// use clique_core::sim::linalg::BitMatrix;
///
/// let a = SemiringMatrix::Bits(BitMatrix::identity(9));
/// let product = sparse_matmul(&a, &a, Semiring::Boolean, 4).unwrap();
/// assert_eq!(product.as_bits().unwrap(), &BitMatrix::identity(9));
/// ```
#[derive(Clone, Debug)]
pub struct SparseMatMul<'a> {
    a: &'a SemiringMatrix,
    b: &'a SemiringMatrix,
    semiring: Semiring,
}

impl<'a> SparseMatMul<'a> {
    /// Prepares the sparse product `A ⊗ B`.
    ///
    /// # Panics
    ///
    /// Panics on any [`SemiringMatMul::new`] precondition violation.
    pub fn new(a: &'a SemiringMatrix, b: &'a SemiringMatrix, semiring: Semiring) -> Self {
        let _ = SemiringMatMul::new(a, b, semiring);
        Self { a, b, semiring }
    }

    /// The additive identity ("zero") entries of this semiring never
    /// communicated by the sparse path.
    fn identity(semiring: Semiring) -> u64 {
        match semiring {
            Semiring::MinPlus => IntMatrix::INFINITY,
            _ => 0,
        }
    }

    /// The semiring product of two non-identity entries, matching the
    /// dense kernels' clamping exactly.
    fn multiply(semiring: Semiring, a: u64, b: u64) -> u64 {
        match semiring {
            Semiring::Boolean | Semiring::F2 => 1,
            Semiring::Counting => a.saturating_mul(b),
            Semiring::MinPlus => saturating_counting_add(a, b),
        }
    }
}

impl Protocol for SparseMatMul<'_> {
    type Output = SemiringMatrix;

    fn run(&mut self, session: &mut Session) -> Result<SemiringMatrix, SimError> {
        session.require_clique();
        let n = session.n();
        let d = self.a.rows();
        if d == 0 {
            return Ok(SemiringMatrix::identity_filled(self.semiring, 0, 0));
        }
        let part = Partition::new(n, d);
        let identity = Self::identity(self.semiring);
        let codec = EntryCodec::new(self.semiring, self.a, self.b, d);
        // Rows owned per player form a contiguous range (row_owner is a
        // monotone floor map), so local row indices are offsets from the
        // first owned row — all widths below are public.
        let owned: Vec<Range<usize>> = (0..n)
            .map(|v| {
                let first = (0..d).find(|&r| part.row_owner(r) == v).unwrap_or(d);
                let last = (first..d).take_while(|&r| part.row_owner(r) == v).last();
                first..last.map_or(first, |r| r + 1)
            })
            .collect();
        let idx_width = |len: usize| bits_for_universe(len as u64).max(1);
        let count_width = |bound: u64| bits_for_universe(bound.saturating_add(1)).max(1);

        // Phase 1: route A's column nonzeros to the inner-index owners
        // (B's rows are already in place). Records: (k offset among the
        // receiver's indices, r offset among the sender's rows, value).
        let mut demand = RoutingDemand::new(n);
        let mut records: SparseRecords = BTreeMap::new();
        for k in 0..d {
            let w = part.row_owner(k);
            for r in 0..d {
                let v = part.row_owner(r);
                if v == w {
                    continue; // the owner already holds its rows of A
                }
                let value = self.a.entry(r, k);
                if value != identity {
                    records.entry((v, w)).or_default().push((
                        k - owned[w].start,
                        r - owned[v].start,
                        value,
                    ));
                }
            }
        }
        for ((v, w), entries) in records {
            let mut payload = BitString::new();
            let bound = (owned[v].len() * owned[w].len()) as u64;
            payload.push_bits(entries.len() as u64, count_width(bound));
            for (kl, rl, value) in entries {
                payload.push_bits(kl as u64, idx_width(owned[w].len()));
                payload.push_bits(rl as u64, idx_width(owned[v].len()));
                codec.encode_input(value, &mut payload);
            }
            demand.send(v, w, payload);
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        // Local compute at each inner-index owner: assemble the nonzero
        // columns of A, cross them with the owned nonzero rows of B, and
        // fold per output entry. Folding here and at the output owners
        // reorders the cubic path's identical semiring additions, which are
        // associative and commutative (saturation included) — so the
        // result matches the dense product exactly.
        let mut folded: Vec<BTreeMap<(usize, usize), u64>> = Vec::with_capacity(n);
        for w in 0..n {
            let mut columns: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
            for k in owned[w].clone() {
                for r in owned[w].clone() {
                    let value = self.a.entry(r, k);
                    if value != identity {
                        columns.entry(k).or_default().push((r, value));
                    }
                }
            }
            let mut readers = readers_by_source(&delivered[w]);
            for v in 0..n {
                let Some(reader) = readers.get_mut(&v) else {
                    continue; // no nonzeros from v (empty payloads unsent)
                };
                let bound = (owned[v].len() * owned[w].len()) as u64;
                let count = reader
                    .read_bits(count_width(bound))
                    .expect("malformed sparse-matmul count");
                for _ in 0..count {
                    let kl = reader
                        .read_bits(idx_width(owned[w].len()))
                        .expect("malformed sparse-matmul record")
                        as usize;
                    let rl = reader
                        .read_bits(idx_width(owned[v].len()))
                        .expect("malformed sparse-matmul record")
                        as usize;
                    let value = codec.decode_input(reader);
                    columns
                        .entry(owned[w].start + kl)
                        .or_default()
                        .push((owned[v].start + rl, value));
                }
            }
            let mut partials: BTreeMap<(usize, usize), u64> = BTreeMap::new();
            for (k, col) in columns {
                for c in 0..d {
                    let b_value = self.b.entry(k, c);
                    if b_value == identity {
                        continue;
                    }
                    for &(r, a_value) in &col {
                        let product = Self::multiply(self.semiring, a_value, b_value);
                        let slot = partials.entry((r, c)).or_insert(identity);
                        *slot = self.semiring.combine(*slot, product);
                    }
                }
            }
            folded.push(partials);
        }

        // Phase 2: surviving partials route to the output row owners.
        // Records: (r offset among the receiver's rows, column, value).
        let mut output = SemiringMatrix::identity_filled(self.semiring, d, d);
        let mut demand = RoutingDemand::new(n);
        for (w, partials) in folded.iter().enumerate() {
            let mut records: BTreeMap<usize, Vec<(usize, usize, u64)>> = BTreeMap::new();
            for (&(r, c), &value) in partials {
                if value == identity {
                    continue; // e.g. an even F₂ parity folded away
                }
                let v = part.row_owner(r);
                if v == w {
                    output.combine_entry(self.semiring, r, c, value);
                } else {
                    records
                        .entry(v)
                        .or_default()
                        .push((r - owned[v].start, c, value));
                }
            }
            for (v, entries) in records {
                let mut payload = BitString::new();
                let bound = (owned[v].len() * d) as u64;
                payload.push_bits(entries.len() as u64, count_width(bound));
                for (rl, c, value) in entries {
                    payload.push_bits(rl as u64, idx_width(owned[v].len()));
                    payload.push_bits(c as u64, idx_width(d));
                    codec.encode_partial(value, &mut payload);
                }
                demand.send(w, v, payload);
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        for (v, packets) in delivered.iter().enumerate() {
            let mut readers = readers_by_source(packets);
            for w in 0..n {
                let Some(reader) = readers.get_mut(&w) else {
                    continue;
                };
                let bound = (owned[v].len() * d) as u64;
                let count = reader
                    .read_bits(count_width(bound))
                    .expect("malformed sparse-matmul count");
                for _ in 0..count {
                    let rl = reader
                        .read_bits(idx_width(owned[v].len()))
                        .expect("malformed sparse-matmul record")
                        as usize;
                    let c = reader
                        .read_bits(idx_width(d))
                        .expect("malformed sparse-matmul record")
                        as usize;
                    let value = codec.decode_partial(reader);
                    output.combine_entry(self.semiring, owned[v].start + rl, c, value);
                }
            }
        }
        Ok(output)
    }
}

/// Runs [`SparseMatMul`] on `CLIQUE-UCAST(d, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics on empty operands or any [`SparseMatMul::new`] precondition
/// violation.
pub fn sparse_matmul(
    a: &SemiringMatrix,
    b: &SemiringMatrix,
    semiring: Semiring,
    bandwidth: usize,
) -> Result<RunOutcome<SemiringMatrix>, SimError> {
    let n = a.rows();
    assert!(n > 0, "the operands must have at least one row");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut SparseMatMul::new(a, b, semiring))
}

/// Auto dispatch sends a product to [`SparseMatMul`] when at most this
/// many eighths of the operands' entries are non-identity — below that the
/// nnz-charged phases beat the dense `d²`-charged ones at every measured
/// grid point (experiment E18).
pub const SPARSE_DENSITY_EIGHTHS: usize = 1;

/// Auto dispatch engages the Strassen schedule from this player count up —
/// the smallest clique whose seven depth-1 groups each keep the 8 players
/// a `2×2×2` internal cube needs (see [`FastMatMul::levels_for`]).
pub const STRASSEN_MIN_PLAYERS: usize = 56;

/// Auto dispatch engages the Strassen schedule only when `d ≥ aspect · n`:
/// with one row per player (`d = n`) the cubic partition's per-pair loads
/// are already a handful of bits and the fast path's three routed phases
/// plus chunk framing cost more than they save; from two rows per player
/// up, every measured grid point has the fast schedule strictly ahead on
/// rounds (experiment E18 pins the crossover).
pub const STRASSEN_MIN_ASPECT: usize = 2;

/// Which distributed product a consumer runs: the cubic 3D partition, the
/// Strassen-partitioned fast schedule, the nnz-charged sparse path, or an
/// automatic choice from `(semiring, n, d, density)`.
///
/// The dispatch rules are explicit (DESIGN.md "Fast algebraic matmul"):
/// `Auto` resolves to `Sparse` when the operands' density is at most
/// [`SPARSE_DENSITY_EIGHTHS`]/8; otherwise to `Strassen` when the semiring
/// is ring-embeddable (`F₂` or counting, with integer headroom), the
/// clique hosts at least one recursion level (`n` at or above
/// [`STRASSEN_MIN_PLAYERS`]), and the dimension gives every player at
/// least [`STRASSEN_MIN_ASPECT`] rows; otherwise — including **always**
/// for the Boolean and tropical `(min, +)` semirings, which have no
/// additive inverse for Strassen's subtractions — to `Cubic`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatMulSchedule {
    /// Always the cubic 3D-partitioned [`SemiringMatMul`].
    #[default]
    Cubic,
    /// Always the Strassen-partitioned [`FastMatMul`] (panics on
    /// semirings without additive inverses; use `Auto` for dispatch).
    Strassen,
    /// Always the nnz-charged [`SparseMatMul`].
    Sparse,
    /// Pick the cheapest eligible schedule from `(semiring, n, d, density)`.
    Auto,
}

impl MatMulSchedule {
    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MatMulSchedule::Cubic => "cubic",
            MatMulSchedule::Strassen => "strassen",
            MatMulSchedule::Sparse => "sparse",
            MatMulSchedule::Auto => "auto",
        }
    }

    /// The concrete schedule this dispatch runs for the given product —
    /// `Auto` applies the rules above; the explicit variants return
    /// themselves. Deterministic in public quantities plus the operand
    /// nnz, so every player resolves identically.
    pub fn resolve(
        self,
        a: &SemiringMatrix,
        b: &SemiringMatrix,
        semiring: Semiring,
        n: usize,
    ) -> MatMulSchedule {
        match self {
            MatMulSchedule::Auto => {
                let d = a.rows();
                let total = 2 * d * d;
                let nnz = a.nnz(semiring) + b.nnz(semiring);
                if total > 0 && nnz * 8 <= total * SPARSE_DENSITY_EIGHTHS {
                    MatMulSchedule::Sparse
                } else if matches!(semiring, Semiring::F2 | Semiring::Counting)
                    && n >= STRASSEN_MIN_PLAYERS
                    && d >= STRASSEN_MIN_ASPECT * n
                    && FastMatMul::levels_for(n, d) >= 1
                    && (semiring != Semiring::Counting
                        || counting_headroom_ok(
                            a.max_finite(),
                            b.max_finite(),
                            d,
                            FastMatMul::levels_for(n, d),
                        ))
                {
                    MatMulSchedule::Strassen
                } else {
                    MatMulSchedule::Cubic
                }
            }
            explicit => explicit,
        }
    }
}

/// A [`Protocol`] that resolves a [`MatMulSchedule`] and runs the chosen
/// distributed product in place — the single seam through which
/// [`TriangleCount`] and [`ApspProtocol`] pick their matmul path.
#[derive(Clone, Debug)]
pub struct ScheduledMatMul<'a> {
    a: &'a SemiringMatrix,
    b: &'a SemiringMatrix,
    semiring: Semiring,
    schedule: MatMulSchedule,
}

impl<'a> ScheduledMatMul<'a> {
    /// Prepares the product `A ⊗ B` under the given schedule.
    ///
    /// # Panics
    ///
    /// Panics on any [`SemiringMatMul::new`] precondition violation (an
    /// explicit `Strassen` schedule additionally needs a ring-embeddable
    /// semiring, checked at run time).
    pub fn new(
        a: &'a SemiringMatrix,
        b: &'a SemiringMatrix,
        semiring: Semiring,
        schedule: MatMulSchedule,
    ) -> Self {
        let _ = SemiringMatMul::new(a, b, semiring);
        Self {
            a,
            b,
            semiring,
            schedule,
        }
    }
}

impl Protocol for ScheduledMatMul<'_> {
    type Output = SemiringMatrix;

    fn run(&mut self, session: &mut Session) -> Result<SemiringMatrix, SimError> {
        match self
            .schedule
            .resolve(self.a, self.b, self.semiring, session.n())
        {
            MatMulSchedule::Cubic => {
                session.run_protocol(&mut SemiringMatMul::new(self.a, self.b, self.semiring))
            }
            MatMulSchedule::Strassen => {
                session.run_protocol(&mut FastMatMul::new(self.a, self.b, self.semiring))
            }
            MatMulSchedule::Sparse => {
                session.run_protocol(&mut SparseMatMul::new(self.a, self.b, self.semiring))
            }
            MatMulSchedule::Auto => unreachable!("resolve returns a concrete schedule"),
        }
    }
}

/// Runs [`ScheduledMatMul`] on `CLIQUE-UCAST(d, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics on empty operands or any schedule precondition violation.
pub fn scheduled_matmul(
    a: &SemiringMatrix,
    b: &SemiringMatrix,
    semiring: Semiring,
    schedule: MatMulSchedule,
    bandwidth: usize,
) -> Result<RunOutcome<SemiringMatrix>, SimError> {
    let n = a.rows();
    assert!(n > 0, "the operands must have at least one row");
    Runner::new(CliqueConfig::unicast(n, bandwidth))
        .execute(&mut ScheduledMatMul::new(a, b, semiring, schedule))
}

/// Exact triangle counting as a [`Protocol`]: `trace(A³)/6` through one
/// counting-semiring [`SemiringMatMul`] plus one fixed-width broadcast per
/// player.
///
/// Player `v` folds its rows of `M = A·A` against its own adjacency row
/// (`t_v = Σ_j M[v][j]·A[v][j]`, the closed 3-walks through `v`) and
/// broadcasts `t_v`; the sum over all players is `trace(A³) = 6·#triangles`.
#[derive(Clone, Debug)]
pub struct TriangleCount<'a> {
    graph: &'a Graph,
    schedule: MatMulSchedule,
}

impl<'a> TriangleCount<'a> {
    /// Prepares the protocol for the given input graph on the default
    /// cubic matmul schedule.
    pub fn new(graph: &'a Graph) -> Self {
        Self::with_schedule(graph, MatMulSchedule::Cubic)
    }

    /// Prepares the protocol with an explicit [`MatMulSchedule`] for the
    /// inner counting product (`Auto` picks from the adjacency density).
    pub fn with_schedule(graph: &'a Graph, schedule: MatMulSchedule) -> Self {
        Self { graph, schedule }
    }
}

impl Protocol for TriangleCount<'_> {
    type Output = u64;

    fn run(&mut self, session: &mut Session) -> Result<u64, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        let adjacency = IntMatrix::from_bitmatrix(&self.graph.adjacency_bitmatrix());
        let operand = SemiringMatrix::Ints(adjacency.clone());
        let product = session.run_protocol(&mut ScheduledMatMul::new(
            &operand,
            &operand,
            Semiring::Counting,
            self.schedule,
        ))?;
        let m = product.as_ints().expect("counting products are integers");

        // Player v's closed-3-walk count t_v ≤ n² fits in the fixed width
        // every player derives from n.
        let width = bits_for_universe((n as u64).saturating_mul(n as u64).saturating_add(1)).max(1);
        let part = Partition::new(n, n);
        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        let mut locals = vec![0u64; n];
        for r in 0..n {
            let v = part.row_owner(r);
            let walks: u64 = m
                .row(r)
                .iter()
                .zip(adjacency.row(r))
                .map(|(&paths, &edge)| paths * edge)
                .sum();
            locals[v] += walks;
        }
        for (v, out) in outs.iter_mut().enumerate() {
            out.broadcast(BitString::from_bits(locals[v], width));
        }
        let inboxes = session.exchange("announce closed-walk counts", outs)?;

        // Everyone sums the announced counts; trace(A³) = 6·#triangles.
        let mut total = locals[0];
        for (src, payload) in inboxes[0].broadcasts() {
            if src.index() != 0 {
                total += payload.reader().read_bits(width).expect("count announced");
            }
        }
        Ok(total / 6)
    }
}

/// Runs [`TriangleCount`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn count_triangles(graph: &Graph, bandwidth: usize) -> Result<RunOutcome<u64>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut TriangleCount::new(graph))
}

/// Runs [`TriangleCount`] in `CLIQUE-UCAST(n, b)` with an explicit matmul
/// schedule for the inner counting product.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty or a forced schedule's preconditions fail.
pub fn count_triangles_scheduled(
    graph: &Graph,
    bandwidth: usize,
    schedule: MatMulSchedule,
) -> Result<RunOutcome<u64>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth))
        .execute(&mut TriangleCount::with_schedule(graph, schedule))
}

/// All-pairs shortest paths on an unweighted graph as a [`Protocol`]:
/// repeated `(min, +)` squaring of the hop matrix (0 on the diagonal, 1 on
/// edges, [`IntMatrix::INFINITY`] elsewhere) through [`SemiringMatMul`].
///
/// After `t` squarings the matrix holds exact distances up to `2^t`, so
/// `⌈log₂(n−1)⌉` distance products always suffice; a one-bit per-player
/// "my rows changed" vote after each squaring stops earlier on
/// small-diameter graphs. The output distance matrix has
/// [`IntMatrix::INFINITY`] for disconnected pairs.
#[derive(Clone, Debug)]
pub struct ApspProtocol<'a> {
    graph: &'a Graph,
    schedule: MatMulSchedule,
}

impl<'a> ApspProtocol<'a> {
    /// Prepares the protocol for the given input graph on the default
    /// cubic matmul schedule.
    pub fn new(graph: &'a Graph) -> Self {
        Self::with_schedule(graph, MatMulSchedule::Cubic)
    }

    /// Prepares the protocol with an explicit [`MatMulSchedule`]. `(min, +)`
    /// has no Strassen analogue, so `Auto` only ever picks between the
    /// sparse path (hop matrices of sparse graphs start mostly-INFINITY)
    /// and the cubic one — re-resolved before every squaring as the
    /// distance matrix densifies.
    pub fn with_schedule(graph: &'a Graph, schedule: MatMulSchedule) -> Self {
        Self { graph, schedule }
    }

    /// The hop matrix the squaring starts from: 0 on the diagonal, 1 on
    /// edges, [`IntMatrix::INFINITY`] elsewhere. Public so experiments can
    /// square exactly the matrix the protocol squares.
    pub fn hop_matrix(graph: &Graph) -> IntMatrix {
        let n = graph.vertex_count();
        let mut w = IntMatrix::filled(n, n, IntMatrix::INFINITY);
        for v in 0..n {
            w.set(v, v, 0);
        }
        for (u, v) in graph.edges() {
            w.set(u, v, 1);
            w.set(v, u, 1);
        }
        w
    }
}

impl Protocol for ApspProtocol<'_> {
    type Output = IntMatrix;

    fn run(&mut self, session: &mut Session) -> Result<IntMatrix, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        let mut distances = Self::hop_matrix(self.graph);
        if n <= 1 {
            return Ok(distances);
        }
        let part = Partition::new(n, n);
        let squarings = (usize::BITS - (n - 1).leading_zeros()) as usize;
        for _ in 0..squarings {
            let operand = SemiringMatrix::Ints(distances);
            let squared = session.run_protocol(&mut ScheduledMatMul::new(
                &operand,
                &operand,
                Semiring::MinPlus,
                self.schedule,
            ))?;
            let squared = squared
                .as_ints()
                .expect("min-plus products are integers")
                .clone();
            let previous = operand.as_ints().expect("operand is integers");

            // Early-exit vote: player v announces whether any of its rows
            // changed; everyone stops after a unanimous "no".
            let mut changed = vec![false; n];
            for r in 0..n {
                if squared.row(r) != previous.row(r) {
                    changed[part.row_owner(r)] = true;
                }
            }
            let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            for (v, out) in outs.iter_mut().enumerate() {
                out.broadcast(BitString::from_bits(u64::from(changed[v]), 1));
            }
            session.exchange("announce distance-change flags", outs)?;
            distances = squared;
            if !changed.iter().any(|&c| c) {
                break;
            }
        }
        Ok(distances)
    }
}

/// Runs [`ApspProtocol`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn compute_apsp(graph: &Graph, bandwidth: usize) -> Result<RunOutcome<IntMatrix>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut ApspProtocol::new(graph))
}

/// Runs [`ApspProtocol`] in `CLIQUE-UCAST(n, b)` with an explicit matmul
/// schedule for the `(min, +)` squarings.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty or a forced schedule's preconditions fail
/// (in particular `Strassen`, which `(min, +)` does not support).
pub fn compute_apsp_scheduled(
    graph: &Graph,
    bandwidth: usize,
    schedule: MatMulSchedule,
) -> Result<RunOutcome<IntMatrix>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth))
        .execute(&mut ApspProtocol::with_schedule(graph, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::{generators, iso};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_bitmatrix(d: usize, seed: u64) -> BitMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<bool>> = (0..d)
            .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        BitMatrix::from_rows(&rows)
    }

    fn random_intmatrix(d: usize, max: u64, infinities: bool, seed: u64) -> IntMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = IntMatrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                let v = if infinities && rng.gen_bool(0.2) {
                    IntMatrix::INFINITY
                } else {
                    rng.gen_range(0..max + 1)
                };
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn boolean_product_matches_local_kernel_across_sizes() {
        for (d, seed) in [(1usize, 1u64), (3, 2), (8, 3), (17, 4), (27, 5)] {
            let a = SemiringMatrix::Bits(random_bitmatrix(d, seed));
            let b = SemiringMatrix::Bits(random_bitmatrix(d, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::Boolean, 4).unwrap();
            let expected = a.as_bits().unwrap().mul_bool(b.as_bits().unwrap());
            assert_eq!(outcome.as_bits().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn counting_product_matches_local_kernel() {
        for (d, max, seed) in [(1usize, 1u64, 11u64), (6, 1, 12), (13, 7, 13), (27, 3, 14)] {
            let a = SemiringMatrix::Ints(random_intmatrix(d, max, false, seed));
            let b = SemiringMatrix::Ints(random_intmatrix(d, max, false, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::Counting, 4).unwrap();
            let expected = a.as_ints().unwrap().mul_counting(b.as_ints().unwrap());
            assert_eq!(outcome.as_ints().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn min_plus_product_matches_local_kernel_with_infinities() {
        for (d, max, seed) in [(2usize, 5u64, 21u64), (9, 9, 22), (27, 4, 23)] {
            let a = SemiringMatrix::Ints(random_intmatrix(d, max, true, seed));
            let b = SemiringMatrix::Ints(random_intmatrix(d, max, true, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::MinPlus, 4).unwrap();
            let expected = a.as_ints().unwrap().mul_min_plus(b.as_ints().unwrap());
            assert_eq!(outcome.as_ints().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn tiny_matrices_on_large_sessions_have_empty_blocks() {
        // d < g = ⌊n^{1/3}⌋ makes some row/column blocks empty; the empty
        // segments are never routed, and the decode side must not expect
        // packets for them.
        for d in [1usize, 2] {
            for (semiring, operand) in [
                (
                    Semiring::Boolean,
                    SemiringMatrix::Bits(random_bitmatrix(d, 71)),
                ),
                (
                    Semiring::Counting,
                    SemiringMatrix::Ints(random_intmatrix(d, 3, false, 72)),
                ),
                (
                    Semiring::MinPlus,
                    SemiringMatrix::Ints(random_intmatrix(d, 3, true, 73)),
                ),
            ] {
                let outcome = Runner::new(CliqueConfig::unicast(27, 4))
                    .execute(&mut SemiringMatMul::new(&operand, &operand, semiring))
                    .unwrap();
                let expected = operand.product(&operand, semiring);
                assert_eq!(*outcome, expected, "{} d = {d} on n = 27", semiring.name());
            }
        }
    }

    #[test]
    fn more_players_and_bandwidth_mean_fewer_rounds() {
        // The whole point of the 3D partition: rounds track n^{1/3}/b, so
        // doubling the bandwidth at fixed n must cut rounds roughly in half.
        let d = 32;
        let a = SemiringMatrix::Bits(random_bitmatrix(d, 31));
        let slow = semiring_matmul(&a, &a, Semiring::Boolean, 1).unwrap();
        let fast = semiring_matmul(&a, &a, Semiring::Boolean, 8).unwrap();
        assert!(
            fast.rounds() * 4 <= slow.rounds(),
            "bandwidth 8 took {} rounds vs {} at bandwidth 1",
            fast.rounds(),
            slow.rounds()
        );
    }

    #[test]
    fn triangle_count_matches_the_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x713);
        for (n, p) in [(4usize, 0.9f64), (9, 0.4), (16, 0.25), (27, 0.3)] {
            let g = generators::erdos_renyi(n, p, &mut rng);
            let outcome = count_triangles(&g, 4).unwrap();
            assert_eq!(*outcome, iso::triangle_count(&g), "n = {n}, p = {p}");
        }
    }

    #[test]
    fn triangle_count_on_degenerate_graphs() {
        assert_eq!(*count_triangles(&Graph::empty(1), 2).unwrap(), 0);
        assert_eq!(*count_triangles(&generators::complete(3), 2).unwrap(), 1);
        assert_eq!(*count_triangles(&generators::complete(6), 2).unwrap(), 20);
        let bip = generators::complete_bipartite(5, 5);
        assert_eq!(*count_triangles(&bip, 2).unwrap(), 0);
    }

    #[test]
    fn apsp_matches_bfs_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xA5B);
        for (n, p) in [(5usize, 0.5f64), (12, 0.2), (20, 0.12)] {
            let g = generators::erdos_renyi(n, p, &mut rng);
            let outcome = compute_apsp(&g, 4).unwrap();
            assert_eq!(*outcome, iso::bfs_distances(&g), "n = {n}, p = {p}");
        }
        // A path graph exercises the full ⌈log₂(n−1)⌉ squaring schedule.
        let path = generators::path(17);
        let outcome = compute_apsp(&path, 4).unwrap();
        assert_eq!(*outcome, iso::bfs_distances(&path));
        assert_eq!(outcome.get(0, 16), 16);
    }

    #[test]
    fn apsp_early_exit_saves_rounds_on_small_diameter() {
        // Diameter 2 converges after the first vote; a long path needs the
        // full schedule.
        let star = generators::complete_bipartite(1, 16);
        let path = generators::path(17);
        let star_rounds = compute_apsp(&star, 4).unwrap().rounds();
        let path_rounds = compute_apsp(&path, 4).unwrap().rounds();
        assert!(
            star_rounds < path_rounds,
            "star {star_rounds} vs path {path_rounds}"
        );
    }

    #[test]
    fn f2_product_matches_local_kernel_across_sizes() {
        for (d, seed) in [(1usize, 41u64), (3, 42), (8, 43), (17, 44), (27, 45)] {
            let a = SemiringMatrix::Bits(random_bitmatrix(d, seed));
            let b = SemiringMatrix::Bits(random_bitmatrix(d, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::F2, 4).unwrap();
            let expected = a.as_bits().unwrap().mul_f2(b.as_bits().unwrap());
            assert_eq!(outcome.as_bits().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn strassen_leaf_coeffs_reassemble_the_product() {
        // Local sanity for the flattened recursion: summing the signed leaf
        // products over ℤ must reassemble the full integer product at every
        // depth the distributed schedule uses.
        let mut rng = ChaCha8Rng::seed_from_u64(0xFA57);
        for levels in 1..=2u32 {
            let q = 3usize; // leaf block side
            let side = q << levels;
            let a: Vec<i64> = (0..side * side)
                .map(|_| rng.gen_range(0i64..9) - 4)
                .collect();
            let b: Vec<i64> = (0..side * side)
                .map(|_| rng.gen_range(0i64..9) - 4)
                .collect();
            let mut expected = vec![0i64; side * side];
            for r in 0..side {
                for k in 0..side {
                    for c in 0..side {
                        expected[r * side + c] += a[r * side + k] * b[k * side + c];
                    }
                }
            }
            let mut actual = vec![0i64; side * side];
            for leaf in strassen_leaf_coeffs(levels) {
                let combine = |m: &[i64], terms: &[(usize, usize, i64)]| {
                    let mut block = vec![0i64; q * q];
                    for &(bi, bj, s) in terms {
                        for r in 0..q {
                            for c in 0..q {
                                block[r * q + c] += s * m[(bi * q + r) * side + (bj * q + c)];
                            }
                        }
                    }
                    block
                };
                let (ca, cb) = (combine(&a, &leaf.a_terms), combine(&b, &leaf.b_terms));
                for &(ci, cj, s) in &leaf.c_terms {
                    for r in 0..q {
                        for c in 0..q {
                            let mut dot = 0i64;
                            for k in 0..q {
                                dot += ca[r * q + k] * cb[k * q + c];
                            }
                            actual[(ci * q + r) * side + (cj * q + c)] += s * dot;
                        }
                    }
                }
            }
            assert_eq!(actual, expected, "levels = {levels}");
        }
    }

    #[test]
    fn fast_f2_product_matches_cubic_and_local_kernels() {
        // Non-powers of two exercise the shared padding seam; the depth is
        // forced so small cliques still run the strassen phases.
        for (d, levels, seed) in [
            (8usize, 1u32, 51u64),
            (13, 1, 52),
            (27, 1, 53),
            (49, 2, 54),
            (56, 2, 55),
        ] {
            let a = SemiringMatrix::Bits(random_bitmatrix(d, seed));
            let b = SemiringMatrix::Bits(random_bitmatrix(d, seed + 100));
            let outcome = Runner::new(CliqueConfig::unicast(d, 4))
                .execute(&mut FastMatMul::new(&a, &b, Semiring::F2).with_levels(levels))
                .unwrap();
            let cubic = semiring_matmul(&a, &b, Semiring::F2, 4).unwrap();
            let local = a.as_bits().unwrap().mul_f2(b.as_bits().unwrap());
            assert_eq!(outcome.as_bits().unwrap(), &local, "d = {d} local");
            assert_eq!(*outcome, *cubic, "d = {d} cubic");
        }
    }

    #[test]
    fn fast_counting_product_matches_cubic_and_local_kernels() {
        for (d, max, levels, seed) in [
            (9usize, 3u64, 1u32, 61u64),
            (16, 7, 1, 62),
            (27, 1, 1, 63),
            (50, 5, 2, 64),
        ] {
            let a = SemiringMatrix::Ints(random_intmatrix(d, max, false, seed));
            let b = SemiringMatrix::Ints(random_intmatrix(d, max, false, seed + 100));
            let outcome = Runner::new(CliqueConfig::unicast(d, 4))
                .execute(&mut FastMatMul::new(&a, &b, Semiring::Counting).with_levels(levels))
                .unwrap();
            let cubic = semiring_matmul(&a, &b, Semiring::Counting, 4).unwrap();
            let local = a.as_ints().unwrap().mul_counting(b.as_ints().unwrap());
            assert_eq!(outcome.as_ints().unwrap(), &local, "d = {d} local");
            assert_eq!(*outcome, *cubic, "d = {d} cubic");
        }
    }

    #[test]
    fn fast_matmul_on_small_cliques_falls_back_to_cubic() {
        // n < 7 cannot host the 7 disjoint groups; the auto depth is 0 and
        // the cubic partition runs in place with an identical transcript.
        let d = 5;
        let a = SemiringMatrix::Bits(random_bitmatrix(d, 81));
        assert_eq!(FastMatMul::levels_for(d, d), 0);
        let fast = fast_matmul(&a, &a, Semiring::F2, 4).unwrap();
        let cubic = semiring_matmul(&a, &a, Semiring::F2, 4).unwrap();
        assert_eq!(*fast, *cubic);
        assert_eq!(fast.rounds(), cubic.rounds());
    }

    #[test]
    fn fast_matmul_handles_degenerate_dimensions() {
        // d = 1 keeps depth 0 (leaf blocks would be a single padded row);
        // the product still goes through and matches.
        let a = SemiringMatrix::Bits(BitMatrix::from_rows(&[vec![true]]));
        let fast = fast_matmul(&a, &a, Semiring::F2, 4).unwrap();
        assert_eq!(fast.as_bits().unwrap(), a.as_bits().unwrap());
    }

    #[test]
    #[should_panic(expected = "ring-embeddable")]
    fn fast_matmul_rejects_min_plus() {
        let m = SemiringMatrix::Ints(IntMatrix::zeros(8, 8));
        let _ = FastMatMul::new(&m, &m, Semiring::MinPlus);
    }

    #[test]
    #[should_panic(expected = "ring-embeddable")]
    fn fast_matmul_rejects_boolean() {
        let m = SemiringMatrix::Bits(BitMatrix::identity(8));
        let _ = FastMatMul::new(&m, &m, Semiring::Boolean);
    }

    #[test]
    fn sparse_product_matches_cubic_on_all_semirings() {
        for (d, seed) in [(6usize, 91u64), (17, 92), (27, 93)] {
            let bits = |s| SemiringMatrix::Bits(random_bitmatrix(d, s));
            let ints = |inf, s| SemiringMatrix::Ints(random_intmatrix(d, 4, inf, s));
            for (semiring, a, b) in [
                (Semiring::Boolean, bits(seed), bits(seed + 100)),
                (Semiring::F2, bits(seed + 1), bits(seed + 101)),
                (
                    Semiring::Counting,
                    ints(false, seed + 2),
                    ints(false, seed + 102),
                ),
                (
                    Semiring::MinPlus,
                    ints(true, seed + 3),
                    ints(true, seed + 103),
                ),
            ] {
                let sparse = sparse_matmul(&a, &b, semiring, 4).unwrap();
                let cubic = semiring_matmul(&a, &b, semiring, 4).unwrap();
                assert_eq!(*sparse, *cubic, "{} d = {d}", semiring.name());
            }
        }
    }

    #[test]
    fn sparse_identity_operands_cost_almost_nothing() {
        // nnz-charged rounds: multiplying identities (d nonzeros) must be
        // far cheaper than the dense cubic exchange of the same dimension.
        let d = 32;
        let a = SemiringMatrix::Bits(BitMatrix::identity(d));
        let sparse = sparse_matmul(&a, &a, Semiring::Boolean, 4).unwrap();
        let cubic = semiring_matmul(&a, &a, Semiring::Boolean, 4).unwrap();
        assert_eq!(*sparse, *cubic);
        assert!(
            sparse.rounds() * 2 <= cubic.rounds(),
            "sparse {} rounds vs cubic {}",
            sparse.rounds(),
            cubic.rounds()
        );
    }

    #[test]
    fn auto_schedule_dispatches_by_density_and_semiring() {
        let (n, d) = (56, 112);
        let dense = SemiringMatrix::Bits(random_bitmatrix(d, 95));
        let sparse = SemiringMatrix::Bits(BitMatrix::identity(d));
        let auto = MatMulSchedule::Auto;
        assert_eq!(
            auto.resolve(&sparse, &sparse, Semiring::F2, n),
            MatMulSchedule::Sparse
        );
        assert_eq!(
            auto.resolve(&dense, &dense, Semiring::F2, n),
            MatMulSchedule::Strassen
        );
        assert_eq!(
            auto.resolve(&dense, &dense, Semiring::Boolean, n),
            MatMulSchedule::Cubic,
            "no additive inverse: boolean stays cubic"
        );
        let mp = SemiringMatrix::Ints(random_intmatrix(d, 4, false, 96));
        assert_eq!(
            auto.resolve(&mp, &mp, Semiring::MinPlus, n),
            MatMulSchedule::Cubic,
            "no additive inverse: (min, +) stays cubic"
        );
        assert_eq!(
            auto.resolve(&dense, &dense, Semiring::F2, 8),
            MatMulSchedule::Cubic,
            "below the measured player crossover the cubic path wins"
        );
        assert_eq!(
            auto.resolve(&dense, &dense, Semiring::F2, d),
            MatMulSchedule::Cubic,
            "one row per player (d = n): the cubic pair loads are already \
             tiny and the fast path's routed phases cost more than they save"
        );
        for explicit in [
            MatMulSchedule::Cubic,
            MatMulSchedule::Strassen,
            MatMulSchedule::Sparse,
        ] {
            assert_eq!(explicit.resolve(&dense, &dense, Semiring::F2, d), explicit);
        }
    }

    #[test]
    fn scheduled_consumers_match_their_default_counterparts() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5C4E);
        let g = generators::erdos_renyi(28, 0.3, &mut rng);
        let default_triangles = count_triangles(&g, 4).unwrap();
        for schedule in [
            MatMulSchedule::Cubic,
            MatMulSchedule::Strassen,
            MatMulSchedule::Sparse,
            MatMulSchedule::Auto,
        ] {
            let scheduled = count_triangles_scheduled(&g, 4, schedule).unwrap();
            assert_eq!(*scheduled, *default_triangles, "{}", schedule.name());
        }
        let sparse_g = generators::path(20);
        let default_apsp = compute_apsp(&sparse_g, 4).unwrap();
        for schedule in [
            MatMulSchedule::Cubic,
            MatMulSchedule::Sparse,
            MatMulSchedule::Auto,
        ] {
            let scheduled = compute_apsp_scheduled(&sparse_g, 4, schedule).unwrap();
            assert_eq!(*scheduled, *default_apsp, "{}", schedule.name());
        }
    }

    #[test]
    #[should_panic(expected = "representation does not match")]
    fn mismatched_operand_representation_is_rejected() {
        let a = SemiringMatrix::Bits(BitMatrix::identity(4));
        let _ = SemiringMatMul::new(&a, &a, Semiring::Counting);
    }

    #[test]
    #[should_panic(expected = "reserved INFINITY")]
    fn counting_rejects_infinity_entries() {
        let m = SemiringMatrix::Ints(IntMatrix::filled(3, 3, IntMatrix::INFINITY));
        let _ = SemiringMatMul::new(&m, &m, Semiring::Counting);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rectangular_operands_are_rejected() {
        let a = SemiringMatrix::Ints(IntMatrix::zeros(3, 4));
        let _ = SemiringMatMul::new(&a, &a, Semiring::Counting);
    }
}
