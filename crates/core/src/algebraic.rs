//! Algebraic protocols: the `O(n^{1/3})`-round distributed semiring matrix
//! product and its consumers.
//!
//! Section 2.1 of the paper treats matrix multiplication as *the* lever for
//! sub-trivial triangle detection; the follow-up line it opened —
//! Censor-Hillel et al., *Algebraic Methods in the Congested Clique*
//! (PODC 2015), and Le Gall, *Further Algebraic Algorithms in the Congested
//! Clique Model* (DISC 2016) — showed that the unicast clique supports a
//! genuinely *distributed* semiring matrix product in `O(n^{1/3}/b)` rounds
//! via 3D partitioning over Lenzen-style routing, with no circuit in sight.
//! This module implements that product and two workloads on top of it:
//!
//! * [`SemiringMatMul`] — the 3D-partitioned product. The `d³` scalar
//!   products of `C = A ⊗ B` are tiled into `g³ ≤ n` cubes (`g = ⌊n^{1/3}⌋`);
//!   cube node `(i, j, k)` receives block `A_{ik}` and block `B_{kj}` from
//!   the row owners through the [`BalancedRouter`], multiplies them locally,
//!   and routes the partial block `A_{ik} ⊗ B_{kj}` back to the owners of
//!   the rows of `C_{ij}`, who fold the `g` partials with the semiring
//!   addition. Every node sends and receives `O(d²/n^{2/3})` entries per
//!   phase, so for `d = n` and constant-width entries the product costs
//!   `O(n^{1/3}/b)` rounds — experiment E13 measures exactly this scaling.
//! * [`TriangleCount`] — *exact* triangle counting (not just detection):
//!   `M = A·A` over the counting semiring, then `trace(A³) = Σ_{v,j}
//!   M[v][j]·A[v][j]` is assembled from one fixed-width broadcast per node
//!   and divided by 6.
//! * [`ApspProtocol`] — all-pairs shortest paths on unweighted graphs by
//!   repeated `(min, +)` squaring of the weight matrix (`⌈log₂(n−1)⌉`
//!   distance products, with a one-bit-per-node early-exit vote after each
//!   squaring).
//!
//! Three semirings are supported (see [`Semiring`]): the Boolean semiring
//! `(∨, ∧)` over packed [`BitMatrix`] operands, and the counting `(+, ×)`
//! and tropical `(min, +)` semirings over small-integer [`IntMatrix`]
//! operands. Like the routers' packet framing, the wire width of an entry
//! is derived from public quantities (the dimension and the global entry
//! bounds of the operands), so both endpoints of every link agree on the
//! format without extra communication.
//!
//! The per-node local block products run through the
//! [`clique_sim::linalg`](crate::sim::linalg) kernels, whose dispatchers
//! split output rows across the [`clique_sim::par`](crate::sim::par)
//! worker pool from `PAR_MIN_ROWS` rows up; by the
//! parallelism-never-changes-transcripts invariant (DESIGN.md,
//! Concurrency) every round/bit count in this module — including the E13
//! pins — is identical at any worker count. Experiment E14 measures the
//! wall-clock side of these protocols on the pool.

use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

use clique_graphs::Graph;
use clique_routing::{BalancedRouter, Router, RoutingDemand};
use clique_sim::linalg::saturating_counting_add;
use clique_sim::prelude::*;

/// The semiring a [`SemiringMatMul`] multiplies over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semiring {
    /// The Boolean semiring `(∨, ∧)` over 0/1 entries (packed
    /// [`BitMatrix`] operands).
    Boolean,
    /// The counting semiring `(+, ×)` over small non-negative integers,
    /// saturating strictly below [`IntMatrix::INFINITY`].
    Counting,
    /// The tropical `(min, +)` semiring with [`IntMatrix::INFINITY`] as the
    /// additive identity ("no path").
    MinPlus,
}

impl Semiring {
    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Semiring::Boolean => "boolean",
            Semiring::Counting => "counting",
            Semiring::MinPlus => "min-plus",
        }
    }

    /// Semiring addition, used to fold partial products.
    fn combine(&self, a: u64, b: u64) -> u64 {
        match self {
            Semiring::Boolean => a | b,
            Semiring::Counting => saturating_counting_add(a, b),
            Semiring::MinPlus => a.min(b),
        }
    }
}

/// A square matrix in the representation its semiring multiplies fastest:
/// packed bits for the Boolean semiring, small integers for the counting
/// and `(min, +)` semirings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemiringMatrix {
    /// Packed 0/1 entries (Boolean semiring operands).
    Bits(BitMatrix),
    /// Small-integer entries (counting and `(min, +)` semiring operands).
    Ints(IntMatrix),
}

impl SemiringMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            SemiringMatrix::Bits(m) => m.rows(),
            SemiringMatrix::Ints(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            SemiringMatrix::Bits(m) => m.cols(),
            SemiringMatrix::Ints(m) => m.cols(),
        }
    }

    /// The entry at `(i, j)` widened to `u64` (0/1 for packed bits).
    pub fn entry(&self, i: usize, j: usize) -> u64 {
        match self {
            SemiringMatrix::Bits(m) => u64::from(m.get(i, j)),
            SemiringMatrix::Ints(m) => m.get(i, j),
        }
    }

    /// The inner [`IntMatrix`], if this is an integer matrix.
    pub fn as_ints(&self) -> Option<&IntMatrix> {
        match self {
            SemiringMatrix::Bits(_) => None,
            SemiringMatrix::Ints(m) => Some(m),
        }
    }

    /// The inner [`BitMatrix`], if this is a packed bit matrix.
    pub fn as_bits(&self) -> Option<&BitMatrix> {
        match self {
            SemiringMatrix::Bits(m) => Some(m),
            SemiringMatrix::Ints(_) => None,
        }
    }

    /// An accumulator of the given shape filled with the semiring's
    /// additive identity, in the semiring's representation.
    fn identity_filled(semiring: Semiring, rows: usize, cols: usize) -> SemiringMatrix {
        match semiring {
            Semiring::Boolean => SemiringMatrix::Bits(BitMatrix::zeros(rows, cols)),
            Semiring::Counting => SemiringMatrix::Ints(IntMatrix::zeros(rows, cols)),
            Semiring::MinPlus => {
                SemiringMatrix::Ints(IntMatrix::filled(rows, cols, IntMatrix::INFINITY))
            }
        }
    }

    /// Overwrites the entry at `(i, j)`.
    fn set_entry(&mut self, i: usize, j: usize, value: u64) {
        match self {
            SemiringMatrix::Bits(m) => m.set(i, j, value != 0),
            SemiringMatrix::Ints(m) => m.set(i, j, value),
        }
    }

    /// Folds `value` into the entry at `(i, j)` with the semiring addition.
    fn combine_entry(&mut self, semiring: Semiring, i: usize, j: usize, value: u64) {
        let folded = semiring.combine(self.entry(i, j), value);
        self.set_entry(i, j, folded);
    }

    /// The local block product in the given semiring (the word-parallel
    /// kernel where one exists).
    fn product(&self, rhs: &SemiringMatrix, semiring: Semiring) -> SemiringMatrix {
        match (semiring, self, rhs) {
            (Semiring::Boolean, SemiringMatrix::Bits(a), SemiringMatrix::Bits(b)) => {
                SemiringMatrix::Bits(a.mul_bool(b))
            }
            (Semiring::Counting, SemiringMatrix::Ints(a), SemiringMatrix::Ints(b)) => {
                SemiringMatrix::Ints(a.mul_counting(b))
            }
            (Semiring::MinPlus, SemiringMatrix::Ints(a), SemiringMatrix::Ints(b)) => {
                SemiringMatrix::Ints(a.mul_min_plus(b))
            }
            _ => unreachable!("operand representation checked in SemiringMatMul::new"),
        }
    }

    /// The largest finite entry (0 if there is none).
    fn max_finite(&self) -> u64 {
        match self {
            SemiringMatrix::Bits(m) => u64::from(m.count_ones() > 0),
            SemiringMatrix::Ints(m) => m.max_finite(),
        }
    }
}

/// The 3D tiling of a `d × d × d` product cube onto `n` players.
#[derive(Clone, Copy, Debug)]
struct Partition {
    n: usize,
    d: usize,
    /// Cube side: the largest `g` with `g³ ≤ n`, i.e. `g = Θ(n^{1/3})`.
    g: usize,
}

impl Partition {
    fn new(n: usize, d: usize) -> Self {
        let g = (1..=n).take_while(|&g| g * g * g <= n).last().unwrap_or(1);
        Self { n, d, g }
    }

    /// Index range `t`-th of the `g` row/column blocks (they tile `0..d`).
    fn block(&self, t: usize) -> Range<usize> {
        t * self.d / self.g..(t + 1) * self.d / self.g
    }

    /// The largest block length (the inner-dimension bound of a partial
    /// product).
    fn max_block_len(&self) -> usize {
        (0..self.g).map(|t| self.block(t).len()).max().unwrap_or(0)
    }

    /// The player holding row `r` of the inputs and of the output.
    fn row_owner(&self, r: usize) -> usize {
        r * self.n / self.d
    }

    /// The player computing cube `(i, j, k)`.
    fn cube_node(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.g + j) * self.g + k
    }
}

/// Fixed wire widths for matrix entries, derived from public quantities
/// (the dimension and the operands' global entry bounds) so both endpoints
/// agree on the framing — the same convention the routers' `PacketCodec`
/// uses. `(min, +)` encodes [`IntMatrix::INFINITY`] as the all-ones
/// pattern; the widths are chosen so no finite entry collides with it.
#[derive(Clone, Copy, Debug)]
struct EntryCodec {
    semiring: Semiring,
    /// Width of an input-matrix entry (phase 1).
    input_bits: usize,
    /// Width of a partial-product entry (phase 2).
    partial_bits: usize,
}

impl EntryCodec {
    fn new(
        semiring: Semiring,
        a: &SemiringMatrix,
        b: &SemiringMatrix,
        max_inner: usize,
    ) -> EntryCodec {
        let (ma, mb) = (a.max_finite(), b.max_finite());
        let (input_bits, partial_bits) = match semiring {
            Semiring::Boolean => (1, 1),
            Semiring::Counting => {
                // Partial entries are sums of ≤ max_inner products.
                let partial_max = u128::from(ma)
                    .saturating_mul(u128::from(mb))
                    .saturating_mul(max_inner as u128)
                    .min(u128::from(IntMatrix::INFINITY - 1))
                    as u64;
                (
                    bits_for_universe(ma.max(mb).saturating_add(1)).max(1),
                    bits_for_universe(partial_max.saturating_add(1)).max(1),
                )
            }
            Semiring::MinPlus => {
                // One extra value above the finite range for the all-ones
                // INFINITY sentinel.
                (
                    bits_for_universe(ma.max(mb).saturating_add(2)).max(1),
                    bits_for_universe(ma.saturating_add(mb).saturating_add(2)).max(1),
                )
            }
        };
        EntryCodec {
            semiring,
            input_bits,
            partial_bits,
        }
    }

    fn all_ones(width: usize) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    fn encode(&self, value: u64, width: usize, out: &mut BitString) {
        let wire = if self.semiring == Semiring::MinPlus && value == IntMatrix::INFINITY {
            Self::all_ones(width)
        } else {
            // Finite values must fit the width; under (min, +) they must
            // additionally stay clear of the all-ones sentinel.
            debug_assert!(value <= Self::all_ones(width));
            debug_assert!(
                self.semiring != Semiring::MinPlus || value < Self::all_ones(width),
                "finite (min, +) value collides with the INFINITY sentinel"
            );
            value
        };
        out.push_bits(wire, width);
    }

    fn decode(&self, reader: &mut BitReader<'_>, width: usize) -> u64 {
        let raw = reader
            .read_bits(width)
            .expect("malformed semiring-matmul record");
        if self.semiring == Semiring::MinPlus && raw == Self::all_ones(width) {
            IntMatrix::INFINITY
        } else {
            raw
        }
    }

    fn encode_input(&self, value: u64, out: &mut BitString) {
        self.encode(value, self.input_bits, out);
    }

    fn decode_input(&self, reader: &mut BitReader<'_>) -> u64 {
        self.decode(reader, self.input_bits)
    }

    fn encode_partial(&self, value: u64, out: &mut BitString) {
        self.encode(value, self.partial_bits, out);
    }

    fn decode_partial(&self, reader: &mut BitReader<'_>) -> u64 {
        self.decode(reader, self.partial_bits)
    }
}

/// Per-destination readers over the packets one balanced-routing phase
/// delivered, keyed by source player.
fn readers_by_source<'a>(packets: &'a [clique_routing::Packet]) -> HashMap<usize, BitReader<'a>> {
    packets
        .iter()
        .map(|p| (p.src.index(), p.payload.reader()))
        .collect()
}

/// The `O(n^{1/3})`-round distributed semiring matrix product as a
/// [`Protocol`]: `C = A ⊗ B` for square `d × d` operands, 3D-partitioned
/// over the `n` players of the session and routed through the
/// [`BalancedRouter`].
///
/// Player `v` holds rows `r` with `row_owner(r) = v` of both inputs (for
/// `d = n` this is the standard "player `i` knows row `i`" input
/// convention) and ends up holding the same rows of the output; the
/// returned matrix is the assembled whole.
///
/// # Examples
///
/// ```
/// use clique_core::algebraic::{semiring_matmul, Semiring, SemiringMatrix};
/// use clique_core::sim::linalg::BitMatrix;
///
/// let a = SemiringMatrix::Bits(BitMatrix::identity(8));
/// let product = semiring_matmul(&a, &a, Semiring::Boolean, 4).unwrap();
/// assert_eq!(product.as_bits().unwrap(), &BitMatrix::identity(8));
/// ```
#[derive(Clone, Debug)]
pub struct SemiringMatMul<'a> {
    a: &'a SemiringMatrix,
    b: &'a SemiringMatrix,
    semiring: Semiring,
}

impl<'a> SemiringMatMul<'a> {
    /// Prepares the product `A ⊗ B`.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not square matrices of the same
    /// dimension, if their representation does not match the semiring
    /// (Boolean needs [`SemiringMatrix::Bits`], counting and `(min, +)`
    /// need [`SemiringMatrix::Ints`]), or if a counting operand contains
    /// the reserved [`IntMatrix::INFINITY`] entry.
    pub fn new(a: &'a SemiringMatrix, b: &'a SemiringMatrix, semiring: Semiring) -> Self {
        let d = a.rows();
        assert!(
            a.cols() == d && b.rows() == d && b.cols() == d,
            "operands must be square matrices of one dimension, got {}×{} and {}×{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        for (name, m) in [("A", a), ("B", b)] {
            match (semiring, m) {
                (Semiring::Boolean, SemiringMatrix::Bits(_))
                | (Semiring::Counting | Semiring::MinPlus, SemiringMatrix::Ints(_)) => {}
                _ => panic!(
                    "operand {name} representation does not match the {} semiring",
                    semiring.name()
                ),
            }
            if semiring == Semiring::Counting {
                if let Some(ints) = m.as_ints() {
                    assert!(
                        (0..ints.rows())
                            .all(|i| ints.row(i).iter().all(|&v| v != IntMatrix::INFINITY)),
                        "counting operand {name} contains the reserved INFINITY entry"
                    );
                }
            }
        }
        Self { a, b, semiring }
    }

    /// The semiring this product multiplies over.
    pub fn semiring(&self) -> Semiring {
        self.semiring
    }
}

impl Protocol for SemiringMatMul<'_> {
    type Output = SemiringMatrix;

    fn run(&mut self, session: &mut Session) -> Result<SemiringMatrix, SimError> {
        session.require_clique();
        let n = session.n();
        let d = self.a.rows();
        if d == 0 {
            return Ok(SemiringMatrix::identity_filled(self.semiring, 0, 0));
        }
        let part = Partition::new(n, d);
        let g = part.g;
        let codec = EntryCodec::new(self.semiring, self.a, self.b, part.max_block_len());

        // Phase 1: the row owners ship the input blocks to the cube nodes.
        // Cube node w = (i, j, k) needs A_{ik} (rows of block i, columns of
        // block k) and B_{kj}; each packet (v → w) carries v's rows of
        // A_{ik} then v's rows of B_{kj}, rows ascending, entries in column
        // order — a canonical layout both sides derive from (n, d, g) alone.
        let mut demand = RoutingDemand::new(n);
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let w = part.cube_node(i, j, k);
                    let mut payloads: BTreeMap<usize, BitString> = BTreeMap::new();
                    for (matrix, row_block, col_block) in [(self.a, i, k), (self.b, k, j)] {
                        for r in part.block(row_block) {
                            let v = part.row_owner(r);
                            if v == w {
                                continue; // own input rows need no routing
                            }
                            let buf = payloads.entry(v).or_default();
                            for c in part.block(col_block) {
                                codec.encode_input(matrix.entry(r, c), buf);
                            }
                        }
                    }
                    for (v, payload) in payloads {
                        if !payload.is_empty() {
                            demand.send(v, w, payload);
                        }
                    }
                }
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        // Local compute: every cube node reassembles its two blocks from
        // the delivered packets (plus its own rows) and multiplies them
        // with the semiring's local kernel.
        let mut partials: Vec<SemiringMatrix> = Vec::with_capacity(g * g * g);
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let w = part.cube_node(i, j, k);
                    let mut readers = readers_by_source(&delivered[w]);
                    let mut blocks: Vec<SemiringMatrix> = Vec::with_capacity(2);
                    for (matrix, row_block, col_block) in [(self.a, i, k), (self.b, k, j)] {
                        let (rows, cols) = (part.block(row_block), part.block(col_block));
                        let mut block =
                            SemiringMatrix::identity_filled(self.semiring, rows.len(), cols.len());
                        for (bi, r) in rows.clone().enumerate() {
                            let v = part.row_owner(r);
                            if v == w {
                                for (bj, c) in cols.clone().enumerate() {
                                    block.set_entry(bi, bj, matrix.entry(r, c));
                                }
                            } else if !cols.is_empty() {
                                // A zero-width segment was never sent (the
                                // sender skips empty payloads), so only
                                // look the reader up when there are entries
                                // to read.
                                let reader = readers
                                    .get_mut(&v)
                                    .expect("missing semiring-matmul input packet");
                                for bj in 0..cols.len() {
                                    block.set_entry(bi, bj, codec.decode_input(reader));
                                }
                            }
                        }
                        blocks.push(block);
                    }
                    let b_block = blocks.pop().expect("two blocks built");
                    let a_block = blocks.pop().expect("two blocks built");
                    partials.push(a_block.product(&b_block, self.semiring));
                }
            }
        }

        // Phase 2: each cube node routes its partial block to the output
        // row owners, who fold the g partials per entry with the semiring
        // addition.
        let mut output = SemiringMatrix::identity_filled(self.semiring, d, d);
        let mut demand = RoutingDemand::new(n);
        let mut partial_iter = partials.iter();
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let w = part.cube_node(i, j, k);
                    let partial = partial_iter.next().expect("one partial per cube");
                    let (rows, cols) = (part.block(i), part.block(j));
                    let mut payloads: BTreeMap<usize, BitString> = BTreeMap::new();
                    for (bi, r) in rows.clone().enumerate() {
                        let v = part.row_owner(r);
                        if v == w {
                            // The cube node owns these output rows itself.
                            for (bj, c) in cols.clone().enumerate() {
                                output.combine_entry(self.semiring, r, c, partial.entry(bi, bj));
                            }
                        } else {
                            let buf = payloads.entry(v).or_default();
                            for bj in 0..cols.len() {
                                codec.encode_partial(partial.entry(bi, bj), buf);
                            }
                        }
                    }
                    for (v, payload) in payloads {
                        if !payload.is_empty() {
                            demand.send(w, v, payload);
                        }
                    }
                }
            }
        }
        let delivered = BalancedRouter.route(&demand, session)?;

        // Fold the routed partials, walking cubes in the same canonical
        // order the senders used.
        for (v, packets) in delivered.iter().enumerate() {
            let mut readers = readers_by_source(packets);
            for i in 0..g {
                let owned: Vec<usize> = part.block(i).filter(|&r| part.row_owner(r) == v).collect();
                if owned.is_empty() {
                    continue;
                }
                for j in 0..g {
                    let cols = part.block(j);
                    if cols.is_empty() {
                        continue; // zero-width segments were never sent
                    }
                    for k in 0..g {
                        let w = part.cube_node(i, j, k);
                        if w == v {
                            continue; // folded locally above
                        }
                        let reader = readers
                            .get_mut(&w)
                            .expect("missing semiring-matmul partial packet");
                        for &r in &owned {
                            for c in cols.clone() {
                                let value = codec.decode_partial(reader);
                                output.combine_entry(self.semiring, r, c, value);
                            }
                        }
                    }
                }
            }
        }
        Ok(output)
    }
}

/// Runs [`SemiringMatMul`] on `CLIQUE-UCAST(d, b)` — one player per matrix
/// row, the canonical input distribution.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics on empty operands or any [`SemiringMatMul::new`] precondition
/// violation.
pub fn semiring_matmul(
    a: &SemiringMatrix,
    b: &SemiringMatrix,
    semiring: Semiring,
    bandwidth: usize,
) -> Result<RunOutcome<SemiringMatrix>, SimError> {
    let n = a.rows();
    assert!(n > 0, "the operands must have at least one row");
    Runner::new(CliqueConfig::unicast(n, bandwidth))
        .execute(&mut SemiringMatMul::new(a, b, semiring))
}

/// Exact triangle counting as a [`Protocol`]: `trace(A³)/6` through one
/// counting-semiring [`SemiringMatMul`] plus one fixed-width broadcast per
/// player.
///
/// Player `v` folds its rows of `M = A·A` against its own adjacency row
/// (`t_v = Σ_j M[v][j]·A[v][j]`, the closed 3-walks through `v`) and
/// broadcasts `t_v`; the sum over all players is `trace(A³) = 6·#triangles`.
#[derive(Clone, Debug)]
pub struct TriangleCount<'a> {
    graph: &'a Graph,
}

impl<'a> TriangleCount<'a> {
    /// Prepares the protocol for the given input graph.
    pub fn new(graph: &'a Graph) -> Self {
        Self { graph }
    }
}

impl Protocol for TriangleCount<'_> {
    type Output = u64;

    fn run(&mut self, session: &mut Session) -> Result<u64, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        let adjacency = IntMatrix::from_bitmatrix(&self.graph.adjacency_bitmatrix());
        let operand = SemiringMatrix::Ints(adjacency.clone());
        let product = session.run_protocol(&mut SemiringMatMul::new(
            &operand,
            &operand,
            Semiring::Counting,
        ))?;
        let m = product.as_ints().expect("counting products are integers");

        // Player v's closed-3-walk count t_v ≤ n² fits in the fixed width
        // every player derives from n.
        let width = bits_for_universe((n as u64).saturating_mul(n as u64).saturating_add(1)).max(1);
        let part = Partition::new(n, n);
        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        let mut locals = vec![0u64; n];
        for r in 0..n {
            let v = part.row_owner(r);
            let walks: u64 = m
                .row(r)
                .iter()
                .zip(adjacency.row(r))
                .map(|(&paths, &edge)| paths * edge)
                .sum();
            locals[v] += walks;
        }
        for (v, out) in outs.iter_mut().enumerate() {
            out.broadcast(BitString::from_bits(locals[v], width));
        }
        let inboxes = session.exchange("announce closed-walk counts", outs)?;

        // Everyone sums the announced counts; trace(A³) = 6·#triangles.
        let mut total = locals[0];
        for (src, payload) in inboxes[0].broadcasts() {
            if src.index() != 0 {
                total += payload.reader().read_bits(width).expect("count announced");
            }
        }
        Ok(total / 6)
    }
}

/// Runs [`TriangleCount`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn count_triangles(graph: &Graph, bandwidth: usize) -> Result<RunOutcome<u64>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut TriangleCount::new(graph))
}

/// All-pairs shortest paths on an unweighted graph as a [`Protocol`]:
/// repeated `(min, +)` squaring of the hop matrix (0 on the diagonal, 1 on
/// edges, [`IntMatrix::INFINITY`] elsewhere) through [`SemiringMatMul`].
///
/// After `t` squarings the matrix holds exact distances up to `2^t`, so
/// `⌈log₂(n−1)⌉` distance products always suffice; a one-bit per-player
/// "my rows changed" vote after each squaring stops earlier on
/// small-diameter graphs. The output distance matrix has
/// [`IntMatrix::INFINITY`] for disconnected pairs.
#[derive(Clone, Debug)]
pub struct ApspProtocol<'a> {
    graph: &'a Graph,
}

impl<'a> ApspProtocol<'a> {
    /// Prepares the protocol for the given input graph.
    pub fn new(graph: &'a Graph) -> Self {
        Self { graph }
    }

    /// The hop matrix the squaring starts from: 0 on the diagonal, 1 on
    /// edges, [`IntMatrix::INFINITY`] elsewhere. Public so experiments can
    /// square exactly the matrix the protocol squares.
    pub fn hop_matrix(graph: &Graph) -> IntMatrix {
        let n = graph.vertex_count();
        let mut w = IntMatrix::filled(n, n, IntMatrix::INFINITY);
        for v in 0..n {
            w.set(v, v, 0);
        }
        for (u, v) in graph.edges() {
            w.set(u, v, 1);
            w.set(v, u, 1);
        }
        w
    }
}

impl Protocol for ApspProtocol<'_> {
    type Output = IntMatrix;

    fn run(&mut self, session: &mut Session) -> Result<IntMatrix, SimError> {
        let n = self.graph.vertex_count();
        session.require_clique_of(n);
        let mut distances = Self::hop_matrix(self.graph);
        if n <= 1 {
            return Ok(distances);
        }
        let part = Partition::new(n, n);
        let squarings = (usize::BITS - (n - 1).leading_zeros()) as usize;
        for _ in 0..squarings {
            let operand = SemiringMatrix::Ints(distances);
            let squared = session.run_protocol(&mut SemiringMatMul::new(
                &operand,
                &operand,
                Semiring::MinPlus,
            ))?;
            let squared = squared
                .as_ints()
                .expect("min-plus products are integers")
                .clone();
            let previous = operand.as_ints().expect("operand is integers");

            // Early-exit vote: player v announces whether any of its rows
            // changed; everyone stops after a unanimous "no".
            let mut changed = vec![false; n];
            for r in 0..n {
                if squared.row(r) != previous.row(r) {
                    changed[part.row_owner(r)] = true;
                }
            }
            let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            for (v, out) in outs.iter_mut().enumerate() {
                out.broadcast(BitString::from_bits(u64::from(changed[v]), 1));
            }
            session.exchange("announce distance-change flags", outs)?;
            distances = squared;
            if !changed.iter().any(|&c| c) {
                break;
            }
        }
        Ok(distances)
    }
}

/// Runs [`ApspProtocol`] in `CLIQUE-UCAST(n, b)`.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn compute_apsp(graph: &Graph, bandwidth: usize) -> Result<RunOutcome<IntMatrix>, SimError> {
    let n = graph.vertex_count();
    assert!(n > 0, "the input graph must have at least one node");
    Runner::new(CliqueConfig::unicast(n, bandwidth)).execute(&mut ApspProtocol::new(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::{generators, iso};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_bitmatrix(d: usize, seed: u64) -> BitMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<Vec<bool>> = (0..d)
            .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        BitMatrix::from_rows(&rows)
    }

    fn random_intmatrix(d: usize, max: u64, infinities: bool, seed: u64) -> IntMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = IntMatrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                let v = if infinities && rng.gen_bool(0.2) {
                    IntMatrix::INFINITY
                } else {
                    rng.gen_range(0..max + 1)
                };
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn boolean_product_matches_local_kernel_across_sizes() {
        for (d, seed) in [(1usize, 1u64), (3, 2), (8, 3), (17, 4), (27, 5)] {
            let a = SemiringMatrix::Bits(random_bitmatrix(d, seed));
            let b = SemiringMatrix::Bits(random_bitmatrix(d, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::Boolean, 4).unwrap();
            let expected = a.as_bits().unwrap().mul_bool(b.as_bits().unwrap());
            assert_eq!(outcome.as_bits().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn counting_product_matches_local_kernel() {
        for (d, max, seed) in [(1usize, 1u64, 11u64), (6, 1, 12), (13, 7, 13), (27, 3, 14)] {
            let a = SemiringMatrix::Ints(random_intmatrix(d, max, false, seed));
            let b = SemiringMatrix::Ints(random_intmatrix(d, max, false, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::Counting, 4).unwrap();
            let expected = a.as_ints().unwrap().mul_counting(b.as_ints().unwrap());
            assert_eq!(outcome.as_ints().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn min_plus_product_matches_local_kernel_with_infinities() {
        for (d, max, seed) in [(2usize, 5u64, 21u64), (9, 9, 22), (27, 4, 23)] {
            let a = SemiringMatrix::Ints(random_intmatrix(d, max, true, seed));
            let b = SemiringMatrix::Ints(random_intmatrix(d, max, true, seed + 100));
            let outcome = semiring_matmul(&a, &b, Semiring::MinPlus, 4).unwrap();
            let expected = a.as_ints().unwrap().mul_min_plus(b.as_ints().unwrap());
            assert_eq!(outcome.as_ints().unwrap(), &expected, "d = {d}");
        }
    }

    #[test]
    fn tiny_matrices_on_large_sessions_have_empty_blocks() {
        // d < g = ⌊n^{1/3}⌋ makes some row/column blocks empty; the empty
        // segments are never routed, and the decode side must not expect
        // packets for them.
        for d in [1usize, 2] {
            for (semiring, operand) in [
                (
                    Semiring::Boolean,
                    SemiringMatrix::Bits(random_bitmatrix(d, 71)),
                ),
                (
                    Semiring::Counting,
                    SemiringMatrix::Ints(random_intmatrix(d, 3, false, 72)),
                ),
                (
                    Semiring::MinPlus,
                    SemiringMatrix::Ints(random_intmatrix(d, 3, true, 73)),
                ),
            ] {
                let outcome = Runner::new(CliqueConfig::unicast(27, 4))
                    .execute(&mut SemiringMatMul::new(&operand, &operand, semiring))
                    .unwrap();
                let expected = operand.product(&operand, semiring);
                assert_eq!(*outcome, expected, "{} d = {d} on n = 27", semiring.name());
            }
        }
    }

    #[test]
    fn more_players_and_bandwidth_mean_fewer_rounds() {
        // The whole point of the 3D partition: rounds track n^{1/3}/b, so
        // doubling the bandwidth at fixed n must cut rounds roughly in half.
        let d = 32;
        let a = SemiringMatrix::Bits(random_bitmatrix(d, 31));
        let slow = semiring_matmul(&a, &a, Semiring::Boolean, 1).unwrap();
        let fast = semiring_matmul(&a, &a, Semiring::Boolean, 8).unwrap();
        assert!(
            fast.rounds() * 4 <= slow.rounds(),
            "bandwidth 8 took {} rounds vs {} at bandwidth 1",
            fast.rounds(),
            slow.rounds()
        );
    }

    #[test]
    fn triangle_count_matches_the_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x713);
        for (n, p) in [(4usize, 0.9f64), (9, 0.4), (16, 0.25), (27, 0.3)] {
            let g = generators::erdos_renyi(n, p, &mut rng);
            let outcome = count_triangles(&g, 4).unwrap();
            assert_eq!(*outcome, iso::triangle_count(&g), "n = {n}, p = {p}");
        }
    }

    #[test]
    fn triangle_count_on_degenerate_graphs() {
        assert_eq!(*count_triangles(&Graph::empty(1), 2).unwrap(), 0);
        assert_eq!(*count_triangles(&generators::complete(3), 2).unwrap(), 1);
        assert_eq!(*count_triangles(&generators::complete(6), 2).unwrap(), 20);
        let bip = generators::complete_bipartite(5, 5);
        assert_eq!(*count_triangles(&bip, 2).unwrap(), 0);
    }

    #[test]
    fn apsp_matches_bfs_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xA5B);
        for (n, p) in [(5usize, 0.5f64), (12, 0.2), (20, 0.12)] {
            let g = generators::erdos_renyi(n, p, &mut rng);
            let outcome = compute_apsp(&g, 4).unwrap();
            assert_eq!(*outcome, iso::bfs_distances(&g), "n = {n}, p = {p}");
        }
        // A path graph exercises the full ⌈log₂(n−1)⌉ squaring schedule.
        let path = generators::path(17);
        let outcome = compute_apsp(&path, 4).unwrap();
        assert_eq!(*outcome, iso::bfs_distances(&path));
        assert_eq!(outcome.get(0, 16), 16);
    }

    #[test]
    fn apsp_early_exit_saves_rounds_on_small_diameter() {
        // Diameter 2 converges after the first vote; a long path needs the
        // full schedule.
        let star = generators::complete_bipartite(1, 16);
        let path = generators::path(17);
        let star_rounds = compute_apsp(&star, 4).unwrap().rounds();
        let path_rounds = compute_apsp(&path, 4).unwrap().rounds();
        assert!(
            star_rounds < path_rounds,
            "star {star_rounds} vs path {path_rounds}"
        );
    }

    #[test]
    #[should_panic(expected = "representation does not match")]
    fn mismatched_operand_representation_is_rejected() {
        let a = SemiringMatrix::Bits(BitMatrix::identity(4));
        let _ = SemiringMatMul::new(&a, &a, Semiring::Counting);
    }

    #[test]
    #[should_panic(expected = "reserved INFINITY")]
    fn counting_rejects_infinity_entries() {
        let m = SemiringMatrix::Ints(IntMatrix::filled(3, 3, IntMatrix::INFINITY));
        let _ = SemiringMatMul::new(&m, &m, Semiring::Counting);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rectangular_operands_are_rejected() {
        let a = SemiringMatrix::Ints(IntMatrix::zeros(3, 4));
        let _ = SemiringMatMul::new(&a, &a, Semiring::Counting);
    }
}
