//! The circuit-to-clique simulation of Theorem 2.
//!
//! Given a circuit of depth `D` with `N = n²·s` wires whose gates are all
//! `b_sep`-separable, the theorem builds an `O(D)`-round protocol for
//! `CLIQUE-UCAST(n, O(b_sep + s))` computing the circuit on any reasonably
//! balanced input partition. The protocol:
//!
//! 1. assigns every *heavy* gate (weight `≥ 2·n·s`, where the weight is
//!    fan-in plus fan-out) to a distinct player and spreads the *light*
//!    gates so that no player carries more than `O(n·s)` light wires;
//! 2. routes every input bit from the player that initially holds it to the
//!    owner of the corresponding input gate;
//! 3. evaluates the circuit layer by layer; in each layer
//!    * the owners of the inputs of a heavy gate send `b_sep`-bit summaries
//!      to the gate's owner, who combines them (Definition 1),
//!    * owners of heavy gates send their (single-bit) values to the owners
//!      of light gates that read them,
//!    * the light-to-light wires form a balanced demand that is delivered by
//!      a deterministic two-phase balanced schedule (the stand-in for
//!      Lenzen's routing algorithm — see DESIGN.md);
//! 4. the owners of the output gates finally ship the outputs to player 0.
//!
//! Round and bit accounting is exact and charged to the protocol's
//! [`Session`]; because the gate assignment and the routing schedule are
//! deterministic functions of the (publicly known) circuit, no message
//! needs headers and the per-link load per layer is `O(b_sep + s)` bits,
//! matching the theorem.

use std::collections::HashMap;

use clique_circuits::{Circuit, GateId, GateKind};
use clique_sim::prelude::*;

use crate::outcome::{CircuitOutput, CircuitSimOutcome};

/// How the `n²`-bit circuit input is initially split among the players.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputPartition {
    /// Input bit `t` starts at player `t mod n` (balanced round-robin).
    RoundRobin,
    /// Input bit `t` starts at player `⌊t·n / #inputs⌋` (contiguous blocks).
    Blocks,
}

impl InputPartition {
    fn owner(&self, t: usize, inputs: usize, n: usize) -> usize {
        match self {
            InputPartition::RoundRobin => t % n,
            InputPartition::Blocks => (t * n) / inputs.max(1),
        }
    }
}

/// The static plan of the simulation: gate ownership and derived parameters.
#[derive(Clone, Debug)]
pub struct SimulationPlan {
    /// Wire density `s = ⌈wires/n²⌉`.
    pub wire_density: usize,
    /// The heavy-gate threshold `2·n·s`.
    pub heavy_threshold: usize,
    /// Owner of each gate.
    pub owner: Vec<usize>,
    /// Whether each gate is heavy.
    pub heavy: Vec<bool>,
    /// Number of heavy gates.
    pub heavy_count: usize,
}

/// Computes the gate-to-player assignment of Theorem 2.
///
/// # Panics
///
/// Panics if `n_players == 0`.
pub fn plan_simulation(circuit: &Circuit, n_players: usize) -> SimulationPlan {
    assert!(n_players > 0, "need at least one player");
    let s = circuit.wire_density(n_players);
    let threshold = 2 * n_players * s;
    let weights = circuit.gate_weights();
    let heavy: Vec<bool> = weights.iter().map(|&w| w >= threshold).collect();
    let heavy_count = heavy.iter().filter(|&&h| h).count();
    // Heavy gates: one per player (the counting argument in the paper
    // guarantees heavy_count <= n).
    assert!(
        heavy_count <= n_players,
        "more heavy gates ({heavy_count}) than players ({n_players}); the wire bound is violated"
    );
    let mut owner = vec![0usize; circuit.gate_count()];
    let mut next_heavy_player = 0usize;
    // Light gates: greedily to the player with the least light weight.
    let mut light_load = vec![0usize; n_players];
    for (g, &w) in weights.iter().enumerate() {
        if heavy[g] {
            owner[g] = next_heavy_player;
            next_heavy_player += 1;
        } else {
            let p = (0..n_players)
                .min_by_key(|&p| light_load[p])
                .expect("at least one player");
            owner[g] = p;
            light_load[p] += w;
        }
    }
    SimulationPlan {
        wire_density: s,
        heavy_threshold: threshold,
        owner,
        heavy,
        heavy_count,
    }
}

/// Theorem 2 as a [`Protocol`]: simulates a layered circuit of separable
/// gates on the session's (unicast) model, returning the outputs and their
/// owners. Round and bit accounting lands on the session.
#[derive(Clone, Debug)]
pub struct CircuitSimulation<'a> {
    circuit: &'a Circuit,
    input: &'a [bool],
    partition: InputPartition,
}

impl<'a> CircuitSimulation<'a> {
    /// Prepares the simulation of `circuit` on `input` under the given
    /// initial input partition.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match the circuit.
    pub fn new(circuit: &'a Circuit, input: &'a [bool], partition: InputPartition) -> Self {
        assert_eq!(
            input.len(),
            circuit.inputs().len(),
            "expected {} input bits, got {}",
            circuit.inputs().len(),
            input.len()
        );
        Self {
            circuit,
            input,
            partition,
        }
    }
}

impl Protocol for CircuitSimulation<'_> {
    type Output = CircuitOutput;

    fn run(&mut self, session: &mut Session) -> Result<CircuitOutput, SimError> {
        run_circuit_simulation(self.circuit, self.input, self.partition, session)
    }
}

/// Simulates `circuit` on `input` with `n_players` players and the given
/// link bandwidth in `CLIQUE-UCAST(n, b)`, returning the outputs and the
/// exact round/bit accounting.
///
/// # Errors
///
/// Propagates simulator errors (which cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if the input length does not match the circuit or `n_players == 0`.
pub fn simulate_circuit(
    circuit: &Circuit,
    input: &[bool],
    n_players: usize,
    bandwidth: usize,
    partition: InputPartition,
) -> Result<CircuitSimOutcome, SimError> {
    Runner::new(CliqueConfig::unicast(n_players, bandwidth))
        .execute(&mut CircuitSimulation::new(circuit, input, partition))
}

/// The protocol body: evaluates the circuit on the session's model.
fn run_circuit_simulation(
    circuit: &Circuit,
    input: &[bool],
    partition: InputPartition,
    session: &mut Session,
) -> Result<CircuitOutput, SimError> {
    session.require_clique();
    let n = session.n();
    let plan = plan_simulation(circuit, n);

    // Per-player knowledge of gate values; only ever updated from local
    // evaluation or received messages.
    let mut known: Vec<HashMap<usize, bool>> = vec![HashMap::new(); n];

    // --- Step 1: distribute input bits to the owners of the input gates. ---
    // The initial holder of bit t and the owner of input gate t are both
    // publicly known, so the exchange needs no headers: player p sends to
    // player q the values of the input bits it holds whose gate is owned by
    // q, in increasing input index order.
    {
        let inputs = circuit.inputs();
        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        let mut per_pair: HashMap<(usize, usize), BitString> = HashMap::new();
        for (t, &gate) in inputs.iter().enumerate() {
            let holder = partition.owner(t, inputs.len(), n);
            let target = plan.owner[gate.index()];
            if holder == target {
                known[target].insert(gate.index(), input[t]);
            } else {
                per_pair
                    .entry((holder, target))
                    .or_default()
                    .push_bit(input[t]);
            }
        }
        for (&(src, dst), bits) in &per_pair {
            outs[src].send(NodeId::new(dst), bits.clone());
        }
        let inboxes = session.exchange("distribute inputs", outs)?;
        // Receivers re-derive which input gates the received bits refer to.
        for (dst, inbox) in inboxes.iter().enumerate() {
            let mut cursors: HashMap<usize, BitReader<'_>> = inbox
                .unicasts()
                .map(|(src, payload)| (src.index(), payload.reader()))
                .collect();
            for (t, &gate) in inputs.iter().enumerate() {
                let holder = partition.owner(t, inputs.len(), n);
                if plan.owner[gate.index()] == dst && holder != dst {
                    if let Some(reader) = cursors.get_mut(&holder) {
                        let bit = reader.read_bit().expect("missing routed input bit");
                        known[dst].insert(gate.index(), bit);
                    }
                }
            }
        }
    }

    // Constants are known to their owners without communication.
    for (g, gate) in circuit.gates().iter().enumerate() {
        if let GateKind::Const(value) = gate.kind {
            known[plan.owner[g]].insert(g, value);
        }
    }

    // --- Step 2: evaluate layer by layer. ---
    let layers = circuit.layers();
    // Tracks which (heavy gate value, player) and (light gate value, player)
    // pairs have already been delivered, to avoid duplicate sends.
    let mut delivered: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();

    for (layer_idx, layer) in layers.iter().enumerate().skip(1) {
        // (a) Summaries for heavy gates of this layer.
        let heavy_in_layer: Vec<GateId> = layer
            .iter()
            .copied()
            .filter(|g| plan.heavy[g.index()])
            .collect();
        if !heavy_in_layer.is_empty() {
            let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            // For positional decoding, both sides iterate heavy gates in the
            // same (ascending) order.
            for &gid in &heavy_in_layer {
                let gate = circuit.gate(gid);
                let gate_owner = plan.owner[gid.index()];
                let sep_bits = gate.kind.separability_bits(gate.inputs.len()).max(1);
                // Group the gate's inputs by the owner of the input gate.
                let mut parts: HashMap<usize, Vec<(usize, bool)>> = HashMap::new();
                for (pos, input_gate) in gate.inputs.iter().enumerate() {
                    let p = plan.owner[input_gate.index()];
                    let value = known[p]
                        .get(&input_gate.index())
                        .copied()
                        .expect("owner must know the value of its evaluated gate");
                    parts.entry(p).or_default().push((pos, value));
                }
                for (p, indexed) in parts {
                    if p == gate_owner {
                        // The owner's own part needs no message; it recomputes
                        // its local summary when combining.
                        continue;
                    }
                    let summary = gate.kind.summary(&indexed);
                    outs[p].send(
                        NodeId::new(gate_owner),
                        BitString::from_bits(summary, sep_bits),
                    );
                }
            }
            let inboxes = session.exchange(&format!("layer {layer_idx}: heavy summaries"), outs)?;
            // Combine at the owners.
            for &gid in &heavy_in_layer {
                let gate = circuit.gate(gid);
                let gate_owner = plan.owner[gid.index()];
                let sep_bits = gate.kind.separability_bits(gate.inputs.len()).max(1);
                // Recompute the (publicly known) set of contributing players
                // and read their summaries positionally.
                let mut contributing: Vec<usize> = gate
                    .inputs
                    .iter()
                    .map(|ig| plan.owner[ig.index()])
                    .collect();
                contributing.sort_unstable();
                contributing.dedup();
                let mut summaries = Vec::with_capacity(contributing.len());
                for p in contributing {
                    if p == gate_owner {
                        // Recompute the local summary directly.
                        let indexed: Vec<(usize, bool)> = gate
                            .inputs
                            .iter()
                            .enumerate()
                            .filter(|(_, ig)| plan.owner[ig.index()] == gate_owner)
                            .map(|(pos, ig)| (pos, known[gate_owner][&ig.index()]))
                            .collect();
                        summaries.push(gate.kind.summary(&indexed));
                    } else {
                        let payload = inboxes[gate_owner]
                            .unicast_from(NodeId::new(p))
                            .expect("expected a summary from this player");
                        // A player sends at most one summary per heavy gate,
                        // and owns at most one heavy gate itself, so the
                        // payload for this gate starts at the offset
                        // accumulated from earlier heavy gates of this layer
                        // owned by `gate_owner` — but there is exactly one
                        // heavy gate per owner, so the offset is 0.
                        let mut reader = payload.reader();
                        summaries.push(
                            reader
                                .read_bits(sep_bits)
                                .expect("summary payload too short"),
                        );
                    }
                }
                let value = gate.kind.combine(&summaries, gate.inputs.len());
                known[gate_owner].insert(gid.index(), value);
            }
        }

        // (b) Heavy-gate values needed by light gates of this layer.
        let light_in_layer: Vec<GateId> = layer
            .iter()
            .copied()
            .filter(|g| !plan.heavy[g.index()])
            .collect();
        {
            let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
            let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (heavy gate, src, dst)
            for &gid in &light_in_layer {
                let gate_owner = plan.owner[gid.index()];
                for input_gate in &circuit.gate(gid).inputs {
                    if plan.heavy[input_gate.index()] {
                        let src = plan.owner[input_gate.index()];
                        if src != gate_owner && delivered.insert((input_gate.index(), gate_owner)) {
                            pending.push((input_gate.index(), src, gate_owner));
                        }
                    }
                }
            }
            // A heavy owner owns exactly one heavy gate, so (src, dst)
            // determines the gate; one bit per pair suffices.
            for &(gate, src, dst) in &pending {
                let value = known[src][&gate];
                outs[src].send(NodeId::new(dst), BitString::from_bits(u64::from(value), 1));
            }
            if !pending.is_empty() {
                let inboxes =
                    session.exchange(&format!("layer {layer_idx}: heavy values"), outs)?;
                for &(gate, src, dst) in &pending {
                    let payload = inboxes[dst]
                        .unicast_from(NodeId::new(src))
                        .expect("expected a heavy value");
                    known[dst].insert(gate, payload.bit(0));
                }
            }
        }

        // (c) Light-to-light wires of this layer: a balanced two-phase
        // delivery with a deterministic, publicly computable schedule.
        {
            // Canonical wire list: (source gate, destination player).
            let mut wires: Vec<(usize, usize)> = Vec::new();
            for &gid in &light_in_layer {
                let gate_owner = plan.owner[gid.index()];
                for input_gate in &circuit.gate(gid).inputs {
                    if !plan.heavy[input_gate.index()] {
                        let src_owner = plan.owner[input_gate.index()];
                        if src_owner != gate_owner {
                            wires.push((input_gate.index(), gate_owner));
                        }
                    }
                }
            }
            wires.sort_unstable();
            wires.dedup();
            let wires: Vec<(usize, usize)> = wires
                .into_iter()
                .filter(|&(gate, dst)| !known[dst].contains_key(&gate))
                .collect();
            route_bits_two_phase(
                session,
                n,
                &format!("layer {layer_idx}: light wires"),
                &wires,
                &plan,
                &mut known,
            )?;
        }

        // (d) Local evaluation of the light gates of this layer.
        for &gid in &light_in_layer {
            let gate = circuit.gate(gid);
            let p = plan.owner[gid.index()];
            if matches!(gate.kind, GateKind::Input | GateKind::Const(_)) {
                continue;
            }
            let value = gate.kind.eval_iter(gate.inputs.iter().map(|ig| {
                known[p]
                    .get(&ig.index())
                    .copied()
                    .expect("light gate input value must have been delivered")
            }));
            known[p].insert(gid.index(), value);
        }
    }

    // --- Step 3: collect the outputs at player 0. ---
    let outputs = {
        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        let mut per_sender: HashMap<usize, BitString> = HashMap::new();
        for gid in circuit.outputs() {
            let p = plan.owner[gid.index()];
            let value = known[p][&gid.index()];
            if p != 0 {
                per_sender.entry(p).or_default().push_bit(value);
            }
        }
        for (&p, bits) in &per_sender {
            outs[p].send(NodeId::new(0), bits.clone());
        }
        let inboxes = session.exchange("collect outputs", outs)?;
        let mut cursors: HashMap<usize, BitReader<'_>> = inboxes[0]
            .unicasts()
            .map(|(src, payload)| (src.index(), payload.reader()))
            .collect();
        circuit
            .outputs()
            .iter()
            .map(|gid| {
                let p = plan.owner[gid.index()];
                if p == 0 {
                    known[0][&gid.index()]
                } else {
                    cursors
                        .get_mut(&p)
                        .and_then(BitReader::read_bit)
                        .expect("missing output bit")
                }
            })
            .collect::<Vec<bool>>()
    };

    let output_owners = circuit
        .outputs()
        .iter()
        .map(|gid| plan.owner[gid.index()])
        .collect();
    Ok(CircuitOutput {
        outputs,
        output_owners,
        depth: circuit.depth(),
    })
}

/// Delivers one bit per `(source gate, destination player)` wire using the
/// deterministic two-phase balanced schedule. Both endpoints (and the
/// intermediaries) recompute the schedule from the public wire list, so the
/// payloads carry no headers.
fn route_bits_two_phase(
    session: &mut Session,
    n: usize,
    label: &str,
    wires: &[(usize, usize)],
    plan: &SimulationPlan,
    known: &mut [HashMap<usize, bool>],
) -> Result<(), SimError> {
    if wires.is_empty() {
        return Ok(());
    }
    // Greedy intermediary assignment (identical for every player because the
    // wire list and iteration order are canonical).
    let mut up_load = vec![vec![0u32; n]; n];
    let mut down_load = vec![vec![0u32; n]; n];
    let mut assignment = Vec::with_capacity(wires.len());
    for &(gate, dst) in wires {
        let src = plan.owner[gate];
        let mut best_w = 0usize;
        let mut best_key = (u32::MAX, u32::MAX);
        for w in 0..n {
            let a = up_load[src][w] + 1;
            let b = down_load[w][dst] + 1;
            let key = (a.max(b), a + b);
            if key < best_key {
                best_key = key;
                best_w = w;
            }
        }
        up_load[src][best_w] += 1;
        down_load[best_w][dst] += 1;
        assignment.push(best_w);
    }

    // Phase 1: src -> intermediary, bits in canonical wire order.
    let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
    let mut phase1: HashMap<(usize, usize), BitString> = HashMap::new();
    for (&(gate, _dst), &w) in wires.iter().zip(&assignment) {
        let src = plan.owner[gate];
        let value = known[src][&gate];
        if src == w {
            continue; // the intermediary already holds the value
        }
        phase1.entry((src, w)).or_default().push_bit(value);
    }
    for (&(src, w), bits) in &phase1 {
        outs[src].send(NodeId::new(w), bits.clone());
    }
    let inboxes = session.exchange(&format!("{label} (phase 1)"), outs)?;
    // Intermediaries reconstruct the values they must forward.
    let mut relay_value: HashMap<(usize, usize, usize), bool> = HashMap::new(); // (w, gate, dst)
    {
        let mut cursors: Vec<HashMap<usize, BitReader<'_>>> = inboxes
            .iter()
            .map(|inbox| {
                inbox
                    .unicasts()
                    .map(|(src, payload)| (src.index(), payload.reader()))
                    .collect()
            })
            .collect();
        for (&(gate, dst), &w) in wires.iter().zip(&assignment) {
            let src = plan.owner[gate];
            let value = if src == w {
                known[src][&gate]
            } else {
                cursors[w]
                    .get_mut(&src)
                    .and_then(BitReader::read_bit)
                    .expect("missing phase-1 bit")
            };
            relay_value.insert((w, gate, dst), value);
        }
    }

    // Phase 2: intermediary -> destination, bits in canonical wire order.
    let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
    let mut phase2: HashMap<(usize, usize), BitString> = HashMap::new();
    for (&(gate, dst), &w) in wires.iter().zip(&assignment) {
        let value = relay_value[&(w, gate, dst)];
        if w == dst {
            known[dst].insert(gate, value);
            continue;
        }
        phase2.entry((w, dst)).or_default().push_bit(value);
    }
    for (&(w, dst), bits) in &phase2 {
        outs[w].send(NodeId::new(dst), bits.clone());
    }
    let inboxes = session.exchange(&format!("{label} (phase 2)"), outs)?;
    let mut cursors: Vec<HashMap<usize, BitReader<'_>>> = inboxes
        .iter()
        .map(|inbox| {
            inbox
                .unicasts()
                .map(|(src, payload)| (src.index(), payload.reader()))
                .collect()
        })
        .collect();
    for (&(gate, dst), &w) in wires.iter().zip(&assignment) {
        if w == dst {
            continue;
        }
        let bit = cursors[dst]
            .get_mut(&w)
            .and_then(BitReader::read_bit)
            .expect("missing phase-2 bit");
        known[dst].insert(gate, bit);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_circuits::builders;
    use clique_circuits::matmul::matmul_f2_naive;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_input(rng: &mut impl Rng, len: usize) -> Vec<bool> {
        (0..len).map(|_| rng.gen_bool(0.5)).collect()
    }

    fn check_simulation(circuit: &Circuit, n: usize, bandwidth: usize, trials: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for partition in [InputPartition::RoundRobin, InputPartition::Blocks] {
            for _ in 0..trials {
                let input = random_input(&mut rng, circuit.inputs().len());
                let expected = circuit.evaluate(&input);
                let outcome = simulate_circuit(circuit, &input, n, bandwidth, partition)
                    .expect("simulation failed");
                assert_eq!(
                    outcome.outputs, expected,
                    "simulation disagrees with direct evaluation"
                );
            }
        }
    }

    #[test]
    fn parity_circuits_simulate_correctly() {
        check_simulation(&builders::parity(36), 6, 4, 4, 1);
        check_simulation(&builders::parity_tree(36, 3), 6, 4, 4, 2);
    }

    #[test]
    fn threshold_and_mod_circuits_simulate_correctly() {
        check_simulation(&builders::majority(25), 5, 6, 4, 3);
        check_simulation(&builders::mod_m(25, 3), 5, 6, 4, 4);
        check_simulation(&builders::exactly_k(25, 3), 5, 6, 4, 5);
        check_simulation(&builders::mod_of_mods(24, 6, 4), 6, 6, 4, 6);
        check_simulation(&builders::inner_product_mod2(18), 6, 6, 4, 7);
    }

    #[test]
    fn matmul_circuit_simulates_correctly() {
        let mm = matmul_f2_naive(4);
        check_simulation(&mm.circuit, 4, 16, 3, 8);
    }

    #[test]
    fn rounds_scale_with_depth_not_size() {
        // With ample bandwidth, the simulation should take O(depth) phases,
        // i.e. O(1) rounds per phase.
        let deep = builders::parity_tree(64, 2); // depth 6
        let shallow = builders::parity(64); // depth 1
        let n = 8;
        let bandwidth = 64;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let input = random_input(&mut rng, 64);
        let deep_out =
            simulate_circuit(&deep, &input, n, bandwidth, InputPartition::RoundRobin).unwrap();
        let shallow_out =
            simulate_circuit(&shallow, &input, n, bandwidth, InputPartition::RoundRobin).unwrap();
        assert!(deep_out.rounds() > shallow_out.rounds());
        assert!(
            deep_out.max_phase_rounds() <= 2,
            "phases should be O(1) rounds"
        );
        assert!(shallow_out.max_phase_rounds() <= 2);
        // O(D) with a small constant: at most ~5 phases per layer.
        assert!(deep_out.rounds() <= 5 * (deep_out.depth as u64 + 1) + 2);
    }

    #[test]
    fn plan_respects_heavy_gate_limits() {
        let circuit = builders::parity(100);
        let plan = plan_simulation(&circuit, 10);
        assert!(plan.heavy_count <= 10);
        // The single wide XOR gate has weight 101 > 2·n·s = 2·10·1 = 20.
        assert_eq!(plan.heavy_count, 1);
        assert_eq!(plan.owner.len(), circuit.gate_count());
        // Heavy gates get distinct players.
        let heavy_owners: Vec<usize> = (0..circuit.gate_count())
            .filter(|&g| plan.heavy[g])
            .map(|g| plan.owner[g])
            .collect();
        let mut deduped = heavy_owners.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), heavy_owners.len());
    }

    #[test]
    fn single_player_simulation_works() {
        let circuit = builders::exactly_k(9, 2);
        check_simulation(&circuit, 1, 4, 3, 10);
    }

    #[test]
    #[should_panic(expected = "expected 16 input bits")]
    fn wrong_input_length_panics() {
        let circuit = builders::parity(16);
        let _ = simulate_circuit(&circuit, &[true; 4], 4, 4, InputPartition::RoundRobin);
    }
}
