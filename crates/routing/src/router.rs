//! Routing algorithms for the unicast congested clique.
//!
//! The paper invokes Lenzen's routing theorem \[28\] as a black box: any
//! *balanced* demand — every player sends at most `n` messages and receives
//! at most `n` messages — can be delivered deterministically in `O(1)`
//! rounds. This crate provides three routers implementing the same interface
//! with the same asymptotic guarantee for balanced demands (see DESIGN.md for
//! the substitution note):
//!
//! * [`DirectRouter`] — every packet travels on its own link; takes
//!   `⌈max pair load / b⌉` rounds, which is optimal for spread-out demands
//!   but `Θ(n)` times worse than Lenzen's bound when a demand concentrates
//!   many packets on one pair.
//! * [`ValiantRouter`] — each packet travels via a uniformly random
//!   intermediary and is forwarded in a second phase; with balanced demands
//!   the per-link load is `O(b + log n)` with high probability.
//! * [`BalancedRouter`] — an omnisciently computed two-phase schedule: each
//!   packet is assigned the intermediary that currently minimises the
//!   maximum load of its two links. For balanced demands this yields `O(1)`
//!   rounds deterministically, matching the guarantee the paper needs.
//!
//! All routers charge their communication to the caller's [`Session`] so
//! that round and bit accounting (including forwarding headers) is exact;
//! [`RouteProtocol`] adapts any router + demand pair into a
//! [`Protocol`] runnable through
//! [`Runner`].

use clique_sim::bits::bits_for_universe;
use clique_sim::prelude::*;
use rand::Rng;

use crate::demand::{Packet, RoutingDemand};

/// Packets delivered to each destination (indexed by destination player).
pub type Delivered = Vec<Vec<Packet>>;

/// A routing algorithm on the unicast congested clique.
pub trait Router {
    /// Delivers every packet of `demand`, charging all communication to
    /// `session`. Returns the packets grouped by destination.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the session rejects a message (e.g. the
    /// session was configured with a broadcast-only model).
    fn route(
        &mut self,
        demand: &RoutingDemand,
        session: &mut Session,
    ) -> Result<Delivered, SimError>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Boxed routers route by delegation, so heterogeneous router sets can be
/// swept through one [`RouteProtocol`] type.
impl<R: Router + ?Sized> Router for Box<R> {
    fn route(
        &mut self,
        demand: &RoutingDemand,
        session: &mut Session,
    ) -> Result<Delivered, SimError> {
        (**self).route(demand, session)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Adapts a [`Router`] plus a demand into a
/// [`Protocol`] whose output is the
/// delivered packets, so routing runs under
/// [`Runner`] like any other protocol.
#[derive(Clone, Debug)]
pub struct RouteProtocol<'a, R> {
    router: R,
    demand: &'a RoutingDemand,
}

impl<'a, R: Router> RouteProtocol<'a, R> {
    /// Pairs a router with the demand it should deliver.
    pub fn new(router: R, demand: &'a RoutingDemand) -> Self {
        Self { router, demand }
    }
}

impl<R: Router> Protocol for RouteProtocol<'_, R> {
    type Output = Delivered;

    fn run(&mut self, session: &mut Session) -> Result<Delivered, SimError> {
        self.router.route(self.demand, session)
    }
}

/// Field widths used to serialise packets on the wire.
#[derive(Clone, Copy, Debug)]
struct PacketCodec {
    node_bits: usize,
    len_bits: usize,
}

impl PacketCodec {
    fn for_demand(demand: &RoutingDemand) -> Self {
        let max_len = demand
            .packets()
            .iter()
            .map(|p| p.payload.len())
            .max()
            .unwrap_or(0);
        Self {
            node_bits: bits_for_universe(demand.n() as u64),
            len_bits: bits_for_universe(max_len as u64 + 1).max(1),
        }
    }

    /// Appends `[node, len, payload]` (node omitted when `None`).
    fn encode(&self, node: Option<NodeId>, payload: &BitString, out: &mut BitString) {
        if let Some(node) = node {
            out.push_bits(node.index() as u64, self.node_bits);
        }
        out.push_bits(payload.len() as u64, self.len_bits);
        out.extend_from(payload);
    }

    /// Reads back one `[node, len, payload]` record.
    fn decode(
        &self,
        reader: &mut BitReader<'_>,
        with_node: bool,
    ) -> Option<(Option<NodeId>, BitString)> {
        let node = if with_node {
            Some(NodeId::new(reader.read_bits(self.node_bits)? as usize))
        } else {
            None
        };
        let len = reader.read_bits(self.len_bits)? as usize;
        let mut payload = BitString::with_capacity(len);
        for _ in 0..len {
            payload.push_bit(reader.read_bit()?);
        }
        Some((node, payload))
    }
}

/// Delivers every packet directly on the `(src, dst)` link.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectRouter;

impl Router for DirectRouter {
    fn route(
        &mut self,
        demand: &RoutingDemand,
        session: &mut Session,
    ) -> Result<Delivered, SimError> {
        let n = demand.n();
        let codec = PacketCodec::for_demand(demand);
        let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
        for p in demand.packets() {
            let mut wire = BitString::new();
            codec.encode(None, &p.payload, &mut wire);
            outs[p.src.index()].send(p.dst, wire);
        }
        let inboxes = session.exchange("route/direct", outs)?;
        let mut delivered: Delivered = vec![Vec::new(); n];
        for (dst, inbox) in inboxes.iter().enumerate() {
            for (src, wire) in inbox.unicasts() {
                let mut reader = wire.reader();
                while !reader.is_exhausted() {
                    let (_, payload) = codec
                        .decode(&mut reader, false)
                        .expect("malformed direct-routing record");
                    delivered[dst].push(Packet::new(src, NodeId::new(dst), payload));
                }
            }
        }
        Ok(delivered)
    }

    fn name(&self) -> &'static str {
        "direct"
    }
}

/// Two-phase routing via uniformly random intermediaries (Valiant-style).
#[derive(Clone, Debug)]
pub struct ValiantRouter<R> {
    rng: R,
}

impl<R: Rng> ValiantRouter<R> {
    /// Creates a router drawing intermediaries from `rng`.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }
}

impl<R: Rng> Router for ValiantRouter<R> {
    fn route(
        &mut self,
        demand: &RoutingDemand,
        session: &mut Session,
    ) -> Result<Delivered, SimError> {
        let n = demand.n();
        let assignment: Vec<usize> = demand
            .packets()
            .iter()
            .map(|_| self.rng.gen_range(0..n))
            .collect();
        two_phase_route(demand, &assignment, session, "route/valiant")
    }

    fn name(&self) -> &'static str {
        "valiant"
    }
}

/// Deterministic two-phase routing with a greedily balanced intermediary
/// assignment (the workspace's stand-in for Lenzen's routing algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancedRouter;

impl Router for BalancedRouter {
    fn route(
        &mut self,
        demand: &RoutingDemand,
        session: &mut Session,
    ) -> Result<Delivered, SimError> {
        let n = demand.n();
        // Greedy assignment: give each packet the intermediary minimising the
        // larger of its two link loads (then the sum, then the index).
        let mut up_load = vec![vec![0u64; n]; n]; // (src, w)
        let mut down_load = vec![vec![0u64; n]; n]; // (w, dst)
        let mut assignment = Vec::with_capacity(demand.len());
        for p in demand.packets() {
            let s = p.src.index();
            let d = p.dst.index();
            let bits = p.payload.len() as u64;
            let mut best_w = 0usize;
            let mut best_key = (u64::MAX, u64::MAX);
            for w in 0..n {
                let a = up_load[s][w] + bits;
                let b = down_load[w][d] + bits;
                let key = (a.max(b), a + b);
                if key < best_key {
                    best_key = key;
                    best_w = w;
                }
            }
            up_load[s][best_w] += bits;
            down_load[best_w][d] += bits;
            assignment.push(best_w);
        }
        two_phase_route(demand, &assignment, session, "route/balanced")
    }

    fn name(&self) -> &'static str {
        "balanced"
    }
}

/// Shared two-phase delivery: phase 1 sends each packet to its assigned
/// intermediary (tagged with the final destination), phase 2 forwards it
/// (tagged with the original source). Packets whose intermediary equals the
/// source or the destination skip the redundant hop.
fn two_phase_route(
    demand: &RoutingDemand,
    assignment: &[usize],
    session: &mut Session,
    label: &str,
) -> Result<Delivered, SimError> {
    let n = demand.n();
    let codec = PacketCodec::for_demand(demand);
    let mut delivered: Delivered = vec![Vec::new(); n];

    // Phase 1: src -> intermediary, carrying the destination. Packets whose
    // intermediary equals the source skip the first hop.
    let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
    // Packets held by each intermediary before phase 2.
    let mut relay: Vec<Vec<Packet>> = vec![Vec::new(); n];
    for (p, &w) in demand.packets().iter().zip(assignment) {
        if w == p.src.index() {
            relay[w].push(p.clone());
            continue;
        }
        let mut wire = BitString::new();
        codec.encode(Some(p.dst), &p.payload, &mut wire);
        outs[p.src.index()].send(NodeId::new(w), wire);
    }
    let inboxes = session.exchange(&format!("{label}/phase1"), outs)?;
    for (w, inbox) in inboxes.iter().enumerate() {
        for (src, wire) in inbox.unicasts() {
            let mut reader = wire.reader();
            while !reader.is_exhausted() {
                let (node, payload) = codec
                    .decode(&mut reader, true)
                    .expect("malformed phase-1 record");
                let dst = node.expect("phase-1 records carry a destination");
                relay[w].push(Packet::new(src, dst, payload));
            }
        }
    }

    // Phase 2: intermediary -> dst, carrying the source. Packets already at
    // their destination (the destination acted as the intermediary) are
    // delivered without a second hop.
    let mut outs: Vec<PhaseOutbox> = (0..n).map(|_| PhaseOutbox::new()).collect();
    for (w, packets) in relay.iter().enumerate() {
        for p in packets {
            if p.dst.index() == w {
                delivered[w].push(p.clone());
                continue;
            }
            let mut wire = BitString::new();
            codec.encode(Some(p.src), &p.payload, &mut wire);
            outs[w].send(p.dst, wire);
        }
    }
    let inboxes2 = session.exchange(&format!("{label}/phase2"), outs)?;
    for (dst, inbox) in inboxes2.iter().enumerate() {
        for (_, wire) in inbox.unicasts() {
            let mut reader = wire.reader();
            while !reader.is_exhausted() {
                let (node, payload) = codec
                    .decode(&mut reader, true)
                    .expect("malformed phase-2 record");
                let src = node.expect("phase-2 records carry a source");
                delivered[dst].push(Packet::new(src, NodeId::new(dst), payload));
            }
        }
    }
    Ok(delivered)
}

/// A lower bound on the rounds direct delivery needs:
/// `⌈max pair payload load / b⌉` (ignoring framing overhead, so the actual
/// [`DirectRouter`] may take slightly more).
pub fn direct_round_bound(demand: &RoutingDemand, bandwidth: usize) -> u64 {
    demand.max_pair_load().div_ceil(bandwidth as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn payload(tag: u64, bits: usize) -> BitString {
        BitString::from_bits(tag, bits)
    }

    /// A balanced all-to-all demand: every ordered pair exchanges `bits` bits.
    fn all_to_all(n: usize, bits: usize) -> RoutingDemand {
        let mut d = RoutingDemand::new(n);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    d.send(
                        s,
                        t,
                        payload((s * n + t) as u64 % (1 << bits.min(16)), bits),
                    );
                }
            }
        }
        d
    }

    /// A concentrated demand: node 0 sends many packets to node 1.
    fn concentrated(n: usize, packets: usize, bits: usize) -> RoutingDemand {
        let mut d = RoutingDemand::new(n);
        for i in 0..packets {
            d.send(0, 1, payload(i as u64 % (1 << bits.min(16)), bits));
        }
        d
    }

    fn check_delivery(demand: &RoutingDemand, delivered: &Delivered) {
        let n = demand.n();
        // Multisets of (src, dst, payload) must match.
        let mut expected: Vec<(usize, usize, String)> = demand
            .packets()
            .iter()
            .map(|p| (p.src.index(), p.dst.index(), p.payload.to_string()))
            .collect();
        let mut actual: Vec<(usize, usize, String)> = (0..n)
            .flat_map(|dst| {
                delivered[dst]
                    .iter()
                    .map(move |p| (p.src.index(), dst, p.payload.to_string()))
            })
            .collect();
        expected.sort();
        actual.sort();
        assert_eq!(expected, actual, "delivered packets differ from the demand");
    }

    fn run_router<R: Router>(router: &mut R, demand: &RoutingDemand, b: usize) -> u64 {
        let mut session = Session::new(
            CliqueConfig::builder()
                .nodes(demand.n())
                .bandwidth(b)
                .unicast()
                .build(),
        );
        let delivered = router.route(demand, &mut session).expect("routing failed");
        check_delivery(demand, &delivered);
        session.rounds()
    }

    #[test]
    fn all_routers_deliver_balanced_demands() {
        let demand = all_to_all(8, 4);
        assert!(run_router(&mut DirectRouter, &demand, 8) >= 1);
        assert!(run_router(&mut BalancedRouter, &demand, 8) >= 1);
        let mut valiant = ValiantRouter::new(ChaCha8Rng::seed_from_u64(7));
        assert!(run_router(&mut valiant, &demand, 8) >= 1);
    }

    #[test]
    fn all_routers_deliver_concentrated_demands() {
        let demand = concentrated(8, 24, 4);
        assert!(run_router(&mut DirectRouter, &demand, 8) >= 1);
        assert!(run_router(&mut BalancedRouter, &demand, 8) >= 1);
        let mut valiant = ValiantRouter::new(ChaCha8Rng::seed_from_u64(8));
        assert!(run_router(&mut valiant, &demand, 8) >= 1);
    }

    #[test]
    fn balanced_router_beats_direct_on_concentrated_demands() {
        // Node 0 sends n·b bits to node 1: direct needs ≈ n rounds; a
        // two-phase balanced schedule spreads the packets over the n links of
        // node 0 and the n links of node 1 and needs O(1) rounds (with the
        // header overhead, a small constant).
        let n = 16;
        let b = 8;
        let demand = concentrated(n, n, b);
        let direct_rounds = run_router(&mut DirectRouter, &demand, b);
        let balanced_rounds = run_router(&mut BalancedRouter, &demand, b);
        // Direct delivery pays at least the raw payload load on the (0,1)
        // link (n packets of b bits over a b-bit link = n rounds), plus
        // framing.
        assert!(direct_rounds >= n as u64);
        assert!(
            balanced_rounds <= 6,
            "balanced router took {balanced_rounds} rounds"
        );
        assert!(balanced_rounds * 2 < direct_rounds);
    }

    #[test]
    fn direct_round_bound_is_a_lower_bound_on_the_direct_router() {
        let demand = concentrated(6, 10, 3);
        let bound = direct_round_bound(&demand, 5);
        let rounds = run_router(&mut DirectRouter, &demand, 5);
        assert!(rounds >= bound, "rounds {rounds} below bound {bound}");
        // Framing (a 2-bit length per 3-bit packet) at most doubles the cost.
        assert!(rounds <= 2 * bound + 1);
    }

    #[test]
    fn empty_demand_costs_nothing() {
        let demand = RoutingDemand::new(5);
        assert_eq!(run_router(&mut DirectRouter, &demand, 4), 0);
        assert_eq!(run_router(&mut BalancedRouter, &demand, 4), 0);
    }

    #[test]
    fn valiant_congestion_is_reasonable() {
        let n = 32;
        let b = 8;
        let demand = concentrated(n, n, b);
        let mut valiant = ValiantRouter::new(ChaCha8Rng::seed_from_u64(9));
        let rounds = run_router(&mut valiant, &demand, b);
        // With n packets spread over n random intermediaries the max link
        // load is O(log n / log log n) packets w.h.p. For n = 32 the load of
        // the fullest bin exceeds 8 with probability < 10⁻³, and each packet
        // costs at most two rounds per phase with framing, so 32 rounds is a
        // safe cap — while still far below the ≥ 2·n rounds direct delivery
        // pays on this demand.
        assert!(rounds <= 32, "valiant took {rounds} rounds");
        let direct_rounds = run_router(&mut DirectRouter, &demand, b);
        assert!(
            rounds < direct_rounds,
            "valiant ({rounds}) should beat direct ({direct_rounds})"
        );
    }

    #[test]
    fn zero_length_payloads_are_delivered() {
        let mut demand = RoutingDemand::new(4);
        demand.send(0, 1, BitString::new());
        demand.send(2, 3, BitString::from_bits(1, 1));
        let delivered = Runner::new(CliqueConfig::unicast(4, 4))
            .execute(&mut RouteProtocol::new(BalancedRouter, &demand))
            .unwrap()
            .into_output();
        assert_eq!(delivered[1].len(), 1);
        assert_eq!(delivered[1][0].payload.len(), 0);
        assert_eq!(delivered[3].len(), 1);
    }
}
