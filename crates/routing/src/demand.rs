//! Routing demands: who needs to send how many bits to whom.
//!
//! Theorem 2 of the paper (and Remark 3) repeatedly needs to deliver a
//! *balanced* demand — every player sends at most `O(n·s)` bits in total and
//! receives at most `O(n·s)` bits in total, though possibly very unevenly
//! across pairs — in `O(1)` rounds, citing Lenzen's routing theorem \[28\].
//! [`RoutingDemand`] describes such a demand as a list of packets.

use clique_sim::prelude::*;

/// A single packet: payload bits travelling from `src` to `dst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Originating player.
    pub src: NodeId,
    /// Destination player.
    pub dst: NodeId,
    /// Payload bits.
    pub payload: BitString,
}

impl Packet {
    /// Creates a packet.
    pub fn new(src: NodeId, dst: NodeId, payload: BitString) -> Self {
        Self { src, dst, payload }
    }
}

/// A collection of packets to be delivered on an `n`-player clique.
#[derive(Clone, Debug, Default)]
pub struct RoutingDemand {
    n: usize,
    packets: Vec<Packet>,
}

impl RoutingDemand {
    /// Creates an empty demand for `n` players.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            packets: Vec::new(),
        }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds a packet.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the packet is a self-message.
    pub fn push(&mut self, packet: Packet) {
        assert!(
            packet.src.index() < self.n && packet.dst.index() < self.n,
            "packet endpoints out of range"
        );
        assert_ne!(packet.src, packet.dst, "self-messages need no routing");
        self.packets.push(packet);
    }

    /// Convenience: adds a packet from raw parts.
    pub fn send(&mut self, src: usize, dst: usize, payload: BitString) {
        self.push(Packet::new(NodeId::new(src), NodeId::new(dst), payload));
    }

    /// The packets.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` if there is nothing to route.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total payload bits.
    pub fn total_bits(&self) -> u64 {
        self.packets.iter().map(|p| p.payload.len() as u64).sum()
    }

    /// Per-player totals `(bits sent, bits received)`.
    pub fn per_node_load(&self) -> Vec<(u64, u64)> {
        let mut load = vec![(0u64, 0u64); self.n];
        for p in &self.packets {
            load[p.src.index()].0 += p.payload.len() as u64;
            load[p.dst.index()].1 += p.payload.len() as u64;
        }
        load
    }

    /// Maximum over players of bits sent or received.
    pub fn max_node_load(&self) -> u64 {
        self.per_node_load()
            .iter()
            .map(|&(s, r)| s.max(r))
            .max()
            .unwrap_or(0)
    }

    /// Maximum over ordered pairs of the bits travelling between that pair.
    pub fn max_pair_load(&self) -> u64 {
        let mut pair = std::collections::HashMap::<(usize, usize), u64>::new();
        for p in &self.packets {
            *pair.entry((p.src.index(), p.dst.index())).or_default() += p.payload.len() as u64;
        }
        pair.values().copied().max().unwrap_or(0)
    }

    /// Returns `true` if every player sends at most `limit` bits and receives
    /// at most `limit` bits in total — the "balanced" precondition of
    /// Lenzen's routing theorem with limit `Θ(n·b)`.
    pub fn is_balanced(&self, limit: u64) -> bool {
        self.per_node_load()
            .iter()
            .all(|&(s, r)| s <= limit && r <= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(bits: usize) -> BitString {
        BitString::from_bools(&vec![true; bits])
    }

    #[test]
    fn empty_demand() {
        let d = RoutingDemand::new(4);
        assert!(d.is_empty());
        assert_eq!(d.total_bits(), 0);
        assert_eq!(d.max_node_load(), 0);
        assert_eq!(d.max_pair_load(), 0);
        assert!(d.is_balanced(0));
    }

    #[test]
    fn load_accounting() {
        let mut d = RoutingDemand::new(4);
        d.send(0, 1, payload(5));
        d.send(0, 1, payload(3));
        d.send(2, 1, payload(2));
        d.send(3, 0, payload(7));
        assert_eq!(d.len(), 4);
        assert_eq!(d.total_bits(), 17);
        assert_eq!(d.max_pair_load(), 8);
        let loads = d.per_node_load();
        assert_eq!(loads[0], (8, 7));
        assert_eq!(loads[1], (0, 10));
        assert_eq!(d.max_node_load(), 10);
        assert!(d.is_balanced(10));
        assert!(!d.is_balanced(9));
    }

    #[test]
    #[should_panic(expected = "self-messages")]
    fn self_message_rejected() {
        let mut d = RoutingDemand::new(3);
        d.send(1, 1, payload(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut d = RoutingDemand::new(3);
        d.send(0, 5, payload(1));
    }
}
