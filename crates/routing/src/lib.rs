//! # clique-routing — routing substrates for the unicast congested clique
//!
//! Theorem 2 of Drucker, Kuhn & Oshman (PODC 2014) routes *balanced* demands
//! (every player sends and receives at most `O(n·s)` bits) in `O(1)` rounds
//! by invoking Lenzen's deterministic routing theorem \[28\] as a black box.
//! This crate provides that black box for the simulation:
//!
//! * [`demand::RoutingDemand`] — a demand as a list of packets with per-node
//!   and per-pair load accounting and the "balanced" predicate;
//! * [`router::DirectRouter`] — the naive baseline (one hop, possibly
//!   `Θ(n)` rounds for concentrated demands);
//! * [`router::ValiantRouter`] — two-phase routing via random intermediaries;
//! * [`router::BalancedRouter`] — a deterministic two-phase schedule with a
//!   greedily balanced intermediary assignment, the workspace's stand-in for
//!   Lenzen's algorithm (see DESIGN.md, substitution table).
//!
//! All routers charge their communication (including forwarding headers) to
//! the caller's [`clique_sim::Session`], so experiment E2 can compare their
//! measured round counts directly; [`router::RouteProtocol`] adapts any
//! router into a [`clique_sim::Protocol`] runnable through a
//! [`clique_sim::Runner`].
//!
//! # Examples
//!
//! ```
//! use clique_routing::{demand::RoutingDemand, router::{BalancedRouter, DirectRouter, RouteProtocol}};
//! use clique_sim::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! // Node 0 wants to send 8 packets of 8 bits to node 1 (a concentrated,
//! // but balanced, demand).
//! let mut demand = RoutingDemand::new(8);
//! for i in 0..8u64 {
//!     demand.send(0, 1, BitString::from_bits(i, 8));
//! }
//!
//! let runner = Runner::new(CliqueConfig::builder().nodes(8).bandwidth(8).unicast().build());
//! let direct = runner.execute(&mut RouteProtocol::new(DirectRouter, &demand))?;
//! let balanced = runner.execute(&mut RouteProtocol::new(BalancedRouter, &demand))?;
//!
//! // The balanced two-phase schedule spreads the load over all links.
//! assert!(balanced.rounds() < direct.rounds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod router;

pub use demand::{Packet, RoutingDemand};
pub use router::{
    direct_round_bound, BalancedRouter, Delivered, DirectRouter, RouteProtocol, Router,
    ValiantRouter,
};
